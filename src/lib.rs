//! # Performance-optimal filtering
//!
//! A Rust reproduction of *“Performance-Optimal Filtering: Bloom Overtakes
//! Cuckoo at High Throughput”* (Lang, Neumann, Kemper, Boncz — PVLDB 12(5),
//! 2019).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`bloom`] — classic, blocked, register-blocked, sectorized and
//!   cache-sectorized Bloom filters with AVX2 batch lookups,
//! * [`cuckoo`] — Cuckoo filters with partial-key cuckoo hashing and SIMD
//!   lookups for 32-bit buckets,
//! * [`model`] — analytical false-positive-rate models (Eq. 2–5 and 8),
//! * [`hash`] — multiplicative hashing and magic-modulo addressing,
//! * [`filter`] — the unified `Filter` trait, selection vectors and workload
//!   generators,
//! * [`xorfuse`] — immutable binary-fuse filters (`fuse8`/`fuse16`): built
//!   whole from a key set by 3-wise peeling, probed with three XORed
//!   fingerprint reads — the advisor's static cold-tier family,
//! * [`core`] — the performance-optimal filtering framework: overhead model,
//!   configuration space, calibration, skylines and the
//!   [`FilterAdvisor`](prelude::FilterAdvisor),
//! * [`store`] — the serving layer: a sharded, concurrent
//!   [`ShardedFilterStore`] with advisor-chosen
//!   per-shard filters, policy-driven shard lifecycles (rebuild policies,
//!   deletes, deferred maintenance), wait-free snapshot reads and batch-first
//!   lookups — plus the LSM-style [`TieredStore`](prelude::TieredStore),
//!   whose per-level families the advisor picks from each level's `t_w`,
//! * [`workloads`] — join-pushdown, LSM and distributed semi-join substrates.
//!
//! ## Quick start
//!
//! ```
//! use pof::prelude::*;
//!
//! // Describe the workload: 1M build keys, a probe pipeline that spends
//! // ~200 cycles per tuple after the scan, and a 10% join hit rate.
//! let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
//! let workload = WorkloadSpec { n: 1 << 20, work_saved_cycles: 200.0, sigma: 0.1 };
//! let recommendation = advisor.recommend(&workload);
//! assert!(recommendation.use_filter);
//! println!("use {} at {} bits/key", recommendation.config.label(), recommendation.bits_per_key);
//! ```
//!
//! ## Serving lookups concurrently: the sharded filter store
//!
//! One filter serves one thread well; a service serves many. The
//! [`ShardedFilterStore`] partitions keys across shards by a splitter hash,
//! gives every shard its own advisor-chosen (or pinned) filter, and keeps
//! reads wait-free: lookups probe immutable snapshots while inserts rebuild
//! saturated shards off to the side and atomically publish fresh snapshots.
//!
//! ```
//! use pof::prelude::*;
//!
//! // A store for ~64k keys, 4 shards, filter chosen by the advisor for a
//! // probe pipeline saving ~200 cycles per rejected tuple at a 10% hit rate.
//! let store = StoreBuilder::new()
//!     .shards(4)
//!     .expected_keys(64 * 1024)
//!     .advised(200.0, 0.1)
//!     .build();
//!
//! // Batch-first writes and reads (both take &self; the store is Sync and
//! // is typically shared behind an Arc across reader/writer threads).
//! let keys: Vec<u32> = (0..50_000u32).map(|i| i * 3 + 1).collect();
//! store.insert_batch(&keys);
//!
//! let probes: Vec<u32> = (0..200_000u32).collect();
//! let mut sel = SelectionVector::new();
//! store.contains_batch(&probes, &mut sel);
//! assert!(sel.len() >= keys.len()); // members always qualify
//!
//! // Per-shard occupancy, size and modeled FPR for ops dashboards.
//! let stats = store.stats();
//! assert_eq!(stats.total_keys(), keys.len() as u64);
//! assert!(stats.weighted_modeled_fpr() < 0.01);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use pof_bloom as bloom;
pub use pof_core as core;
pub use pof_cuckoo as cuckoo;
pub use pof_filter as filter;
pub use pof_hash as hash;
pub use pof_model as model;
pub use pof_store as store;
pub use pof_workloads as workloads;
pub use pof_xorfuse as xorfuse;

/// Re-export for the quick-start docs above.
pub use pof_store::ShardedFilterStore;

/// Commonly used items, re-exported for `use pof::prelude::*`.
pub mod prelude {
    pub use pof_bloom::{Addressing, BlockedBloom, BloomConfig, BloomVariant, ClassicBloom};
    pub use pof_core::{
        AnyFilter, CalibrationSet, Calibrator, ConfigSpace, FilterAdvisor, FilterConfig,
        LevelRecommendation, LevelSpec, Overhead, Platform, Recommendation, Skyline, SkylineGrid,
        WorkloadSpec,
    };
    pub use pof_cuckoo::{CuckooAddressing, CuckooConfig, CuckooFilter};
    pub use pof_filter::{
        DeleteOutcome, Filter, FilterKind, KeyGen, ProbePlan, SelectionVector, Workload,
    };
    pub use pof_store::{
        BloomDeleteMode, CompactionPolicy, DeferredBatch, FaultInjector, FaultPoint, FprDrift,
        FsyncPolicy, LevelStats, LifecycleOptions, ManualCompaction, PersistError, PersistOptions,
        ProbeScratch, ReadviseOptions, RebuildDecision, RebuildMode, RebuildPolicy, RebuildUrgency,
        SaturationDoubling, ShardedFilterStore, SizeRatio, StoreBuilder, StoreOptions,
        StoreSnapshot, StoreStats, TieredProbeScratch, TieredStats, TieredStore,
        TieredStoreBuilder,
    };
    pub use pof_workloads::{JoinHashTable, JoinWorkload, LsmTree, ProbePipeline, SemiJoin};
    pub use pof_xorfuse::{FuseConfig, FuseFilter, FuseMutation};
}
