//! # Performance-optimal filtering
//!
//! A Rust reproduction of *“Performance-Optimal Filtering: Bloom Overtakes
//! Cuckoo at High Throughput”* (Lang, Neumann, Kemper, Boncz — PVLDB 12(5),
//! 2019).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`bloom`] — classic, blocked, register-blocked, sectorized and
//!   cache-sectorized Bloom filters with AVX2 batch lookups,
//! * [`cuckoo`] — Cuckoo filters with partial-key cuckoo hashing and SIMD
//!   lookups for 32-bit buckets,
//! * [`model`] — analytical false-positive-rate models (Eq. 2–5 and 8),
//! * [`hash`] — multiplicative hashing and magic-modulo addressing,
//! * [`filter`] — the unified `Filter` trait, selection vectors and workload
//!   generators,
//! * [`core`] — the performance-optimal filtering framework: overhead model,
//!   configuration space, calibration, skylines and the [`FilterAdvisor`],
//! * [`workloads`] — join-pushdown, LSM and distributed semi-join substrates.
//!
//! ## Quick start
//!
//! ```
//! use pof::prelude::*;
//!
//! // Describe the workload: 1M build keys, a probe pipeline that spends
//! // ~200 cycles per tuple after the scan, and a 10% join hit rate.
//! let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
//! let workload = WorkloadSpec { n: 1 << 20, work_saved_cycles: 200.0, sigma: 0.1 };
//! let recommendation = advisor.recommend(&workload);
//! assert!(recommendation.use_filter);
//! println!("use {} at {} bits/key", recommendation.config.label(), recommendation.bits_per_key);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use pof_bloom as bloom;
pub use pof_core as core;
pub use pof_cuckoo as cuckoo;
pub use pof_filter as filter;
pub use pof_hash as hash;
pub use pof_model as model;
pub use pof_workloads as workloads;

/// Commonly used items, re-exported for `use pof::prelude::*`.
pub mod prelude {
    pub use pof_bloom::{Addressing, BlockedBloom, BloomConfig, BloomVariant, ClassicBloom};
    pub use pof_core::{
        AnyFilter, CalibrationSet, Calibrator, ConfigSpace, FilterAdvisor, FilterConfig, Overhead,
        Platform, Recommendation, Skyline, SkylineGrid, WorkloadSpec,
    };
    pub use pof_cuckoo::{CuckooAddressing, CuckooConfig, CuckooFilter};
    pub use pof_filter::{Filter, FilterKind, KeyGen, SelectionVector, Workload};
    pub use pof_workloads::{JoinHashTable, JoinWorkload, LsmTree, ProbePipeline, SemiJoin};
}
