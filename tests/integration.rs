//! Cross-crate integration tests exercising the public `pof` API end to end:
//! advisor → filter construction → workload execution, plus cross-validation
//! of the analytical models against every filter implementation.

use pof::prelude::*;

/// The full pipeline the paper motivates: observe a selective join, ask the
/// advisor for the performance-optimal filter, push it into the probe
/// pipeline, and verify the join result is unchanged while most non-joining
/// tuples are eliminated.
#[test]
fn advisor_driven_join_pushdown_end_to_end() {
    let workload = JoinWorkload::generate(101, 50_000, 200_000, 0.1);
    let hash_table = JoinHashTable::build(&workload.dimension_keys);
    let pipeline = ProbePipeline::new(&workload, &hash_table);
    let unfiltered = pipeline.run_unfiltered();

    let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
    let spec = WorkloadSpec {
        n: workload.dimension_keys.len() as u64,
        work_saved_cycles: 300.0,
        sigma: workload.sigma,
    };
    let recommendation = advisor.recommend(&spec);
    assert!(recommendation.use_filter);
    assert_eq!(
        recommendation.config.kind(),
        FilterKind::Bloom,
        "high-throughput joins pick Bloom"
    );

    let filter = advisor
        .build_filter(&spec, &workload.dimension_keys)
        .expect("advisor should build a filter");
    let filtered = pipeline.run_with_filter(&filter);

    assert_eq!(filtered.matches, unfiltered.matches);
    assert_eq!(filtered.aggregate, unfiltered.aggregate);
    // ~90% of tuples do not join; the filter should eliminate the bulk of them.
    assert!(filtered.filtered_out as f64 > 0.8 * 0.9 * workload.fact_keys.len() as f64);
    assert!(filtered.hash_probes < unfiltered.hash_probes / 3);
}

/// At the other end of Figure 1 (expensive misses), the advisor flips to a
/// Cuckoo filter, and that filter indeed has the lower false-positive rate.
#[test]
fn advisor_flips_to_cuckoo_for_expensive_misses() {
    let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
    let n = 1u64 << 18;
    let cheap = advisor.recommend(&WorkloadSpec {
        n,
        work_saved_cycles: 64.0,
        sigma: 0.2,
    });
    let expensive = advisor.recommend(&WorkloadSpec {
        n,
        work_saved_cycles: 20_000_000.0,
        sigma: 0.2,
    });
    assert_eq!(cheap.config.kind(), FilterKind::Bloom);
    assert_eq!(expensive.config.kind(), FilterKind::Cuckoo);
    assert!(expensive.fpr < cheap.fpr);
    assert!(expensive.lookup_cycles >= cheap.lookup_cycles * 0.9);
}

/// Every filter type reachable through the public API honours the
/// no-false-negative contract and roughly matches its analytical model.
#[test]
fn models_match_measurements_across_the_public_api() {
    let mut gen = KeyGen::new(103);
    let keys = gen.distinct_keys(40_000);
    let configs = vec![
        FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        FilterConfig::Bloom(BloomConfig::sectorized(512, 64, 8, Addressing::Magic)),
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        )),
        FilterConfig::ClassicBloom { k: 7 },
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
        FilterConfig::Cuckoo(CuckooConfig::new(8, 4, CuckooAddressing::PowerOfTwo)),
    ];
    for config in configs {
        let filter = AnyFilter::build_with_keys(&config, &keys, 20.0)
            .unwrap_or_else(|| panic!("construction failed for {}", config.label()));
        for &key in keys.iter().step_by(7) {
            assert!(filter.contains(key), "false negative in {}", config.label());
        }
        let measured = pof::filter::measured_fpr(&filter, &keys, 300_000, 5).fpr;
        let modeled = filter.modeled_fpr();
        assert!(
            pof::filter::stats::fpr_matches_model(measured, modeled, 0.5, 5e-4),
            "{}: measured {measured}, modeled {modeled}",
            config.label()
        );
    }
}

/// The distributed semi-join substrate ships fewer bytes with a broadcast
/// filter while producing the identical join result.
#[test]
fn semijoin_broadcast_filter_reduces_network_volume() {
    let mut gen = KeyGen::new(104);
    let build_keys = gen.distinct_keys(20_000);
    let nodes: Vec<pof::workloads::ProbeNode> = (0..4)
        .map(|_| pof::workloads::ProbeNode {
            keys: gen.probes_with_selectivity(&build_keys, 30_000, 0.1),
        })
        .collect();
    let semijoin = SemiJoin::new(build_keys, nodes, pof::workloads::NetworkModel::default());
    let without = semijoin.run_without_filter();
    let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ));
    let with = semijoin.run_with_filter(&config, 16.0);
    assert_eq!(without.matches, with.matches);
    // ~90 % of the tuples are withheld; the broadcast of the filter itself
    // (16 bits/key × 20k keys to each of the four nodes) eats part of that
    // saving, leaving roughly a 3–4x reduction in bytes on the wire.
    assert!(
        with.bytes_shipped < without.bytes_shipped / 3,
        "with {} vs without {}",
        with.bytes_shipped,
        without.bytes_shipped
    );
    assert!(with.tuples_shipped < without.tuples_shipped / 5);
}

/// Calibration + skyline on a tiny measured configuration set still produces
/// the paper's qualitative shape (Bloom on the left, Cuckoo on the right).
#[test]
fn measured_skyline_has_the_papers_shape() {
    let configs = vec![
        FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        )),
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        FilterConfig::Cuckoo(CuckooConfig::new(8, 4, CuckooAddressing::PowerOfTwo)),
    ];
    // Several repetitions (the minimum is kept) so that one scheduling spike
    // on a noisy/oversubscribed host cannot invert the Bloom/Cuckoo cost
    // ordering this test asserts.
    let calibrator = Calibrator {
        probe_count: 16 * 1024,
        repetitions: 5,
        bits_per_key: 12.0,
    };
    let calibration = calibrator.calibrate(&configs, &[1 << 18, 1 << 24]);

    // Evaluate rho by hand at a mid-sized n for a very small and a very large tw.
    let n = 1u64 << 18;
    let best_kind = |tw: f64| -> FilterKind {
        let mut best: Option<(FilterKind, f64)> = None;
        for config in &configs {
            for bits_per_key in [10.0, 16.0, 20.0] {
                let Some(fpr) = config.modeled_fpr(n as f64, bits_per_key) else {
                    continue;
                };
                let Some(lookup) =
                    calibration.lookup_cycles(&config.label(), bits_per_key * n as f64)
                else {
                    continue;
                };
                let rho = lookup + fpr * tw;
                if best.is_none_or(|(_, r)| rho < r) {
                    best = Some((config.kind(), rho));
                }
            }
        }
        best.unwrap().0
    };
    assert_eq!(
        best_kind(16.0),
        FilterKind::Bloom,
        "tiny t_w must favour Bloom"
    );
    assert_eq!(
        best_kind(1e8),
        FilterKind::Cuckoo,
        "huge t_w must favour Cuckoo"
    );
}

/// Selection vectors coming out of batched lookups reference valid positions
/// and preserve batch order, across filter types.
#[test]
fn selection_vectors_are_ordered_and_in_range() {
    let mut gen = KeyGen::new(105);
    let keys = gen.distinct_keys(10_000);
    let probes = gen.keys(50_000);
    for config in [
        FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::Magic)),
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
    ] {
        let filter = AnyFilter::build_with_keys(&config, &keys, 20.0).unwrap();
        let mut sel = SelectionVector::new();
        filter.contains_batch(&probes, &mut sel);
        let positions = sel.as_slice();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be strictly increasing"
        );
        assert!(positions.iter().all(|&p| (p as usize) < probes.len()));
    }
}
