//! Tiered LSM lookups: the advisor picks a *different* filter family per
//! level from each level's `t_w`, and the `LsmTree` runs its filtering
//! through the resulting `TieredStore` — the paper's family-flip result,
//! executed end to end against the real serving-layer store. The finale is
//! online re-advising: the cold level is sealed (compaction stops deleting
//! from it), and the store migrates it to an immutable fuse filter *live*.
//!
//! Run with: `cargo run --release --example tiered_lsm`

use pof::prelude::*;
use pof::workloads::{LsmStats, Run};

fn main() {
    // Describe the hierarchy: a small, churn-heavy hot level whose misses
    // cost ~32 cycles (a skipped memtable probe), and a large cold level
    // whose misses cost a simulated NVMe read. The cold level is *still
    // compacting* — deletes land there — so the advisor starts it on an
    // in-place family rather than an immutable one.
    let hot = LevelSpec {
        expected_keys: 1 << 15,
        work_saved_cycles: 32.0,
        delete_rate: 0.5,
        ..LevelSpec::default()
    };
    let cold = LevelSpec {
        expected_keys: 1 << 19,
        work_saved_cycles: 16_000_000.0,
        delete_rate: 0.4,
        expected_probes_per_key: 1_000_000.0,
        ..LevelSpec::default()
    };
    let store = TieredStoreBuilder::new()
        .level(hot)
        .level(cold)
        .shards_per_level(4)
        .readvise(ReadviseOptions::default()) // observe traffic, re-advise live
        .build();

    println!("advisor-chosen level configuration:");
    for level in &store.stats().levels {
        let mutability = if store.level_store(level.level).config().immutable() {
            "immutable, re-peels on change"
        } else {
            "mutable in place"
        };
        println!(
            "  level {}: t_w = {:>10} cycles -> {} ({}), {} bits/key, deletes: {:?} [{}]",
            level.level,
            level.work_saved_cycles,
            level.family,
            level.config_label,
            level.bits_per_key_budget,
            level.delete_mode,
            mutability,
        );
    }
    let stats = store.stats();
    println!(
        "  split: hot churn -> {} (sidecar deletes), cold compacting -> {} \
         (in-place deletes)",
        stats.levels[0].family, stats.levels[1].family,
    );

    // Build the tree: 6 cold runs bulk-loaded into level 1, one hot run in
    // level 0. No run carries its own filter — the tiered store serves all
    // of them per level.
    let mut tree = LsmTree::with_tiered_store(store);
    let mut gen = KeyGen::new(41);
    let runs = 6;
    let keys_per_run = 60_000;
    let mut all_keys = Vec::new();
    for run_id in 0..runs {
        let keys = gen.distinct_keys(keys_per_run);
        all_keys.extend_from_slice(&keys);
        let pairs: Vec<(u32, u64)> = keys.iter().map(|&k| (k, u64::from(k) + run_id)).collect();
        tree.add_run_at_level(Run::build(pairs, None), 1);
    }
    let hot_keys = gen.distinct_keys(keys_per_run);
    all_keys.extend_from_slice(&hot_keys);
    let pairs: Vec<(u32, u64)> = hot_keys.iter().map(|&k| (k, u64::from(k))).collect();
    tree.add_run(Run::build(pairs, None)); // tiered mode: level 0

    // A negative-heavy point-lookup workload: 10% of probes hit.
    let lookups = 200_000;
    let run_read_cycles = 30_000.0;
    let filter_probe_cycles = 15.0;
    let mut stats = LsmStats::default();
    for key in gen.probes_with_selectivity(&all_keys, lookups, 0.1) {
        let _ = tree.get(key, &mut stats);
    }
    tree.capture_memory(&mut stats);

    println!("\n{lookups} lookups over {} runs:", tree.num_runs());
    println!("  run reads:          {:>10}", stats.run_reads);
    println!("  run reads avoided:  {:>10}", stats.run_reads_avoided);
    println!(
        "  simulated cost:     {:>10.1} Mcycles",
        stats.simulated_cost(run_read_cycles, filter_probe_cycles) / 1e6
    );
    println!("  filter memory:      {:>10} bytes", stats.filter_bytes);
    println!("\nfilter bytes per key, per level:");
    for level in tree.filter_memory() {
        println!(
            "  level {}: {} runs, {} keys, {} bytes ({:.2} bytes/key)",
            level.level,
            level.runs,
            level.keys,
            level.filter_bytes,
            level.bytes_per_key()
        );
    }
    println!("\nOne filter probe per level answers for every run of that level — a negative");
    println!("hot+cold verdict skips all {runs} cold runs at once, with the family at each");
    println!("level matched to what a miss there actually costs (the paper's t_w story).");

    // The cold level is sealed: compaction has passed it by, deletes stop,
    // and it will serve scans for the rest of its life. Re-aim that level's
    // workload hint and keep serving lookups — the store's own re-advising
    // observes the drift, confirms the flip through hysteresis, and migrates
    // every shard onto an immutable fuse filter through the same
    // snapshot/delta-replay/swap machinery as a background rebuild.
    let tiered = tree
        .tiered_store()
        .expect("tree was built on a tiered store");
    let sealed = tiered.stats();
    println!(
        "\nsealing level 1 ({} keys, {} @ {:.2} bits/live key) ...",
        sealed.levels[1].live_keys,
        sealed.levels[1].config_label,
        sealed.levels[1].bits_per_live_key(),
    );
    tiered.set_level_workload_hint(
        1,
        LevelSpec {
            expected_keys: sealed.levels[1].live_keys,
            work_saved_cycles: 16_000_000.0,
            delete_rate: 0.0,
            expected_probes_per_key: 1_000_000.0,
            ..LevelSpec::default()
        },
    );
    let mut stats = LsmStats::default();
    for round in 1..=40 {
        // Ordinary serving traffic keeps flowing during the whole migration.
        for key in gen.probes_with_selectivity(&all_keys, 2_000, 0.5) {
            let _ = tree.get(key, &mut stats);
        }
        let migrated = tiered.run_pending_readvise();
        let levels = tiered.stats();
        if migrated > 0 {
            println!(
                "  round {round:>2}: {migrated} migration step(s) -> level 1 is now {}",
                levels.levels[1].config_label,
            );
        }
        if levels.levels[1].family == FilterKind::Fuse {
            break;
        }
    }
    let after = tiered.stats();
    println!(
        "level 1 migrated live: {} -> {} in {} shard migrations, \
         {:.2} bits/live key, immutable: {}",
        sealed.levels[1].config_label,
        after.levels[1].config_label,
        after.levels[1].migrations,
        after.levels[1].bits_per_live_key(),
        tiered.level_store(1).config().immutable(),
    );
}
