//! LSM-tree point lookups (the low-throughput end of Figure 1): per-run
//! filters avoid simulated disk reads for runs that cannot contain the key.
//! Compares no filter, a cache-sectorized Bloom filter and a Cuckoo filter.
//!
//! Run with: `cargo run --release --example lsm_lookup`

use pof::prelude::*;
use pof::workloads::{LsmStats, Run};

fn build_tree(
    config: Option<&FilterConfig>,
    runs: usize,
    keys_per_run: usize,
) -> (LsmTree, Vec<u32>) {
    let mut gen = KeyGen::new(19);
    let mut tree = LsmTree::new();
    let mut all_keys = Vec::new();
    for _ in 0..runs {
        let keys = gen.distinct_keys(keys_per_run);
        all_keys.extend_from_slice(&keys);
        let pairs: Vec<(u32, u64)> = keys.iter().map(|&k| (k, u64::from(k))).collect();
        tree.add_run(Run::build(pairs, config.map(|c| (c, 20.0))));
    }
    (tree, all_keys)
}

fn main() {
    let runs = 8;
    let keys_per_run = 100_000;
    let lookups = 200_000;
    // A NVMe-style read costs on the order of 30k cycles; a filter probe ~15.
    let run_read_cycles = 30_000.0;
    let filter_probe_cycles = 15.0;

    let bloom = FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ));
    let cuckoo = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic));
    let configurations: [(&str, Option<&FilterConfig>); 3] = [
        ("no filter", None),
        ("cache-sectorized Bloom (k=8)", Some(&bloom)),
        ("Cuckoo (l=16,b=2)", Some(&cuckoo)),
    ];

    println!("LSM tree: {runs} runs x {keys_per_run} keys, {lookups} negative-heavy point lookups");
    println!(
        "{:<30} {:>12} {:>14} {:>20}",
        "per-run filter", "run reads", "reads avoided", "simulated cost (Mcyc)"
    );
    for (name, config) in configurations {
        let (tree, keys) = build_tree(config, runs, keys_per_run);
        let mut gen = KeyGen::new(23);
        let mut stats = LsmStats::default();
        // 10 % of lookups hit an existing key, 90 % miss every run.
        let probes = gen.probes_with_selectivity(&keys, lookups, 0.1);
        for key in probes {
            let _ = tree.get(key, &mut stats);
        }
        println!(
            "{name:<30} {:>12} {:>14} {:>20.1}",
            stats.run_reads,
            stats.run_reads_avoided,
            stats.simulated_cost(
                run_read_cycles,
                if config.is_some() {
                    filter_probe_cycles
                } else {
                    0.0
                }
            ) / 1e6
        );
    }

    println!("\nAt this t_w (a simulated NVMe read) the Cuckoo filter's lower false-positive rate");
    println!("avoids more reads than the Bloom filter — the right-hand region of Figure 1.");
}
