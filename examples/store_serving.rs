//! The sharded filter store end to end: build an advisor-configured store
//! with a deferred-maintenance lifecycle policy, serve concurrent batched
//! lookups from several reader threads while a writer keeps inserting, then
//! delete a key wave, fold the deferred work with `maintain()`, and report
//! per-shard statistics plus the observed false-positive rate. A second act
//! turns on `rebuild_mode(RebuildMode::Background)` and contrasts the writer stall
//! statistics: with a maintainer, rebuilds leave the write path entirely.
//!
//! Run with: `cargo run --release --example store_serving`

use pof::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // An advisor-chosen store: high-throughput probe pipeline (~200 cycles
    // saved per rejected tuple, 10% hit rate) => a Bloom filter family.
    // The lifecycle policy is selectable per workload: `SaturationDoubling`
    // (default) rebuilds inline, `FprDrift::new(2.0)` rebuilds on modeled-FPR
    // drift, `DeferredBatch` keeps ingest latency flat by parking overflow
    // keys until the next maintain() call.
    let store = Arc::new(
        StoreBuilder::new()
            .shards(8)
            .expected_keys(1 << 18)
            .advised(200.0, 0.1)
            .rebuild_policy(Arc::new(DeferredBatch::new(16 * 1024)))
            .build(),
    );
    println!(
        "store: {} shards, config {}, policy deferred-batch",
        store.shard_count(),
        store.config().label()
    );

    let mut gen = KeyGen::new(2024);
    let initial = gen.distinct_keys(1 << 18);
    store.insert_batch(&initial);

    // Reader threads: batched lookups against snapshot-isolated shards.
    let readers = std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(4);
    let stop = Arc::new(AtomicBool::new(false));
    let probed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let probed = Arc::clone(&probed);
            std::thread::spawn(move || {
                let mut gen = KeyGen::new(7_000 + r as u64);
                let probes = gen.keys(1 << 16);
                let mut sel = SelectionVector::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    for batch in probes.chunks(4096) {
                        sel.clear();
                        store.contains_batch(batch, &mut sel);
                    }
                    probed.fetch_add(probes.len() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Writer: keep growing the store while the readers run.
    let mut inserted_late = 0usize;
    while start.elapsed().as_millis() < 500 {
        let batch = gen.distinct_keys(8_192);
        store.insert_batch(&batch);
        inserted_late += batch.len();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        handle.join().expect("reader thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let lookups = probed.load(Ordering::Relaxed);
    println!(
        "{readers} reader(s): {:.1}M lookups/s while inserting {inserted_late} keys concurrently",
        lookups as f64 / elapsed / 1e6
    );

    // The burst left overflow parked outside the filters; fold it in now,
    // from a quiet moment of our choosing rather than mid-ingest.
    let stats = store.stats();
    println!(
        "after burst: keys {}  overflow {}  rebuilds {}",
        stats.total_keys(),
        stats.total_overflow(),
        stats.total_rebuilds()
    );
    let folded = store.maintain();
    println!("maintain(): {folded} shard(s) folded their deferred work");

    // Deletes work for every shard family: Cuckoo shards remove signatures
    // in place, Bloom shards tombstone and purge at the next rebuild.
    let doomed = &initial[..1 << 16];
    let removed = store.delete_batch(doomed);
    let stats = store.stats();
    println!(
        "deleted {removed} keys: key_count {}  tombstones {}",
        store.key_count(),
        stats.total_tombstones()
    );
    store.maintain();
    println!(
        "after maintain(): tombstones {}",
        store.stats().total_tombstones()
    );

    // Per-shard statistics and the measured false-positive rate.
    let stats = store.stats();
    println!(
        "keys {}  size {:.1} MiB  rebuilds {}  imbalance {:.2}  bookkeeping {:.1} KiB",
        stats.total_keys(),
        stats.total_size_bits() as f64 / 8.0 / 1024.0 / 1024.0,
        stats.total_rebuilds(),
        stats.imbalance(),
        stats.total_bookkeeping_bytes() as f64 / 1024.0
    );
    for shard in &stats.shards {
        println!(
            "  shard {:>2}: {:>7} keys  {:>5.1} bits/key  modeled fpr {:.2e}  kernel {}  policy {}",
            shard.shard,
            shard.keys,
            shard.bits_per_key,
            shard.modeled_fpr,
            shard.kernel,
            shard.policy
        );
    }
    println!(
        "modeled fpr {:.3e}  observed fpr {:.3e}",
        stats.weighted_modeled_fpr(),
        store.observed_fpr(500_000, 11)
    );

    // Act two: the same growth burst with rebuilds inline vs on the
    // background maintainer. Both stores are deliberately undersized, so
    // every shard must keep growing; inline mode pays each O(shard) rebuild
    // inside an insert_batch call, background mode swaps replacements in
    // off-lock and the write path never rebuilds at all
    // (writer_rebuild_stall_ns stays 0; max_writer_stall_ns is wall clock
    // and also absorbs scheduler noise on saturated hosts).
    println!("\n-- background rebuilds: writer stall comparison --");
    for background in [false, true] {
        let store = StoreBuilder::new()
            .shards(8)
            .expected_keys(16 * 1024) // undersized on purpose
            .rebuild_mode(if background {
                RebuildMode::Background
            } else {
                RebuildMode::Inline
            })
            .build();
        let mut gen = KeyGen::new(4 * 1024);
        for _ in 0..64 {
            store.insert_batch(&gen.distinct_keys(8 * 1024));
        }
        store.maintain(); // drain barrier: every in-flight swap lands
        let stats = store.stats();
        println!(
            "background={background:<5}  keys {}  rebuilds {} ({} off-lock)  \
             max writer stall {:.2} ms  inline-rebuild stall {:.2} ms",
            store.key_count(),
            stats.total_rebuilds(),
            stats.total_background_rebuilds(),
            stats.max_writer_stall_ns() as f64 / 1e6,
            stats.writer_rebuild_stall_ns() as f64 / 1e6,
        );
    }

    // Act three: 10k-key mass-probe batches, staged vs scalar kernels. The
    // staged path hashes and prefetches one chunk ahead of the probes, so
    // each filter line's memory latency overlaps the next chunk's address
    // math. Every batch probes fresh keys — re-probing one warm batch would
    // measure cache hits, not the mass-probe regime the kernels exist for.
    println!("\n-- staged vs scalar mass-probe kernels: 10k-key batches --");
    let mut gen = KeyGen::new(0x57A6ED);
    let members = gen.distinct_keys(1 << 22);
    let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ));
    let filter = AnyFilter::build_with_keys(&config, &members, 20.0)
        .expect("bloom construction never fails");
    let batch = 10_000;
    let pool = gen.keys(batch * 64);
    let mut sel = SelectionVector::with_capacity(batch);
    let mut plan = ProbePlan::new();
    let mut staged_hits = 0usize;
    let staged_start = Instant::now();
    for window in pool.chunks_exact(batch) {
        sel.clear();
        filter.contains_batch_staged(window, &mut sel, &mut plan);
        staged_hits += sel.len();
    }
    let staged = pool.len() as f64 / staged_start.elapsed().as_secs_f64() / 1e6;
    let mut scalar_hits = 0usize;
    let scalar_start = Instant::now();
    for window in pool.chunks_exact(batch) {
        sel.clear();
        filter.contains_batch_scalar(window, &mut sel);
        scalar_hits += sel.len();
    }
    let scalar = pool.len() as f64 / scalar_start.elapsed().as_secs_f64() / 1e6;
    assert_eq!(staged_hits, scalar_hits, "the two kernels must agree");
    println!(
        "{} ({:.1} MiB): staged {staged:.0} Mops/s  scalar {scalar:.0} Mops/s  ({:.2}x)",
        config.label(),
        filter.size_bits() as f64 / 8.0 / 1024.0 / 1024.0,
        staged / scalar
    );
}
