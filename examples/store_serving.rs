//! The sharded filter store end to end: build an advisor-configured store,
//! serve concurrent batched lookups from several reader threads while a
//! writer keeps inserting (forcing shard rebuilds), and report per-shard
//! statistics plus the observed false-positive rate.
//!
//! Run with: `cargo run --release --example store_serving`

use pof::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // An advisor-chosen store: high-throughput probe pipeline (~200 cycles
    // saved per rejected tuple, 10% hit rate) => a Bloom filter family.
    let store = Arc::new(
        StoreBuilder::new()
            .shards(8)
            .expected_keys(1 << 18)
            .advised(200.0, 0.1)
            .build(),
    );
    println!(
        "store: {} shards, config {}",
        store.shard_count(),
        store.config().label()
    );

    let mut gen = KeyGen::new(2024);
    let initial = gen.distinct_keys(1 << 18);
    store.insert_batch(&initial);

    // Reader threads: batched lookups against snapshot-isolated shards.
    let readers = std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(4);
    let stop = Arc::new(AtomicBool::new(false));
    let probed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let probed = Arc::clone(&probed);
            std::thread::spawn(move || {
                let mut gen = KeyGen::new(7_000 + r as u64);
                let probes = gen.keys(1 << 16);
                let mut sel = SelectionVector::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    for batch in probes.chunks(4096) {
                        sel.clear();
                        store.contains_batch(batch, &mut sel);
                    }
                    probed.fetch_add(probes.len() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Writer: keep growing the store while the readers run.
    let mut inserted_late = 0usize;
    while start.elapsed().as_millis() < 500 {
        let batch = gen.distinct_keys(8_192);
        store.insert_batch(&batch);
        inserted_late += batch.len();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        handle.join().expect("reader thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let lookups = probed.load(Ordering::Relaxed);
    println!(
        "{readers} reader(s): {:.1}M lookups/s while inserting {inserted_late} keys concurrently",
        lookups as f64 / elapsed / 1e6
    );

    // Per-shard statistics and the measured false-positive rate.
    let stats = store.stats();
    println!(
        "keys {}  size {:.1} MiB  rebuilds {}  imbalance {:.2}",
        stats.total_keys(),
        stats.total_size_bits() as f64 / 8.0 / 1024.0 / 1024.0,
        stats.total_rebuilds(),
        stats.imbalance()
    );
    for shard in &stats.shards {
        println!(
            "  shard {:>2}: {:>7} keys  {:>5.1} bits/key  modeled fpr {:.2e}  kernel {}",
            shard.shard, shard.keys, shard.bits_per_key, shard.modeled_fpr, shard.kernel
        );
    }
    println!(
        "modeled fpr {:.3e}  observed fpr {:.3e}",
        stats.weighted_modeled_fpr(),
        store.observed_fpr(500_000, 11)
    );
}
