//! Selective join pushdown (Figure 2): run a hash-join probe pipeline with
//! and without a Bloom filter pushed into the fact-table scan, across a range
//! of join selectivities, and report the measured speedups.
//!
//! Run with: `cargo run --release --example join_pushdown`

use pof::prelude::*;
use std::time::Instant;

fn main() {
    let dimension_rows = 200_000;
    let fact_rows = 4_000_000;
    println!("selective join pushdown: {dimension_rows} dimension rows, {fact_rows} fact rows");
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>16}",
        "sigma", "unfiltered(ms)", "filtered(ms)", "speedup", "tuples filtered"
    );

    for sigma in [0.01, 0.05, 0.25, 0.5, 1.0] {
        let workload = JoinWorkload::generate(7, dimension_rows, fact_rows, sigma);
        let hash_table = JoinHashTable::build(&workload.dimension_keys);
        let mut pipeline = ProbePipeline::new(&workload, &hash_table);
        // Some per-tuple work between scan and join (expression evaluation,
        // decompression, …), so that there is something to save.
        pipeline.pre_join_work = 16;

        let filter = AnyFilter::build_with_keys(
            &FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
            &workload.dimension_keys,
            16.0,
        )
        .expect("filter construction");

        let start = Instant::now();
        let unfiltered = pipeline.run_unfiltered();
        let unfiltered_time = start.elapsed();

        let start = Instant::now();
        let filtered = pipeline.run_with_filter(&filter);
        let filtered_time = start.elapsed();

        assert_eq!(
            unfiltered.matches, filtered.matches,
            "filter must not change the result"
        );
        println!(
            "{sigma:>6.2} {:>14.1} {:>14.1} {:>8.2}x {:>16}",
            unfiltered_time.as_secs_f64() * 1e3,
            filtered_time.as_secs_f64() * 1e3,
            unfiltered_time.as_secs_f64() / filtered_time.as_secs_f64(),
            filtered.filtered_out
        );
    }

    println!("\nNote: at sigma = 1.0 every probe finds a match, so the filter is pure overhead —");
    println!("exactly the case the advisor's benefit criterion (rho < (1 - sigma) * t_w) rejects.");
}
