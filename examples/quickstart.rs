//! Quickstart: build the paper's two headline filters, compare their measured
//! false-positive rate against the analytical models, and let the advisor pick
//! the performance-optimal configuration for a workload.
//!
//! Run with: `cargo run --release --example quickstart`

use pof::prelude::*;

fn main() {
    // --- 1. Build a cache-sectorized Bloom filter and a Cuckoo filter. -----
    let mut gen = KeyGen::new(42);
    let keys = gen.distinct_keys(1_000_000);

    let bloom_config = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic);
    let mut bloom = BlockedBloom::with_bits_per_key(bloom_config, keys.len(), 16.0);
    let mut cuckoo = CuckooFilter::for_keys(CuckooConfig::representative(), keys.len());
    for &key in &keys {
        bloom.insert(key);
        cuckoo.insert(key);
    }

    println!("filter                          size        modeled f   measured f");
    for (name, filter) in [
        ("cache-sectorized Bloom", &bloom as &dyn Filter),
        ("Cuckoo (l=16,b=2)", &cuckoo),
    ] {
        let measured = pof::filter::measured_fpr(filter, &keys, 2_000_000, 7).fpr;
        let modeled = match name {
            "cache-sectorized Bloom" => bloom.modeled_fpr(),
            _ => cuckoo.modeled_fpr(),
        };
        println!(
            "{name:<30}  {:>6.1} MiB   {modeled:.2e}   {measured:.2e}",
            filter.size_bits() as f64 / 8.0 / 1024.0 / 1024.0
        );
    }

    // --- 2. Batched lookups produce selection vectors. ---------------------
    let probes = gen.keys(100_000);
    let mut sel = SelectionVector::with_capacity(probes.len());
    bloom.contains_batch(&probes, &mut sel);
    println!(
        "\nbatched probe of {} random keys: {} qualify ({:.3}%), kernel = {}",
        probes.len(),
        sel.len(),
        100.0 * sel.selectivity(probes.len()),
        bloom.kernel_name()
    );

    // --- 3. Ask the advisor which filter is performance-optimal. -----------
    let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
    println!("\nadvisor recommendations (n = 1M keys, sigma = 0.1):");
    println!(
        "{:<18} {:<42} {:>10} {:>9}",
        "work saved (cyc)", "recommended configuration", "bits/key", "speedup"
    );
    for work_saved in [50.0, 500.0, 50_000.0, 5_000_000.0] {
        let rec = advisor.recommend(&WorkloadSpec {
            n: keys.len() as u64,
            work_saved_cycles: work_saved,
            sigma: 0.1,
        });
        println!(
            "{work_saved:<18} {:<42} {:>10.0} {:>8.1}x",
            rec.config.label(),
            rec.bits_per_key,
            rec.predicted_speedup
        );
    }
}
