//! Persistence and crash recovery end to end: open a persistent sharded
//! store, ingest and checkpoint, keep writing past the checkpoint, then
//! "kill" the process at a chosen fault point with the store's own fault
//! injector — and reopen the directory to show recovery mapping the newest
//! valid snapshot and replaying the WAL tail, oracle-exact. A second act
//! tears the newest snapshot on disk and reopens again, proving the fallback
//! to the previous generation.
//!
//! Run with: `cargo run --release --example kill_and_reopen`

use pof::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("pof-kill-and-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // -- Act 1: ingest, checkpoint, keep writing, crash mid-journal --------
    //
    // The fault injector is the crash lever: armed at a FaultPoint, it kills
    // the instrumented operation exactly once, after which the persistence
    // layer plays dead — exactly what a power cut at that instant leaves on
    // disk.
    let fault = Arc::new(FaultInjector::new());
    let options = StoreOptions {
        shard_count: 4,
        capacity_per_shard: 1 << 14,
        ..StoreOptions::default()
    };
    let store = ShardedFilterStore::open_with(
        &dir,
        options.clone(),
        PersistOptions {
            fault: Some(Arc::clone(&fault)),
            ..PersistOptions::durable()
        },
    )
    .expect("create persistent store");

    let mut oracle: BTreeSet<u32> = BTreeSet::new();
    let checkpointed: Vec<u32> = (0..40_000).collect();
    store.insert_batch(&checkpointed);
    oracle.extend(&checkpointed);
    store.persist_checkpoint().expect("checkpoint");
    println!(
        "checkpointed {} keys into {}",
        store.key_count(),
        dir.display()
    );

    // A WAL tail past the checkpoint: durable, but in no snapshot yet.
    let tail: Vec<u32> = (40_000..52_000).collect();
    store.insert_batch(&tail);
    oracle.extend(&tail);
    store.delete_batch(&checkpointed[..5_000]);
    for key in &checkpointed[..5_000] {
        oracle.remove(key);
    }

    // The crash: tear the next insert mid-append. The batch never becomes
    // durable and is not applied — a recovered store must not contain it.
    fault.arm(FaultPoint::MidWalAppend);
    let lost: Vec<u32> = (90_000..90_064).collect();
    store.insert_batch(&lost);
    assert!(fault.fired());
    println!(
        "crashed mid-WAL-append: a {}-key batch died un-acknowledged",
        lost.len()
    );
    drop(store); // the process is gone

    // -- Act 2: reopen — snapshot mmap + WAL tail replay -------------------
    let start = Instant::now();
    let recovered = ShardedFilterStore::open(&dir, options.clone()).expect("recover");
    println!(
        "reopened in {:.2?}: {} keys (snapshot + replayed WAL tail)",
        start.elapsed(),
        recovered.key_count()
    );
    assert_eq!(recovered.key_count(), oracle.len());
    for &key in &oracle {
        assert!(recovered.contains(key), "lost key {key}");
    }
    for &key in &lost {
        // The torn batch stayed lost — the journal and the store agree.
        assert!(!oracle.contains(&key));
    }
    recovered
        .persist_checkpoint()
        .expect("post-recovery checkpoint");
    drop(recovered);

    // -- Act 3: tear the newest snapshot, fall back a generation -----------
    let mut snapshots: Vec<_> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "snap"))
        .collect();
    snapshots.sort();
    let newest = snapshots.last().expect("a snapshot exists");
    let len = std::fs::metadata(newest).expect("snapshot metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(newest)
        .expect("open snapshot")
        .set_len(len / 2)
        .expect("tear snapshot");
    println!("tore {} to {} of {} bytes", newest.display(), len / 2, len);

    let reopened = ShardedFilterStore::open(&dir, options).expect("fallback recovery");
    assert_eq!(reopened.key_count(), oracle.len());
    for &key in &oracle {
        assert!(reopened.contains(key), "fallback lost key {key}");
    }
    println!(
        "torn snapshot masked by the previous generation: {} keys, zero losses",
        reopened.key_count()
    );

    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
