//! The performance-optimal filter advisor end to end: calibrate lookup costs
//! on this machine (measured, not modelled), then sweep the work-saved axis
//! and show where the recommendation flips from Bloom to Cuckoo — the paper's
//! Figure 1 boundary, reproduced on the host.
//!
//! Run with: `cargo run --release --example filter_advisor`

use pof::prelude::*;

fn main() {
    let n: u64 = 1 << 20;
    let sigma = 0.1;

    // One-time calibration of a reduced configuration space on this host.
    let space = ConfigSpace::default();
    println!(
        "calibrating {} filter configurations (measured lookups)…",
        space.all_configs().len()
    );
    let calibrator = Calibrator {
        probe_count: 16 * 1024,
        repetitions: 2,
        bits_per_key: 12.0,
    };
    let calibration = calibrator.calibrate(&space.all_configs(), &[1 << 20, 1 << 24, 1 << 27]);
    println!("estimated CPU frequency: {:.2} GHz", calibration.cpu_ghz);

    let advisor = FilterAdvisor::new(space, calibration);
    println!("\nworkload: n = 2^20 keys, sigma = {sigma}");
    println!(
        "{:>16} {:<14} {:<44} {:>9} {:>12}",
        "work saved (cyc)", "type", "configuration", "bits/key", "rho (cyc)"
    );
    let mut previous_kind: Option<FilterKind> = None;
    for exponent in [4u32, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24] {
        let work_saved = f64::from(1u32 << exponent);
        let rec = advisor.recommend(&WorkloadSpec {
            n,
            work_saved_cycles: work_saved,
            sigma,
        });
        let marker = match previous_kind {
            Some(prev) if prev != rec.config.kind() => "  <-- crossover",
            _ => "",
        };
        println!(
            "{work_saved:>16.0} {:<14} {:<44} {:>9.0} {:>12.1}{marker}",
            rec.config.kind().to_string(),
            rec.config.label(),
            rec.bits_per_key,
            rec.rho_cycles
        );
        previous_kind = Some(rec.config.kind());
    }

    println!("\nAs in the paper: cheap lookups (blocked Bloom) win while the work saved per");
    println!(
        "filtered tuple is small; precision (Cuckoo) wins once each false positive is costly."
    );
}
