#!/usr/bin/env bash
# The workspace's analysis gates, consolidated: one entry point for CI's
# `analyze` job and for running the same checks locally before pushing.
#
#   scripts/gates.sh            # static gates (fast; no bench run)
#   scripts/gates.sh --bench    # also regenerate BENCH_store.json (quick
#                               # mode) and gate the fresh sweep against the
#                               # committed baseline's schema
#
# Gates, in order:
#   1. pof-analyze --check      unsafe ledger, atomics-ordering audit,
#                               lock-discipline and no-alloc passes
#                               (see README "Analysis gates")
#   2. check_public_api.py      no silently dropped public items vs
#                               API_SURFACE.txt (regenerate with --write)
#   3. check_bench_schema.py    the committed BENCH_store.json still
#                               guarantees every schema path and satisfies
#                               the drift-cell contract (with --bench, the
#                               freshly generated sweep is gated instead)
#   4. check_mass_probe.py      staged kernels beat scalar at the 10k-batch
#                               cells recorded in the gated sweep

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        *)
            echo "gates.sh: unknown argument '$arg' (supported: --bench)" >&2
            exit 2
            ;;
    esac
done

echo "==> gate 1/4: pof-analyze (unsafe ledger, atomics, lock discipline, no-alloc)"
cargo run -q -p pof-analyze -- --check

echo "==> gate 2/4: public API surface vs API_SURFACE.txt"
python3 scripts/check_public_api.py --check

SWEEP=BENCH_store.json
if [ "$RUN_BENCH" = 1 ]; then
    echo "==> regenerating $SWEEP (quick mode)"
    POF_BENCH_QUICK=1 POF_BENCH_JSON="$SWEEP" cargo bench -p pof-bench --bench store_throughput
    git show "HEAD:$SWEEP" > /tmp/bench_baseline.json
    BASELINE=/tmp/bench_baseline.json
else
    # Without a fresh run, gate the committed sweep against itself: this is
    # not vacuous — it proves the file parses, guarantees its own schema
    # paths, and (via the script's drift-cell contract) that the recorded
    # re-advising cells still carry the fields downstream comparisons read.
    BASELINE="$SWEEP"
fi

echo "==> gate 3/4: bench sweep schema + drift contract"
python3 scripts/check_bench_schema.py "$BASELINE" "$SWEEP"

echo "==> gate 4/4: staged mass-probe kernels beat scalar (10k batches)"
python3 scripts/check_mass_probe.py "$SWEEP"

echo "gates.sh: all gates green"
