#!/usr/bin/env python3
"""Guard against silent bench-field drift in BENCH_store.json.

Usage: check_bench_schema.py <baseline.json> <fresh.json>

Collects the set of key *paths* guaranteed by each document (object keys,
recursing through lists as `name[]`) and fails if any path guaranteed by the
committed baseline is no longer guaranteed by the freshly generated sweep —
i.e. if a refactor dropped a recorded field, a whole sweep section, or
renamed a key without updating the baseline. New fields are fine (the
trajectory grows); lost fields are not (downstream comparisons silently go
blind).
"""

import json
import sys


def key_paths(node, prefix=""):
    """Key paths *guaranteed* by `node`.

    Object keys recurse normally; for lists, only paths present in **every**
    entry count (intersection, not union) — so a field dropped from just a
    subset of sweep cells (e.g. recorded only for one delete mode) is
    reported as lost rather than hidden by the sibling cells that kept it.
    """
    paths = set()
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            paths.add(path)
            paths |= key_paths(value, path)
    elif isinstance(node, list) and node:
        entry_sets = [key_paths(value, prefix + "[]") for value in node]
        paths |= set.intersection(*entry_sets)
    return paths


def check_drift_contract(document):
    """The recorded `drift` cells carry a contract, not just a schema: the
    online re-advising run must actually have migrated onto a
    fingerprint-backed family, reclaimed memory versus its Bloom start, and
    never answered a false negative. Returns a list of violations."""
    problems = []
    cells = document.get("drift")
    if not isinstance(cells, list) or not cells:
        return [f"drift: expected a non-empty list, got {type(cells).__name__}"]
    for index, cell in enumerate(cells):
        label = f"drift[{index}]"
        if cell.get("migrations", 0) < 1:
            problems.append(f"{label}: no migration was recorded")
        if cell.get("fingerprint_bits", 0) <= 0:
            problems.append(f"{label}: final family is not fingerprint-backed")
        if cell.get("false_negative_rounds", 1) != 0:
            problems.append(f"{label}: saw a false negative round")
        before = cell.get("bloom_bits_per_live_key", 0.0)
        after = cell.get("bits_per_live_key", float("inf"))
        if not after < before:
            problems.append(
                f"{label}: migration reclaimed no memory "
                f"({after} bits/live-key vs Bloom's {before})")
    return problems


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    baseline_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(baseline_path) as f:
        baseline = key_paths(json.load(f))
    with open(fresh_path) as f:
        fresh_document = json.load(f)
    fresh = key_paths(fresh_document)
    drift_problems = check_drift_contract(fresh_document)
    if drift_problems:
        print(f"FAIL: drift contract violated in {fresh_path}:")
        for problem in drift_problems:
            print(f"  - {problem}")
        sys.exit(1)
    lost = sorted(baseline - fresh)
    if lost:
        print(f"FAIL: {len(lost)} field path(s) in {baseline_path} are missing "
              f"from {fresh_path}:")
        for path in lost:
            print(f"  - {path}")
        sys.exit(1)
    gained = sorted(fresh - baseline)
    print(f"OK: all {len(baseline)} baseline field paths present"
          + (f"; {len(gained)} new: {', '.join(gained)}" if gained else ""))


if __name__ == "__main__":
    main()
