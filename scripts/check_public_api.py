#!/usr/bin/env python3
"""Public-API surface snapshot for the workspace crates.

Usage:
  check_public_api.py --write   # regenerate API_SURFACE.txt
  check_public_api.py --check   # fail on undocumented removals (CI mode)

Extracts every `pub fn` / `pub struct` / `pub enum` / `pub trait` /
`pub type` / `pub const` declaration (excluding `pub(crate)` and narrower)
from each workspace crate's sources into a sorted snapshot, committed as
API_SURFACE.txt at the repo root.

In --check mode the snapshot is regenerated in memory and compared against
the committed file: any committed line missing from the fresh scan is an API
*removal* that nobody recorded — the job fails and prints the lost items, so
a refactor cannot silently drop public surface (the exact hazard of a
builder/options consolidation like the StoreOptions migration). New items
are reported as [info]; run --write and commit the updated snapshot to
record them. A scan that finds nothing at all also fails — the gate must
not silently go blind to a layout change.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SNAPSHOT = os.path.join(REPO_ROOT, "API_SURFACE.txt")

# `pub` then an optional qualifier chain, then the item kind and its name.
# `pub(crate)`/`pub(super)`/`pub(in ...)` are internal and must not match.
ITEM = re.compile(
    r"^\s*pub\s+(?:unsafe\s+|async\s+|const\s+|extern\s+\"[^\"]*\"\s+)*"
    r"(fn|struct|enum|trait|type|const|static)\s+([A-Za-z_][A-Za-z0-9_]*)"
)

HEADER = [
    "# Public API surface, one `crate kind name` per line.",
    "# Regenerate with: python3 scripts/check_public_api.py --write",
    "# CI fails if any line here disappears from a fresh scan (an",
    "# unrecorded public-API removal).",
]


def crate_sources():
    """Yield (crate_name, src_dir) for every workspace crate."""
    crates = [(os.path.join(REPO_ROOT, "crates", entry), None)
              for entry in sorted(os.listdir(os.path.join(REPO_ROOT, "crates")))]
    crates.append((REPO_ROOT, "pof"))  # the umbrella crate at the root
    for crate_dir, forced_name in crates:
        manifest = os.path.join(crate_dir, "Cargo.toml")
        src = os.path.join(crate_dir, "src")
        if not (os.path.isfile(manifest) and os.path.isdir(src)):
            continue
        name = forced_name
        if name is None:
            with open(manifest) as f:
                match = re.search(r'^name\s*=\s*"([^"]+)"', f.read(), re.M)
            if not match:
                continue
            name = match.group(1)
        yield name, src


def scan():
    """The full surface as a sorted list of `crate kind name` lines."""
    surface = set()
    for crate, src in crate_sources():
        for dirpath, _, filenames in os.walk(src):
            for filename in filenames:
                if not filename.endswith(".rs"):
                    continue
                with open(os.path.join(dirpath, filename)) as f:
                    for line in f:
                        match = ITEM.match(line)
                        if match:
                            kind, name = match.groups()
                            surface.add(f"{crate} {kind} {name}")
    return sorted(surface)


def main():
    mode = sys.argv[1] if len(sys.argv) == 2 else None
    if mode not in ("--write", "--check"):
        sys.exit(__doc__.strip())
    fresh = scan()
    if not fresh:
        sys.exit("FAIL: scan found no public items — crate layout changed?")
    if mode == "--write":
        with open(SNAPSHOT, "w") as f:
            f.write("\n".join(HEADER + fresh) + "\n")
        print(f"wrote {len(fresh)} public items to {SNAPSHOT}")
        return
    if not os.path.isfile(SNAPSHOT):
        sys.exit(f"FAIL: {SNAPSHOT} missing; run --write and commit it")
    with open(SNAPSHOT) as f:
        committed = [line.rstrip("\n") for line in f
                     if line.strip() and not line.startswith("#")]
    removed = sorted(set(committed) - set(fresh))
    added = sorted(set(fresh) - set(committed))
    for item in added:
        print(f"  [info] new public item not yet in snapshot: {item}")
    if removed:
        print(f"FAIL: {len(removed)} public item(s) in API_SURFACE.txt "
              "disappeared from the scan:")
        for item in removed:
            print(f"  - {item}")
        print("If the removal is intentional, regenerate the snapshot with "
              "--write and commit it alongside the change.")
        sys.exit(1)
    print(f"OK: all {len(committed)} snapshot items still present"
          + (f"; {len(added)} new (run --write to record)" if added else ""))


if __name__ == "__main__":
    main()
