#!/usr/bin/env python3
"""Perf-smoke gate for the staged mass-probe kernels.

Usage: check_mass_probe.py <BENCH_store.json>

Reads the `mass_probe` sweep (family x batch-size cells, each recording the
staged and scalar kernel rates over identical cold-streaming probe windows)
and fails if the staged kernel lost to the scalar kernel at the 10k-batch
cell for any mutable family (bloom*, cuckoo*) — the regime the staged
pipeline exists for. Fuse cells are informational only: a fingerprint array
that fits the host's last-level cache is already latency-hidden by the
out-of-order window, so scalar legitimately wins there on large-LLC hosts.

Also fails if no cell was checked at all (e.g. the sweep section was dropped
or renamed), so the gate cannot silently go blind.
"""

import json
import sys

GATED_BATCH = 10_000
GATED_FAMILY_PREFIXES = ("bloom", "cuckoo")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        document = json.load(f)
    cells = document.get("mass_probe", [])
    checked = 0
    failures = []
    for cell in cells:
        family = cell.get("family", "")
        batch = cell.get("batch")
        staged = cell.get("staged_mops")
        scalar = cell.get("scalar_mops")
        if batch != GATED_BATCH or staged is None or scalar is None:
            continue
        gated = family.startswith(GATED_FAMILY_PREFIXES)
        verdict = "gate" if gated else "info"
        print(f"  [{verdict}] {family}/batch {batch}: staged {staged:.2f} "
              f"Mops/s vs scalar {scalar:.2f} Mops/s "
              f"({staged / scalar:.2f}x)")
        if not gated:
            continue
        checked += 1
        if staged < scalar:
            failures.append(
                f"{family}: staged {staged:.2f} Mops/s < scalar "
                f"{scalar:.2f} Mops/s at batch {batch}")
    if checked == 0:
        sys.exit("FAIL: no mass_probe cells at batch "
                 f"{GATED_BATCH} for families {GATED_FAMILY_PREFIXES} — "
                 "sweep missing or renamed?")
    if failures:
        print(f"FAIL: staged kernel lost to scalar in {len(failures)} "
              "gated cell(s):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print(f"OK: staged >= scalar in all {checked} gated 10k-batch cells")


if __name__ == "__main__":
    main()
