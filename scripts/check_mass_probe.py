#!/usr/bin/env python3
"""Perf-smoke gate for the staged mass-probe kernels.

Usage: check_mass_probe.py <BENCH_store.json>

Reads the `mass_probe` sweep (family x batch-size cells, each recording the
staged and scalar kernel rates over identical cold-streaming probe windows,
plus which kernel the family-aware automatic routing picks for that cell)
and applies two gates at the 10k-batch cell of every family:

* mutable families (bloom*, cuckoo*): the staged kernel must not lose to
  the scalar kernel — the regime the hash -> prefetch -> probe pipeline
  exists for;
* every family, fuse included: the *routed* kernel must not be the losing
  one by more than ROUTING_SLACK. This is the regression the fuse footprint
  floor fixed — the generic routing used to send store-scale fuse filters
  down the staged path, where their three-adjacent-segment probe locality
  makes scalar the winner — and the gate keeps it fixed in both directions.

Also fails if no cell was checked at all (e.g. the sweep section was dropped
or renamed), so the gate cannot silently go blind.
"""

import json
import sys

GATED_BATCH = 10_000
STAGED_FAMILY_PREFIXES = ("bloom", "cuckoo")
# The routed kernel may trail the other by this factor before the gate
# trips: the two rates are measured seconds apart on a shared host, so a
# few percent of noise is expected; picking the *wrong* kernel costs far
# more than this on the cells that matter.
ROUTING_SLACK = 0.90


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        document = json.load(f)
    cells = document.get("mass_probe", [])
    checked = 0
    failures = []
    for cell in cells:
        family = cell.get("family", "")
        batch = cell.get("batch")
        staged = cell.get("staged_mops")
        scalar = cell.get("scalar_mops")
        routed = cell.get("routed")
        if batch != GATED_BATCH or staged is None or scalar is None:
            continue
        checked += 1
        print(f"  [gate] {family}/batch {batch}: staged {staged:.2f} "
              f"Mops/s vs scalar {scalar:.2f} Mops/s "
              f"({staged / scalar:.2f}x), routed={routed}")
        if family.startswith(STAGED_FAMILY_PREFIXES) and staged < scalar:
            failures.append(
                f"{family}: staged {staged:.2f} Mops/s < scalar "
                f"{scalar:.2f} Mops/s at batch {batch}")
        if routed not in ("staged", "scalar"):
            failures.append(
                f"{family}: cell records no routed kernel "
                f"(got {routed!r}) — bench out of date?")
            continue
        chosen = staged if routed == "staged" else scalar
        other = scalar if routed == "staged" else staged
        if chosen < ROUTING_SLACK * other:
            failures.append(
                f"{family}: routing picked the losing kernel ({routed}: "
                f"{chosen:.2f} Mops/s vs {other:.2f} Mops/s) at batch "
                f"{batch}")
    if checked == 0:
        sys.exit("FAIL: no mass_probe cells at batch "
                 f"{GATED_BATCH} — sweep missing or renamed?")
    if failures:
        print(f"FAIL: {len(failures)} gated mass-probe cell(s):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print(f"OK: all {checked} gated 10k-batch cells (staged wins where it "
          "must, routing never picks the losing kernel)")


if __name__ == "__main__":
    main()
