//! Durable persistence primitives for the sharded filter store.
//!
//! The store itself is an in-memory structure: restart means a cold rebuild
//! of every shard, re-hashing the full corpus. "Don't Thrash: How to Cache
//! Your Hash on Flash" (PAPERS.md) makes the case that filter indexes belong
//! on durable storage with a write-optimized log in front; this crate is that
//! layer, kept dependency-free so every byte on disk is owned by the repo:
//!
//! * **Snapshots** — a versioned, checksummed container
//!   ([`SnapshotHeader`], [`write_snapshot`], [`Snapshot`]) whose payload is
//!   plain little-endian pages (filter bit/bucket/fingerprint arrays plus the
//!   `CompactKeySet` replay log), so a snapshot opens by `mmap` and the big
//!   arrays stream straight out of the page cache instead of being
//!   deserialized.
//! * **Write-ahead log** — fixed-width per-record CRC'd segments
//!   ([`WalWriter`], [`read_wal`]) journaling inserts/deletes *before* the
//!   in-memory apply; a torn tail (the normal crash shape) parses cleanly up
//!   to the last complete record.
//! * **Generations** — snapshot `g` plus WAL `g` name a consistent cut;
//!   recovery ([`recover_shard`]) maps the newest snapshot whose CRCs
//!   validate, replays every WAL at or after it, and falls back to the
//!   previous generation when the newest snapshot is torn.
//! * **Fault injection** — [`FaultPoint`] / [`FaultInjector`] kill the
//!   persistence pipeline at each step (mid-WAL-append, post-append-pre-apply,
//!   mid-snapshot-write, pre-rename) so the crash-recovery oracle tests can
//!   visit every window a real crash could land in.
//!
//! The only `unsafe` in the crate is the `mmap(2)` wrapper (registered in
//! `UNSAFE_LEDGER.toml`); all integer/byte shuffling uses safe
//! `from_le_bytes` chunking, which the compiler lowers to `memcpy` on
//! little-endian targets.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub mod codec;

/// On-disk format version stamped into every snapshot header and META file.
/// Bump on any layout change; readers refuse versions they do not know.
pub const FORMAT_VERSION: u32 = 1;

/// Magic prefix of a shard snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"POFSNAP1";

/// Magic prefix of a store META file.
pub const META_MAGIC: [u8; 8] = *b"POFMETA1";

/// Size of the fixed snapshot header in bytes.
pub const HEADER_BYTES: usize = 32;

/// Size of one WAL record in bytes: op tag (1) + key (4) + CRC (4).
pub const WAL_RECORD_BYTES: usize = 9;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong opening, writing or recovering durable state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A file exists but its magic, version, CRC or internal lengths do not
    /// validate. Recovery treats this as "torn write": skip the file and fall
    /// back to an older generation.
    Corrupt {
        /// File that failed validation.
        path: PathBuf,
        /// Human-readable reason.
        detail: String,
    },
    /// An armed [`FaultInjector`] killed the operation. The persistence layer
    /// is dead afterwards; the in-memory apply of the interrupted batch must
    /// not happen (a crashed process would not have applied it either).
    FaultInjected(FaultPoint),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "persistence I/O error: {err}"),
            Self::Corrupt { path, detail } => {
                write!(f, "corrupt persistent file {}: {detail}", path.display())
            }
            Self::FaultInjected(point) => write!(f, "fault injected at {point}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the checksum behind every header and record
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE polynomial, reflected form — the zlib/`cksum -o 3` variant)
/// over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The four windows a crash can land in on the persistence write path. Each
/// is a distinct durability contract the recovery oracle must verify:
/// records before the point are on disk, everything after is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Die part-way through appending a WAL batch: the first record of the
    /// batch is torn (a 4-byte prefix reaches the file). Recovery must drop
    /// the whole batch — it was never applied in memory.
    MidWalAppend,
    /// Die after the WAL batch is fully durable but before the in-memory
    /// apply. Recovery must *replay* the batch — the log is the authority.
    PostAppendPreApply,
    /// Die half-way through writing a snapshot payload, with the rename
    /// already visible (the metadata beat the data to disk). The newest
    /// snapshot fails its CRC; recovery must fall back a generation.
    MidSnapshotWrite,
    /// Die after the temporary snapshot file is complete but before the
    /// atomic rename. The new generation never becomes visible; recovery
    /// uses the previous one plus the (still intact) WAL.
    PreRename,
}

impl FaultPoint {
    /// Every fault point, for matrix-style crash tests.
    pub const ALL: [Self; 4] = [
        Self::MidWalAppend,
        Self::PostAppendPreApply,
        Self::MidSnapshotWrite,
        Self::PreRename,
    ];
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::MidWalAppend => "mid-wal-append",
            Self::PostAppendPreApply => "post-append-pre-apply",
            Self::MidSnapshotWrite => "mid-snapshot-write",
            Self::PreRename => "pre-rename",
        };
        f.write_str(name)
    }
}

/// Arms at most one [`FaultPoint`] and fires it exactly once. Shared
/// (`Arc`) between a test and the store's persistence layer; after the fault
/// fires the layer treats itself as crashed — every later persistence call
/// is a no-op, so the test can drop the store and reopen from disk as if the
/// process had died at the fault.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Mutex<Option<FaultPoint>>,
    fired: AtomicBool,
}

impl FaultInjector {
    /// New injector with nothing armed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `point`; the next persistence operation that reaches it dies.
    pub fn arm(&self, point: FaultPoint) {
        *self.armed.lock().expect("fault injector lock poisoned") = Some(point);
    }

    /// Disarm without firing.
    pub fn disarm(&self) {
        *self.armed.lock().expect("fault injector lock poisoned") = None;
    }

    /// Called by the persistence layer at each instrumented step: true (once)
    /// if `point` is the armed one, consuming the arming.
    pub fn should_fire(&self, point: FaultPoint) -> bool {
        let mut armed = self.armed.lock().expect("fault injector lock poisoned");
        if *armed == Some(point) {
            *armed = None;
            self.fired.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Has any fault fired yet?
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// fsync policy
// ---------------------------------------------------------------------------

/// When the WAL is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended batch: a batch whose apply was
    /// observed in memory survives any crash. The durable default.
    #[default]
    EveryBatch,
    /// Only sync at checkpoint (snapshot) boundaries: the OS page cache
    /// absorbs the WAL writes, trading the tail of the delta window for
    /// append throughput. A crash can lose ops since the last checkpoint —
    /// never corrupt the store.
    OnCheckpoint,
}

// ---------------------------------------------------------------------------
// Snapshot header
// ---------------------------------------------------------------------------

/// Fixed 32-byte header in front of every snapshot payload.
///
/// ```text
/// offset  0  magic        [u8; 8]  b"POFSNAP1"
/// offset  8  version      u32 LE   FORMAT_VERSION
/// offset 12  reserved     u32 LE   0 (future flags)
/// offset 16  payload_len  u64 LE
/// offset 24  payload_crc  u32 LE   crc32(payload)
/// offset 28  header_crc   u32 LE   crc32(bytes 0..28)
/// ```
///
/// `header_crc` catches a torn header; `payload_crc` catches a torn payload
/// behind an intact header. Either failure makes recovery fall back to the
/// previous generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version the payload was written with.
    pub version: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// CRC32 of the payload bytes.
    pub payload_crc: u32,
}

impl SnapshotHeader {
    /// Header describing `payload`.
    #[must_use]
    pub fn for_payload(payload: &[u8]) -> Self {
        Self {
            version: FORMAT_VERSION,
            payload_len: payload.len() as u64,
            payload_crc: crc32(payload),
        }
    }

    /// Serialize to the fixed 32-byte wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..8].copy_from_slice(&SNAPSHOT_MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        // bytes 12..16 reserved, zero
        out[16..24].copy_from_slice(&self.payload_len.to_le_bytes());
        out[24..28].copy_from_slice(&self.payload_crc.to_le_bytes());
        let crc = crc32(&out[0..28]);
        out[28..32].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate the fixed header. `Err` carries the reason the
    /// bytes were rejected (magic, version, CRC).
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < HEADER_BYTES {
            return Err(format!(
                "file shorter than the {HEADER_BYTES}-byte header ({} bytes)",
                bytes.len()
            ));
        }
        if bytes[0..8] != SNAPSHOT_MAGIC {
            return Err("bad magic".to_owned());
        }
        let stored_crc = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
        let actual_crc = crc32(&bytes[0..28]);
        if stored_crc != actual_crc {
            return Err(format!(
                "header CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            ));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported format version {version} (reader supports {FORMAT_VERSION})"
            ));
        }
        Ok(Self {
            version,
            payload_len: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            payload_crc: u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes")),
        })
    }
}

// ---------------------------------------------------------------------------
// Snapshot write (atomic) and read (mmap with buffered fallback)
// ---------------------------------------------------------------------------

fn fsync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable (POSIX leaves the
    // directory entry in the page cache otherwise). Some filesystems refuse
    // to open directories for sync; treat that as best-effort.
    match File::open(dir) {
        Ok(d) => match d.sync_all() {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == io::ErrorKind::InvalidInput => Ok(()),
            Err(err) => Err(err),
        },
        Err(err) => Err(err),
    }
}

/// Write `payload` to `path` atomically: temp file in the same directory,
/// `fdatasync`, rename over the target, directory fsync. A reader can never
/// observe a half-written file at `path` — except through an injected
/// [`FaultPoint::MidSnapshotWrite`], which deliberately renames a torn
/// payload into place to model data that lost the race to disk against its
/// own metadata.
pub fn write_snapshot(
    path: &Path,
    payload: &[u8],
    fault: Option<&FaultInjector>,
) -> Result<(), PersistError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension("tmp");
    let header = SnapshotHeader::for_payload(payload).encode();

    let mut file = File::create(&tmp)?;
    file.write_all(&header)?;

    if fault.is_some_and(|f| f.should_fire(FaultPoint::MidSnapshotWrite)) {
        // Model the worst torn-write shape: half the payload reaches disk yet
        // the rename (pure metadata) becomes visible. The payload CRC is the
        // only line of defence — recovery must reject this file.
        file.write_all(&payload[..payload.len() / 2])?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, path)?;
        let _ = fsync_dir(dir);
        return Err(PersistError::FaultInjected(FaultPoint::MidSnapshotWrite));
    }

    file.write_all(payload)?;
    file.sync_data()?;
    drop(file);

    if fault.is_some_and(|f| f.should_fire(FaultPoint::PreRename)) {
        // Temp file is complete and durable but the new generation never
        // becomes visible; the straggler `.tmp` is pruned on recovery.
        return Err(PersistError::FaultInjected(FaultPoint::PreRename));
    }

    fs::rename(&tmp, path)?;
    fsync_dir(dir)?;
    Ok(())
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod map {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    /// A read-only private mapping of a whole file. Pages fault in lazily, so
    /// "opening" a multi-megabyte snapshot costs one syscall, not one copy.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared memory
    // with no interior mutability; moving or sharing the owner across threads
    // cannot introduce a data race.
    unsafe impl Send for Mmap {}
    // SAFETY: as above — all access is through `&self` yielding `&[u8]` of
    // read-only pages.
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map `len` bytes of `file` read-only. `len` must be non-zero (a
        /// zero-length mmap is EINVAL); callers route empty files to the
        /// buffered path.
        pub fn map(file: &File, len: usize) -> io::Result<Self> {
            assert!(len > 0, "cannot mmap an empty file");
            // SAFETY: null addr lets the kernel choose placement; `len` is
            // non-zero; the fd is a live borrowed file handle; PROT_READ +
            // MAP_PRIVATE never aliases writable memory. The return value is
            // checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live mapping of exactly `len` readable
            // bytes (established in `map`, released only in `drop`); u8 has
            // no alignment or validity requirements. Note POSIX allows a
            // SIGBUS if another process truncates the file under the map —
            // snapshots are immutable once renamed into place, so no writer
            // exists.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the exact mapping returned by
            // `mmap` in `map`; unmapping once on drop cannot double-free, and
            // no slice borrowed from `as_slice` can outlive `self`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[derive(Debug)]
enum SnapshotBytes {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(map::Mmap),
    Owned(Vec<u8>),
}

impl SnapshotBytes {
    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Self::Mapped(m) => m.as_slice(),
            Self::Owned(v) => v.as_slice(),
        }
    }
}

/// A validated, opened snapshot: header parsed, both CRCs checked, payload
/// borrowed straight out of the mapping (or an owned buffer on platforms
/// without the mmap fast path).
#[derive(Debug)]
pub struct Snapshot {
    bytes: SnapshotBytes,
    payload_len: usize,
    mapped: bool,
}

impl Snapshot {
    /// Open and validate `path`, preferring `mmap`.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len as usize >= HEADER_BYTES {
                if let Ok(mapping) = map::Mmap::map(&file, len as usize) {
                    return Self::validate(SnapshotBytes::Mapped(mapping), true, path);
                }
            }
            drop(file);
        }
        Self::open_buffered(path)
    }

    /// Open and validate `path` through an ordinary buffered read — the
    /// portable fallback, also used by the recovery bench as the
    /// "no-mmap" comparison point.
    pub fn open_buffered(path: &Path) -> Result<Self, PersistError> {
        let bytes = fs::read(path)?;
        Self::validate(SnapshotBytes::Owned(bytes), false, path)
    }

    fn validate(bytes: SnapshotBytes, mapped: bool, path: &Path) -> Result<Self, PersistError> {
        let slice = bytes.as_slice();
        let header = SnapshotHeader::decode(slice).map_err(|detail| PersistError::Corrupt {
            path: path.to_path_buf(),
            detail,
        })?;
        let have = (slice.len() - HEADER_BYTES) as u64;
        if have < header.payload_len {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "payload truncated: header promises {} bytes, file holds {have}",
                    header.payload_len
                ),
            });
        }
        let payload_len = header.payload_len as usize;
        let actual_crc = crc32(&slice[HEADER_BYTES..HEADER_BYTES + payload_len]);
        if actual_crc != header.payload_crc {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "payload CRC mismatch (stored {:#010x}, computed {actual_crc:#010x})",
                    header.payload_crc
                ),
            });
        }
        Ok(Self {
            bytes,
            payload_len,
            mapped,
        })
    }

    /// The validated payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.bytes.as_slice()[HEADER_BYTES..HEADER_BYTES + self.payload_len]
    }

    /// Did this snapshot open through the mmap fast path?
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// The two operations a WAL record can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Key inserted into the shard.
    Insert,
    /// Key deleted from the shard (including tiered shadow deletes — replay
    /// applies them as ordinary deletes, which reaches the same membership).
    Delete,
}

impl WalOp {
    fn code(self) -> u8 {
        match self {
            Self::Insert => 1,
            Self::Delete => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Insert),
            2 => Some(Self::Delete),
            _ => None,
        }
    }
}

fn wal_record(op: WalOp, key: u32) -> [u8; WAL_RECORD_BYTES] {
    let mut rec = [0u8; WAL_RECORD_BYTES];
    rec[0] = op.code();
    rec[1..5].copy_from_slice(&key.to_le_bytes());
    let crc = crc32(&rec[0..5]);
    rec[5..9].copy_from_slice(&crc.to_le_bytes());
    rec
}

/// Appender for one shard's write-ahead segment. Records are fixed-width and
/// individually CRC'd; a crash mid-append tears at most the final record,
/// which the reader drops.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    records: u64,
}

impl WalWriter {
    /// Create (or truncate) a fresh segment at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        file.sync_data()?;
        if let Some(dir) = path.parent() {
            let _ = fsync_dir(dir);
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Reopen an existing segment for appending, first truncating it to
    /// `valid_len` (as reported by [`read_wal`]) so a torn tail from the
    /// previous run cannot corrupt records appended after it.
    pub fn open_append(path: &Path, valid_len: u64) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: valid_len / WAL_RECORD_BYTES as u64,
        })
    }

    /// Append one record per key, as a single buffered write. With
    /// `sync`, `fdatasync` before returning — the batch is durable once this
    /// returns `Ok`.
    pub fn append(&mut self, op: WalOp, keys: &[u32], sync: bool) -> io::Result<()> {
        let mut buf = Vec::with_capacity(keys.len() * WAL_RECORD_BYTES);
        for &key in keys {
            buf.extend_from_slice(&wal_record(op, key));
        }
        self.file.write_all(&buf)?;
        if sync {
            self.file.sync_data()?;
        }
        self.records += keys.len() as u64;
        Ok(())
    }

    /// Simulate [`FaultPoint::MidWalAppend`]: write a 4-byte prefix of the
    /// first record of the batch and sync, as a crash in the middle of the
    /// kernel copying the append buffer would leave it.
    pub fn append_torn(&mut self, op: WalOp, key: u32) -> io::Result<()> {
        let rec = wal_record(op, key);
        self.file.write_all(&rec[..4])?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Flush to stable storage (used by [`FsyncPolicy::OnCheckpoint`] at
    /// checkpoint boundaries).
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Complete records written through this writer (including pre-existing
    /// ones when opened for append).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the segment file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Result of scanning one WAL segment.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Complete, CRC-valid records in file order.
    pub ops: Vec<(WalOp, u32)>,
    /// Byte length of the valid prefix — pass to [`WalWriter::open_append`]
    /// to chop a torn tail before appending again.
    pub valid_len: u64,
    /// True when the file ended in a torn or CRC-invalid record.
    pub torn: bool,
}

/// Scan a WAL segment, tolerating the torn tail a crash leaves: parsing
/// stops at the first incomplete or CRC-failed record and everything before
/// it is returned.
pub fn read_wal(path: &Path) -> Result<WalReplay, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut replay = WalReplay::default();
    let mut off = 0usize;
    while off + WAL_RECORD_BYTES <= bytes.len() {
        let rec = &bytes[off..off + WAL_RECORD_BYTES];
        let stored_crc = u32::from_le_bytes(rec[5..9].try_into().expect("4 bytes"));
        if crc32(&rec[0..5]) != stored_crc {
            replay.torn = true;
            break;
        }
        let Some(op) = WalOp::from_code(rec[0]) else {
            replay.torn = true;
            break;
        };
        let key = u32::from_le_bytes(rec[1..5].try_into().expect("4 bytes"));
        replay.ops.push((op, key));
        off += WAL_RECORD_BYTES;
    }
    if off < bytes.len() {
        replay.torn = true;
    }
    replay.valid_len = off as u64;
    Ok(replay)
}

// ---------------------------------------------------------------------------
// Directory layout: generation-numbered per-shard files + a META sanity file
// ---------------------------------------------------------------------------

/// File name of shard `shard`'s snapshot at `generation`.
#[must_use]
pub fn snapshot_file(shard: usize, generation: u64) -> String {
    format!("shard-{shard:04}.gen-{generation:08}.snap")
}

/// File name of shard `shard`'s WAL segment at `generation`.
#[must_use]
pub fn wal_file(shard: usize, generation: u64) -> String {
    format!("shard-{shard:04}.gen-{generation:08}.wal")
}

/// Kind of per-shard file a directory entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `*.snap` — a checkpointed snapshot.
    Snapshot,
    /// `*.wal` — a write-ahead segment.
    Wal,
}

/// Parse a `shard-SSSS.gen-GGGGGGGG.{snap,wal}` file name.
#[must_use]
pub fn parse_shard_file(name: &str) -> Option<(usize, u64, FileKind)> {
    let rest = name.strip_prefix("shard-")?;
    let (shard_digits, rest) = rest.split_once(".gen-")?;
    let (gen_digits, ext) = rest.split_once('.')?;
    let kind = match ext {
        "snap" => FileKind::Snapshot,
        "wal" => FileKind::Wal,
        _ => return None,
    };
    let shard = shard_digits.parse::<usize>().ok()?;
    let generation = gen_digits.parse::<u64>().ok()?;
    Some((shard, generation, kind))
}

/// Per-shard view of what a store directory holds.
#[derive(Debug, Default, Clone)]
pub struct ShardFiles {
    /// Snapshot generations present, ascending.
    pub snapshots: Vec<u64>,
    /// WAL generations present, ascending.
    pub wals: Vec<u64>,
}

/// Scan `dir` for per-shard files. Entries for shards at or beyond
/// `shard_count` are an error (the directory was written with a different
/// shard layout); unrelated files are ignored.
pub fn scan_dir(dir: &Path, shard_count: usize) -> Result<Vec<ShardFiles>, PersistError> {
    let mut shards = vec![ShardFiles::default(); shard_count];
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((shard, generation, kind)) = parse_shard_file(name) else {
            continue;
        };
        if shard >= shard_count {
            return Err(PersistError::Corrupt {
                path: entry.path(),
                detail: format!("file names shard {shard} but the store has {shard_count} shards"),
            });
        }
        match kind {
            FileKind::Snapshot => shards[shard].snapshots.push(generation),
            FileKind::Wal => shards[shard].wals.push(generation),
        }
    }
    for files in &mut shards {
        files.snapshots.sort_unstable();
        files.wals.sort_unstable();
    }
    Ok(shards)
}

/// Remove snapshot generations below `keep_snapshots_from` and WAL
/// generations below `keep_wals_from` for `shard`, plus any `.tmp`
/// stragglers from interrupted snapshot writes. Best-effort: removal errors
/// are swallowed (a leftover file only costs disk, never correctness).
pub fn prune_generations(
    dir: &Path,
    shard: usize,
    keep_snapshots_from: u64,
    keep_wals_from: u64,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&format!("shard-{shard:04}.")) && name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
            continue;
        }
        let Some((file_shard, generation, kind)) = parse_shard_file(name) else {
            continue;
        };
        if file_shard != shard {
            continue;
        }
        let stale = match kind {
            FileKind::Snapshot => generation < keep_snapshots_from,
            FileKind::Wal => generation < keep_wals_from,
        };
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

/// Identity card of a persistent store directory, written once at creation
/// and validated on every open — catches pointing a differently-sharded
/// store (or a tiered level list of the wrong depth) at the wrong directory
/// before any snapshot is trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMeta {
    /// 1 = flat sharded store directory, 2 = tiered root directory.
    pub kind: u32,
    /// Shard count (flat) or level count (tiered root).
    pub count: u32,
}

impl StoreMeta {
    /// META `kind` tag of a flat sharded store directory.
    pub const KIND_FLAT: u32 = 1;
    /// META `kind` tag of a tiered store root directory.
    pub const KIND_TIERED: u32 = 2;
}

const META_FILE: &str = "STORE.meta";

/// Write (atomically) the META file for `dir`.
pub fn write_meta(dir: &Path, meta: StoreMeta) -> Result<(), PersistError> {
    let mut bytes = Vec::with_capacity(24);
    bytes.extend_from_slice(&META_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&meta.kind.to_le_bytes());
    bytes.extend_from_slice(&meta.count.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let path = dir.join(META_FILE);
    let tmp = path.with_extension("meta.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, &path)?;
    fsync_dir(dir)?;
    Ok(())
}

/// Read `dir`'s META file; `Ok(None)` when the directory has none yet
/// (fresh store).
pub fn read_meta(dir: &Path) -> Result<Option<StoreMeta>, PersistError> {
    let path = dir.join(META_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    let corrupt = |detail: &str| PersistError::Corrupt {
        path: path.clone(),
        detail: detail.to_owned(),
    };
    if bytes.len() != 24 {
        return Err(corrupt("META file is not 24 bytes"));
    }
    if bytes[0..8] != META_MAGIC {
        return Err(corrupt("bad META magic"));
    }
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if crc32(&bytes[0..20]) != stored_crc {
        return Err(corrupt("META CRC mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(corrupt("unsupported META format version"));
    }
    Ok(Some(StoreMeta {
        kind: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
        count: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
    }))
}

// ---------------------------------------------------------------------------
// Shard recovery: newest valid snapshot + WAL tail, with generation fallback
// ---------------------------------------------------------------------------

/// Everything recovery learned about one shard's durable state.
#[derive(Debug)]
pub struct RecoveredShard {
    /// Newest snapshot whose header *and* payload CRCs validate; `None` for
    /// a shard that has never been checkpointed (replay starts from empty).
    pub snapshot: Option<Snapshot>,
    /// Generation of `snapshot` (0 when `None`).
    pub snapshot_generation: u64,
    /// WAL records to replay on top of the snapshot, oldest first, spanning
    /// every segment at or after `snapshot_generation`.
    pub replay: Vec<(WalOp, u32)>,
    /// Generation whose WAL segment new appends continue on.
    pub wal_generation: u64,
    /// Valid byte length of that segment (torn tail excluded); pass to
    /// [`WalWriter::open_append`].
    pub wal_valid_len: u64,
    /// True when the newest snapshot on disk was torn and an older
    /// generation was used instead.
    pub fell_back: bool,
}

/// Recover shard `shard` from `files` (as returned by [`scan_dir`]): open
/// the newest snapshot that validates, falling back generation by
/// generation past torn ones, then collect the WAL tail to replay. Torn
/// snapshots that were skipped are deleted so retention bookkeeping stays
/// honest.
pub fn recover_shard(
    dir: &Path,
    shard: usize,
    files: &ShardFiles,
) -> Result<RecoveredShard, PersistError> {
    let mut snapshot = None;
    let mut snapshot_generation = 0u64;
    let mut fell_back = false;
    let mut torn: Vec<u64> = Vec::new();
    for &generation in files.snapshots.iter().rev() {
        match Snapshot::open(&dir.join(snapshot_file(shard, generation))) {
            Ok(snap) => {
                snapshot = Some(snap);
                snapshot_generation = generation;
                break;
            }
            Err(PersistError::Corrupt { .. }) => {
                fell_back = true;
                torn.push(generation);
            }
            Err(err) => return Err(err),
        }
    }
    for generation in torn {
        let _ = fs::remove_file(dir.join(snapshot_file(shard, generation)));
    }

    let mut replay = Vec::new();
    let mut wal_generation = snapshot_generation;
    let mut wal_valid_len = 0u64;
    for &generation in files.wals.iter().filter(|&&g| g >= snapshot_generation) {
        let scanned = read_wal(&dir.join(wal_file(shard, generation)))?;
        replay.extend_from_slice(&scanned.ops);
        if generation >= wal_generation {
            wal_generation = generation;
            wal_valid_len = scanned.valid_len;
        }
    }
    Ok(RecoveredShard {
        snapshot,
        snapshot_generation,
        replay,
        wal_generation,
        wal_valid_len,
        fell_back,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pof-persist-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, AtomicOrdering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let payload = b"some payload bytes";
        let header = SnapshotHeader::for_payload(payload);
        let bytes = header.encode();
        assert_eq!(SnapshotHeader::decode(&bytes).unwrap(), header);

        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        assert!(SnapshotHeader::decode(&bad_magic).is_err());

        let mut bad_crc = bytes;
        bad_crc[20] ^= 0x01; // flip a payload_len byte; header_crc catches it
        assert!(SnapshotHeader::decode(&bad_crc).is_err());

        assert!(SnapshotHeader::decode(&bytes[..HEADER_BYTES - 1]).is_err());
    }

    #[test]
    fn snapshot_write_open_roundtrip() {
        let dir = temp_dir("snap");
        let path = dir.join(snapshot_file(0, 1));
        let payload: Vec<u8> = (0..100_000u32).flat_map(u32::to_le_bytes).collect();
        write_snapshot(&path, &payload, None).unwrap();

        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.payload(), payload.as_slice());
        let buffered = Snapshot::open_buffered(&path).unwrap();
        assert_eq!(buffered.payload(), payload.as_slice());
        assert!(!buffered.is_mapped());

        // Truncating mid-payload must fail validation, not return bad data.
        let full = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full / 2).unwrap();
        drop(file);
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_roundtrip_and_torn_tail() {
        let dir = temp_dir("wal");
        let path = dir.join(wal_file(3, 7));
        let mut writer = WalWriter::create(&path).unwrap();
        writer.append(WalOp::Insert, &[1, 2, 3], true).unwrap();
        writer.append(WalOp::Delete, &[2], true).unwrap();
        writer.append_torn(WalOp::Insert, 99).unwrap();
        drop(writer);

        let replay = read_wal(&path).unwrap();
        assert!(replay.torn);
        assert_eq!(
            replay.ops,
            vec![
                (WalOp::Insert, 1),
                (WalOp::Insert, 2),
                (WalOp::Insert, 3),
                (WalOp::Delete, 2),
            ]
        );
        assert_eq!(replay.valid_len, 4 * WAL_RECORD_BYTES as u64);

        // Reopening for append truncates the torn tail; new records parse.
        let mut writer = WalWriter::open_append(&path, replay.valid_len).unwrap();
        assert_eq!(writer.records(), 4);
        writer.append(WalOp::Insert, &[10], true).unwrap();
        drop(writer);
        let replay = read_wal(&path).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.ops.len(), 5);
        assert_eq!(replay.ops[4], (WalOp::Insert, 10));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injector_fires_exactly_once() {
        let injector = FaultInjector::new();
        injector.arm(FaultPoint::PreRename);
        assert!(!injector.should_fire(FaultPoint::MidWalAppend));
        assert!(!injector.fired());
        assert!(injector.should_fire(FaultPoint::PreRename));
        assert!(injector.fired());
        assert!(!injector.should_fire(FaultPoint::PreRename));
    }

    #[test]
    fn filename_parse_roundtrip() {
        for shard in [0usize, 7, 4095] {
            for generation in [0u64, 1, 123_456] {
                assert_eq!(
                    parse_shard_file(&snapshot_file(shard, generation)),
                    Some((shard, generation, FileKind::Snapshot))
                );
                assert_eq!(
                    parse_shard_file(&wal_file(shard, generation)),
                    Some((shard, generation, FileKind::Wal))
                );
            }
        }
        assert_eq!(parse_shard_file("STORE.meta"), None);
        assert_eq!(parse_shard_file("shard-0001.gen-00000002.tmp"), None);
    }

    #[test]
    fn meta_roundtrip() {
        let dir = temp_dir("meta");
        assert!(read_meta(&dir).unwrap().is_none());
        let meta = StoreMeta {
            kind: StoreMeta::KIND_FLAT,
            count: 8,
        };
        write_meta(&dir, meta).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), Some(meta));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_falls_back_past_torn_snapshot() {
        let dir = temp_dir("recover");
        // Generation 1: valid snapshot + fully applied WAL.
        write_snapshot(&dir.join(snapshot_file(0, 1)), b"gen-1 state", None).unwrap();
        let mut wal1 = WalWriter::create(&dir.join(wal_file(0, 1))).unwrap();
        wal1.append(WalOp::Insert, &[41, 42], true).unwrap();
        drop(wal1);
        // Generation 2: torn snapshot (truncated payload), intact WAL.
        let snap2 = dir.join(snapshot_file(0, 2));
        write_snapshot(&snap2, b"gen-2 state", None).unwrap();
        let full = fs::metadata(&snap2).unwrap().len();
        let file = OpenOptions::new().write(true).open(&snap2).unwrap();
        file.set_len(full - 3).unwrap();
        drop(file);
        let mut wal2 = WalWriter::create(&dir.join(wal_file(0, 2))).unwrap();
        wal2.append(WalOp::Delete, &[41], true).unwrap();
        drop(wal2);

        let files = &scan_dir(&dir, 1).unwrap()[0];
        let recovered = recover_shard(&dir, 0, files).unwrap();
        assert!(recovered.fell_back);
        assert_eq!(recovered.snapshot_generation, 1);
        assert_eq!(
            recovered.snapshot.as_ref().unwrap().payload(),
            b"gen-1 state"
        );
        // Replay spans both generations' WALs, oldest first.
        assert_eq!(
            recovered.replay,
            vec![
                (WalOp::Insert, 41),
                (WalOp::Insert, 42),
                (WalOp::Delete, 41),
            ]
        );
        assert_eq!(recovered.wal_generation, 2);
        // The torn snapshot was deleted during recovery.
        assert!(!snap2.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_snapshot_faults_leave_recoverable_state() {
        let dir = temp_dir("snapfault");
        let path = dir.join(snapshot_file(0, 5));

        let injector = FaultInjector::new();
        injector.arm(FaultPoint::MidSnapshotWrite);
        let err = write_snapshot(&path, b"torn payload", Some(&injector)).unwrap_err();
        assert!(matches!(
            err,
            PersistError::FaultInjected(FaultPoint::MidSnapshotWrite)
        ));
        // File is visible but fails CRC — exactly what fallback handles.
        assert!(path.exists());
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_file(&path).unwrap();

        injector.arm(FaultPoint::PreRename);
        let err = write_snapshot(&path, b"never renamed", Some(&injector)).unwrap_err();
        assert!(matches!(
            err,
            PersistError::FaultInjected(FaultPoint::PreRename)
        ));
        assert!(!path.exists());
        assert!(path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
