//! Little-endian byte codec helpers shared by the snapshot payload formats.
//!
//! Everything on disk is plain little-endian — no varints, no alignment
//! games — so the encoder is `extend_from_slice` of `to_le_bytes` and the
//! decoder is a bounds-checked cursor. Word arrays go through
//! [`Cursor::u64_words`] / [`put_u64_words`], which chunk through
//! `from_le_bytes`; on little-endian hardware the compiler lowers both
//! directions to `memcpy`, so "deserializing" a mapped bit array is a
//! straight page-cache copy.

use std::fmt;

/// Decoding failed: the payload ended early or held an impossible value.
/// Snapshot payloads are CRC-guarded, so in practice this means a version
/// skew or an encoder bug, not silent disk corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The cursor ran off the end of the payload.
    Truncated,
    /// A tag or length field held a value the reader does not understand.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => f.write_str("payload truncated"),
            Self::Invalid(what) => write!(f, "invalid payload field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed (`u64` count) array of `u32` keys.
pub fn put_u32_slice(out: &mut Vec<u8>, keys: &[u32]) {
    put_u64(out, keys.len() as u64);
    out.reserve(keys.len() * 4);
    for &k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
}

/// Append a length-prefixed (`u64` count) array of `u64` words — the wire
/// form of every filter bit/bucket array.
pub fn put_u64_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u64(out, words.len() as u64);
    out.reserve(words.len() * 8);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Append a length-prefixed (`u64` count) raw byte array.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Bounds-checked forward reader over a payload slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading `buf` from the front.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length as `usize`, rejecting counts that could not possibly
    /// fit in the remaining payload (defends against a corrupt length field
    /// driving a huge allocation before the bounds check would trip).
    fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let count = self.u64()?;
        let count = usize::try_from(count).map_err(|_| CodecError::Invalid("length overflow"))?;
        if count
            .checked_mul(elem_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(CodecError::Truncated);
        }
        Ok(count)
    }

    /// Read a length-prefixed `u32` array (see [`put_u32_slice`]).
    pub fn u32_slice(&mut self) -> Result<Vec<u32>, CodecError> {
        let count = self.len_prefix(4)?;
        let raw = self.bytes(count * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a length-prefixed `u64` word array (see [`put_u64_words`]).
    pub fn u64_words(&mut self) -> Result<Vec<u64>, CodecError> {
        let count = self.len_prefix(8)?;
        let raw = self.bytes(count * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read a length-prefixed raw byte array (see [`put_bytes`]).
    pub fn byte_slice(&mut self) -> Result<Vec<u8>, CodecError> {
        let count = self.len_prefix(1)?;
        Ok(self.bytes(count)?.to_vec())
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes after payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, 11.5);
        put_u32_slice(&mut out, &[1, 2, 3]);
        put_u64_words(&mut out, &[u64::MAX, 0, 42]);
        put_bytes(&mut out, b"sidecar");

        let mut cur = Cursor::new(&out);
        assert_eq!(cur.u8().unwrap(), 7);
        assert_eq!(cur.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cur.u64().unwrap(), u64::MAX - 1);
        assert!((cur.f64().unwrap() - 11.5).abs() < f64::EPSILON);
        assert_eq!(cur.u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(cur.u64_words().unwrap(), vec![u64::MAX, 0, 42]);
        assert_eq!(cur.byte_slice().unwrap(), b"sidecar");
        cur.finish().unwrap();
    }

    #[test]
    fn truncation_and_bogus_lengths_are_errors() {
        let mut out = Vec::new();
        put_u32(&mut out, 5);
        let mut cur = Cursor::new(&out);
        assert_eq!(cur.u64(), Err(CodecError::Truncated));

        // A length prefix promising more elements than the payload holds
        // must fail fast instead of allocating.
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut cur = Cursor::new(&out);
        assert_eq!(cur.u64_words(), Err(CodecError::Truncated));

        let mut out = Vec::new();
        put_u8(&mut out, 1);
        let cur = Cursor::new(&out);
        assert!(cur.finish().is_err());
    }
}
