//! Distributed semi-join substrate (§1): broadcasting a filter across compute
//! nodes to avoid exchanging non-joining probe tuples over the network.
//!
//! The "network" here is a cost model (bytes shipped × cost per byte plus a
//! per-message overhead), not a socket — the substitution DESIGN.md documents.
//! What is real is the data flow: the build node constructs a filter over its
//! join keys, every probe node applies it to its local tuples, and only the
//! survivors are exchanged and joined. The harness compares total simulated
//! network volume and the end-to-end cost with and without the broadcast
//! filter.

use crate::join::JoinHashTable;
use pof_core::{AnyFilter, FilterConfig};
use pof_filter::{Filter, SelectionVector};

/// Cost model of the simulated interconnect.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Cycles charged per byte shipped between nodes.
    pub cycles_per_byte: f64,
    /// Fixed per-tuple overhead (serialization, batching) in cycles.
    pub cycles_per_tuple: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // Roughly a 10 GbE link on a 3 GHz core: ~2.4 cycles per byte, plus a
        // couple of cycles of per-tuple framing when tuples are batched.
        Self {
            cycles_per_byte: 2.4,
            cycles_per_tuple: 4.0,
        }
    }
}

/// Outcome of a distributed semi-join execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemiJoinOutcome {
    /// Tuples shipped from the probe nodes to the build node.
    pub tuples_shipped: u64,
    /// Bytes shipped (tuples × 8 bytes for key + payload, plus the broadcast
    /// filter itself when one is used).
    pub bytes_shipped: u64,
    /// Join matches produced at the build node.
    pub matches: u64,
    /// Total simulated network cost in cycles.
    pub network_cycles: f64,
}

/// One probe node holding a horizontal partition of the fact table.
#[derive(Debug, Clone)]
pub struct ProbeNode {
    /// Local join keys.
    pub keys: Vec<u32>,
}

/// The distributed semi-join driver: one build node, many probe nodes.
#[derive(Debug)]
pub struct SemiJoin {
    build_keys: Vec<u32>,
    hash_table: JoinHashTable,
    probe_nodes: Vec<ProbeNode>,
    network: NetworkModel,
}

impl SemiJoin {
    /// Create a semi-join over a build-side key set and probe-side partitions.
    #[must_use]
    pub fn new(build_keys: Vec<u32>, probe_nodes: Vec<ProbeNode>, network: NetworkModel) -> Self {
        let hash_table = JoinHashTable::build(&build_keys);
        Self {
            build_keys,
            hash_table,
            probe_nodes,
            network,
        }
    }

    /// Execute without a broadcast filter: every probe tuple is shipped.
    #[must_use]
    pub fn run_without_filter(&self) -> SemiJoinOutcome {
        let mut shipped = 0u64;
        let mut matches = 0u64;
        for node in &self.probe_nodes {
            shipped += node.keys.len() as u64;
            for &key in &node.keys {
                if self.hash_table.probe(key).is_some() {
                    matches += 1;
                }
            }
        }
        self.outcome(shipped, matches, 0)
    }

    /// Execute with a broadcast filter built from `config` at `bits_per_key`:
    /// the filter is shipped to every probe node, applied locally, and only
    /// surviving tuples are exchanged.
    #[must_use]
    pub fn run_with_filter(&self, config: &FilterConfig, bits_per_key: f64) -> SemiJoinOutcome {
        let filter = AnyFilter::build_with_keys(config, &self.build_keys, bits_per_key)
            .expect("broadcast filter construction failed");
        let filter_bytes = filter.size_bits().div_ceil(8);
        let mut shipped = 0u64;
        let mut matches = 0u64;
        let mut sel = SelectionVector::new();
        for node in &self.probe_nodes {
            sel.clear();
            filter.contains_batch(&node.keys, &mut sel);
            shipped += sel.len() as u64;
            for &pos in sel.as_slice() {
                if self.hash_table.probe(node.keys[pos as usize]).is_some() {
                    matches += 1;
                }
            }
        }
        // The filter is broadcast once per probe node.
        self.outcome(
            shipped,
            matches,
            filter_bytes * self.probe_nodes.len() as u64,
        )
    }

    fn outcome(&self, tuples_shipped: u64, matches: u64, broadcast_bytes: u64) -> SemiJoinOutcome {
        let bytes_shipped = tuples_shipped * 8 + broadcast_bytes;
        let network_cycles = bytes_shipped as f64 * self.network.cycles_per_byte
            + tuples_shipped as f64 * self.network.cycles_per_tuple;
        SemiJoinOutcome {
            tuples_shipped,
            bytes_shipped,
            matches,
            network_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_filter::KeyGen;

    fn build_semijoin(sigma: f64, nodes: usize, tuples_per_node: usize) -> SemiJoin {
        let mut gen = KeyGen::new(81);
        let build_keys = gen.distinct_keys(30_000);
        let probe_nodes: Vec<ProbeNode> = (0..nodes)
            .map(|_| ProbeNode {
                keys: gen.probes_with_selectivity(&build_keys, tuples_per_node, sigma),
            })
            .collect();
        SemiJoin::new(build_keys, probe_nodes, NetworkModel::default())
    }

    #[test]
    fn filter_preserves_the_join_result() {
        let semijoin = build_semijoin(0.2, 4, 25_000);
        let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ));
        let without = semijoin.run_without_filter();
        let with = semijoin.run_with_filter(&config, 16.0);
        assert_eq!(
            without.matches, with.matches,
            "semi-join result must be identical"
        );
    }

    #[test]
    fn selective_workloads_ship_far_fewer_tuples_and_bytes() {
        let semijoin = build_semijoin(0.05, 8, 20_000);
        let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ));
        let without = semijoin.run_without_filter();
        let with = semijoin.run_with_filter(&config, 16.0);
        assert!(with.tuples_shipped < without.tuples_shipped / 5);
        assert!(with.network_cycles < without.network_cycles / 2.0);
    }

    #[test]
    fn non_selective_workloads_make_the_filter_pure_overhead() {
        let semijoin = build_semijoin(1.0, 2, 10_000);
        let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ));
        let without = semijoin.run_without_filter();
        let with = semijoin.run_with_filter(&config, 16.0);
        // Every tuple survives, so the broadcast filter only adds bytes.
        assert_eq!(with.tuples_shipped, without.tuples_shipped);
        assert!(with.bytes_shipped > without.bytes_shipped);
        assert_eq!(with.matches, without.matches);
    }
}
