//! Workload substrates for performance-optimal filtering.
//!
//! The paper motivates filters with three database scenarios that span the
//! throughput spectrum of Figure 1; this crate implements each of them as a
//! small but real execution substrate so the benefit of filtering is measured
//! end to end rather than assumed:
//!
//! * [`join`] — selective join pushdown (Figure 2): a columnar hash-join
//!   probe pipeline with an optional filter pushed into the scan
//!   (high-throughput, `t_w` ≈ a hash-table probe),
//! * [`semijoin`] — distributed semi-join: a broadcast filter avoids shipping
//!   non-joining tuples over a simulated interconnect (medium `t_w`),
//! * [`lsm`] — LSM-tree point lookups: per-run filters avoid simulated disk
//!   reads (low-throughput, large `t_w`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod join;
pub mod lsm;
pub mod semijoin;

pub use join::{JoinHashTable, JoinResult, JoinWorkload, ProbePipeline};
pub use lsm::{LsmLevelMemory, LsmStats, LsmTree, Run};
pub use semijoin::{NetworkModel, ProbeNode, SemiJoin, SemiJoinOutcome};
