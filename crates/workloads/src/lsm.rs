//! An LSM-tree-style point-lookup substrate (§1, §7).
//!
//! Log-structured merge trees are the paper's canonical *low-throughput*
//! filter use case: every point lookup must consult several sorted runs, and a
//! per-run filter avoids a (simulated) disk read for runs that do not contain
//! the key. The per-miss cost `t_w` here is a configurable synthetic delay,
//! standing in for an SSD or magnetic-disk read — the substitution DESIGN.md
//! documents (no real disk is touched, which keeps the experiment laptop-scale
//! and deterministic while preserving the cost structure).

use pof_core::{AnyFilter, FilterConfig};
use pof_filter::Filter;

/// One sorted run of an LSM tree level, with an optional per-run filter.
#[derive(Debug)]
pub struct Run {
    keys: Vec<u32>,
    values: Vec<u64>,
    filter: Option<AnyFilter>,
}

impl Run {
    /// Build a run from key/value pairs (sorted internally).
    #[must_use]
    pub fn build(mut pairs: Vec<(u32, u64)>, filter_config: Option<(&FilterConfig, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs.dedup_by_key(|&mut (k, _)| k);
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let values: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        let filter = filter_config.map(|(config, bits_per_key)| {
            AnyFilter::build_with_keys(config, &keys, bits_per_key)
                .expect("run filter construction failed")
        });
        Self {
            keys,
            values,
            filter,
        }
    }

    /// Number of entries in the run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the run holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Binary-search the run. This is the "expensive" access the filter is
    /// meant to avoid: the simulated I/O cost is accounted by the tree.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u64> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|index| self.values[index])
    }

    /// Probe the run's filter (true = the run may contain the key).
    #[must_use]
    pub fn may_contain(&self, key: u32) -> bool {
        self.filter.as_ref().is_none_or(|f| f.contains(key))
    }
}

/// Statistics of a batch of LSM lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Number of lookups issued.
    pub lookups: u64,
    /// Number of runs actually searched (each charged the simulated I/O cost).
    pub run_reads: u64,
    /// Number of run reads avoided by a negative filter probe.
    pub run_reads_avoided: u64,
    /// Number of lookups that found the key.
    pub hits: u64,
}

impl LsmStats {
    /// Total simulated cost in cycles, given a per-run-read cost `t_w` and a
    /// per-filter-probe cost.
    #[must_use]
    pub fn simulated_cost(&self, run_read_cycles: f64, filter_probe_cycles: f64) -> f64 {
        self.run_reads as f64 * run_read_cycles
            + (self.run_reads + self.run_reads_avoided) as f64 * filter_probe_cycles
    }
}

/// A multi-run LSM tree with optional per-run filters.
#[derive(Debug, Default)]
pub struct LsmTree {
    runs: Vec<Run>,
}

impl LsmTree {
    /// Create an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a run (newest first: lookups consult runs in insertion order).
    pub fn add_run(&mut self, run: Run) {
        self.runs.push(run);
    }

    /// Number of runs.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Point lookup across all runs, newest to oldest, updating `stats`.
    #[must_use]
    pub fn get(&self, key: u32, stats: &mut LsmStats) -> Option<u64> {
        stats.lookups += 1;
        for run in &self.runs {
            if !run.may_contain(key) {
                stats.run_reads_avoided += 1;
                continue;
            }
            stats.run_reads += 1;
            if let Some(value) = run.get(key) {
                stats.hits += 1;
                return Some(value);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    use pof_filter::KeyGen;

    fn build_tree(
        filtered: bool,
        runs: usize,
        keys_per_run: usize,
        seed: u64,
    ) -> (LsmTree, Vec<u32>) {
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic));
        let mut gen = KeyGen::new(seed);
        let mut tree = LsmTree::new();
        let mut all_keys = Vec::new();
        for run_id in 0..runs {
            let keys = gen.distinct_keys(keys_per_run);
            all_keys.extend_from_slice(&keys);
            let pairs: Vec<(u32, u64)> = keys
                .iter()
                .map(|&k| (k, u64::from(k) + run_id as u64))
                .collect();
            tree.add_run(Run::build(pairs, filtered.then_some((&config, 20.0))));
        }
        (tree, all_keys)
    }

    #[test]
    fn lookups_find_inserted_keys_with_and_without_filters() {
        for filtered in [false, true] {
            let (tree, keys) = build_tree(filtered, 4, 5_000, 71);
            assert_eq!(tree.num_runs(), 4);
            let mut stats = LsmStats::default();
            for &key in keys.iter().take(2_000) {
                assert!(tree.get(key, &mut stats).is_some(), "missing key {key}");
            }
            assert_eq!(stats.hits, 2_000);
        }
    }

    #[test]
    fn filters_avoid_most_run_reads_for_absent_keys() {
        let (tree, keys) = build_tree(true, 8, 4_000, 72);
        let mut gen = KeyGen::new(73);
        let mut stats = LsmStats::default();
        let mut probed = 0;
        for key in gen.keys(20_000) {
            if keys.contains(&key) {
                continue;
            }
            let _ = tree.get(key, &mut stats);
            probed += 1;
        }
        let total_runs = probed * tree.num_runs() as u64;
        assert_eq!(stats.run_reads + stats.run_reads_avoided, total_runs);
        // With a 16-bit-signature Cuckoo filter the false-positive rate is
        // ~5e-5, so essentially every run read is avoided.
        assert!(
            stats.run_reads_avoided as f64 > 0.999 * total_runs as f64,
            "avoided {} of {}",
            stats.run_reads_avoided,
            total_runs
        );
    }

    #[test]
    fn filtered_tree_has_lower_simulated_cost_for_negative_heavy_workloads() {
        let (filtered_tree, keys) = build_tree(true, 6, 3_000, 74);
        let (plain_tree, _) = build_tree(false, 6, 3_000, 74);
        let mut gen = KeyGen::new(75);
        let probes: Vec<u32> = gen
            .keys(10_000)
            .into_iter()
            .filter(|k| !keys.contains(k))
            .collect();

        let mut filtered_stats = LsmStats::default();
        let mut plain_stats = LsmStats::default();
        for &key in &probes {
            let _ = filtered_tree.get(key, &mut filtered_stats);
            let _ = plain_tree.get(key, &mut plain_stats);
        }
        // SSD-read-like cost per run read (~100k cycles), ~10-cycle filter probe.
        let filtered_cost = filtered_stats.simulated_cost(100_000.0, 10.0);
        let plain_cost = plain_stats.simulated_cost(100_000.0, 0.0);
        assert!(
            filtered_cost < plain_cost / 50.0,
            "filtered {filtered_cost} vs plain {plain_cost}"
        );
    }

    #[test]
    fn run_deduplicates_and_sorts() {
        let run = Run::build(vec![(3, 30), (1, 10), (3, 31), (2, 20)], None);
        assert_eq!(run.len(), 3);
        assert_eq!(run.get(1), Some(10));
        assert_eq!(run.get(2), Some(20));
        assert!(run.get(4).is_none());
        assert!(
            run.may_contain(4),
            "runs without filters may always contain a key"
        );
    }
}
