//! An LSM-tree-style point-lookup substrate (§1, §7).
//!
//! Log-structured merge trees are the paper's canonical *low-throughput*
//! filter use case: every point lookup must consult several sorted runs, and a
//! per-run filter avoids a (simulated) disk read for runs that do not contain
//! the key. The per-miss cost `t_w` here is a configurable synthetic delay,
//! standing in for an SSD or magnetic-disk read — the substitution DESIGN.md
//! documents (no real disk is touched, which keeps the experiment laptop-scale
//! and deterministic while preserving the cost structure).
//!
//! Two filtering modes:
//!
//! * **Per-run filters** ([`LsmTree::new`] + [`Run::build`] with a config):
//!   every run carries its own [`AnyFilter`] — one family for the whole tree.
//! * **Tiered filters** ([`LsmTree::with_tiered_store`]): runs are grouped
//!   into levels served by one [`TieredStore`], whose per-level families the
//!   advisor chose from each level's `t_w` — so the simulated-cost harness
//!   exercises the real serving-layer store, per-level family flip included.
//!   A negative probe of a level's filter skips *every* run of that level.

use pof_core::{AnyFilter, FilterConfig};
use pof_filter::Filter;
use pof_store::TieredStore;

/// One sorted run of an LSM tree level, with an optional per-run filter.
#[derive(Debug)]
pub struct Run {
    keys: Vec<u32>,
    values: Vec<u64>,
    filter: Option<AnyFilter>,
}

impl Run {
    /// Build a run from key/value pairs (sorted internally).
    #[must_use]
    pub fn build(mut pairs: Vec<(u32, u64)>, filter_config: Option<(&FilterConfig, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs.dedup_by_key(|&mut (k, _)| k);
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let values: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        let filter = filter_config.map(|(config, bits_per_key)| {
            AnyFilter::build_with_keys(config, &keys, bits_per_key)
                .expect("run filter construction failed")
        });
        Self {
            keys,
            values,
            filter,
        }
    }

    /// Number of entries in the run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the run holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Binary-search the run. This is the "expensive" access the filter is
    /// meant to avoid: the simulated I/O cost is accounted by the tree.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u64> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|index| self.values[index])
    }

    /// Probe the run's filter (true = the run may contain the key).
    #[must_use]
    pub fn may_contain(&self, key: u32) -> bool {
        self.filter.as_ref().is_none_or(|f| f.contains(key))
    }

    /// The run's sorted key set (the membership a per-level filter covers).
    #[must_use]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Heap bytes of the run's own filter (0 when the run has none, e.g. in
    /// tiered mode where the level store carries the filter instead).
    #[must_use]
    pub fn filter_bytes(&self) -> u64 {
        self.filter
            .as_ref()
            .map_or(0, |filter| filter.size_bits().div_ceil(8))
    }
}

/// Statistics of a batch of LSM lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Number of lookups issued.
    pub lookups: u64,
    /// Number of runs actually searched (each charged the simulated I/O cost).
    pub run_reads: u64,
    /// Number of run reads avoided by a negative filter probe.
    pub run_reads_avoided: u64,
    /// Number of lookups that found the key.
    pub hits: u64,
    /// Filter memory resident when the stats were captured, in bytes —
    /// per-run filters plus the tiered store's levels. Set by
    /// [`LsmTree::capture_memory`], so a cost/memory report carries both
    /// sides of the trade-off in one struct.
    pub filter_bytes: u64,
}

impl LsmStats {
    /// Total simulated cost in cycles, given a per-run-read cost `t_w` and a
    /// per-filter-probe cost.
    #[must_use]
    pub fn simulated_cost(&self, run_read_cycles: f64, filter_probe_cycles: f64) -> f64 {
        self.run_reads as f64 * run_read_cycles
            + (self.run_reads + self.run_reads_avoided) as f64 * filter_probe_cycles
    }
}

/// Filter memory of one LSM level, for bytes-per-key reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmLevelMemory {
    /// Level index (in per-run mode, each run is its own level).
    pub level: usize,
    /// Runs grouped under this level.
    pub runs: usize,
    /// Keys across the level's runs.
    pub keys: u64,
    /// Filter bytes serving the level: the runs' own filters plus, in tiered
    /// mode, the level store's published filter bits.
    pub filter_bytes: u64,
}

impl LsmLevelMemory {
    /// Filter bytes per key at this level (0.0 when the level is empty).
    #[must_use]
    pub fn bytes_per_key(&self) -> f64 {
        if self.keys == 0 {
            0.0
        } else {
            self.filter_bytes as f64 / self.keys as f64
        }
    }
}

/// A multi-run LSM tree with optional per-run filters, or — in tiered mode —
/// per-*level* filters served by a [`TieredStore`].
#[derive(Debug, Default)]
pub struct LsmTree {
    runs: Vec<Run>,
    /// Level of each run (parallel to `runs`). In per-run mode every run is
    /// its own level; in tiered mode the level indexes the tiered store.
    run_levels: Vec<usize>,
    /// The per-level filter store, when the tree runs in tiered mode.
    tiered: Option<TieredStore>,
    /// Cached sum of the runs' own filter bytes, maintained by `add_run`.
    run_filter_bytes: u64,
}

impl LsmTree {
    /// Create an empty tree with per-run filters (each run carries its own).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty tree whose filtering is served by `store`: runs are
    /// added to levels via [`Self::add_run_at_level`] (their keys loaded
    /// into the level's sharded store), and a lookup probes each level's
    /// filter once — a negative probe skips every run of that level. Runs
    /// are typically built *without* their own filters in this mode; a run
    /// that has one is probed through both.
    /// # Panics
    /// If the store has more than 64 levels (the lookup path memoizes level
    /// verdicts in a 64-bit mask; real LSM hierarchies have a handful).
    #[must_use]
    pub fn with_tiered_store(store: TieredStore) -> Self {
        assert!(
            store.level_count() <= 64,
            "LsmTree supports at most 64 tiered levels"
        );
        Self {
            tiered: Some(store),
            ..Self::default()
        }
    }

    /// Add a run (newest first: lookups consult runs in insertion order).
    ///
    /// In per-run mode the run becomes its own level for the memory
    /// accounting ([`Self::filter_memory`]); in tiered mode this is
    /// shorthand for [`Self::add_run_at_level`] into level 0.
    pub fn add_run(&mut self, run: Run) {
        let level = if self.tiered.is_some() {
            0
        } else {
            self.runs.len()
        };
        self.add_run_at_level(run, level);
    }

    /// Add a run to an explicit level. In tiered mode the run's keys are
    /// loaded into the tiered store's level filter; levels must exist in the
    /// store. Lookups still consult *runs* newest-first regardless of level.
    ///
    /// # Panics
    /// In tiered mode, if `level` is out of the store's range.
    pub fn add_run_at_level(&mut self, run: Run, level: usize) {
        if let Some(tiered) = &self.tiered {
            assert!(
                level < tiered.level_count(),
                "run level {level} out of range"
            );
            tiered.load_level(level, run.keys());
        }
        self.run_filter_bytes += run.filter_bytes();
        self.runs.push(run);
        self.run_levels.push(level);
    }

    /// Number of runs.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// The tiered filter store backing this tree, if it runs in tiered mode.
    #[must_use]
    pub fn tiered_store(&self) -> Option<&TieredStore> {
        self.tiered.as_ref()
    }

    /// Total filter bytes serving the tree right now: the runs' own filters
    /// plus (in tiered mode) the level stores' published filter bits.
    #[must_use]
    pub fn filter_bytes(&self) -> u64 {
        self.run_filter_bytes
            + self
                .tiered
                .as_ref()
                .map_or(0, |store| store.size_bits().div_ceil(8))
    }

    /// Record the tree's current filter memory into `stats.filter_bytes`,
    /// so a cost report carries the memory side of the trade-off too.
    pub fn capture_memory(&self, stats: &mut LsmStats) {
        stats.filter_bytes = self.filter_bytes();
    }

    /// Per-level filter memory: runs, keys and filter bytes per level — the
    /// bytes-per-key figures the tiered bench records.
    #[must_use]
    pub fn filter_memory(&self) -> Vec<LsmLevelMemory> {
        // In per-run mode an explicit `add_run_at_level` may group runs
        // sparsely, so size by the highest level actually recorded rather
        // than the run count.
        let level_count = match &self.tiered {
            Some(store) => store.level_count(),
            None => self
                .run_levels
                .iter()
                .map(|&level| level + 1)
                .max()
                .unwrap_or(0),
        };
        let mut levels: Vec<LsmLevelMemory> = (0..level_count)
            .map(|level| LsmLevelMemory {
                level,
                runs: 0,
                keys: 0,
                filter_bytes: 0,
            })
            .collect();
        for (run, &level) in self.runs.iter().zip(&self.run_levels) {
            levels[level].runs += 1;
            levels[level].keys += run.len() as u64;
            levels[level].filter_bytes += run.filter_bytes();
        }
        if let Some(store) = &self.tiered {
            for (level, stats) in store.stats().levels.iter().enumerate() {
                levels[level].filter_bytes += stats.size_bits.div_ceil(8);
            }
        }
        levels
    }

    /// Point lookup across all runs, newest to oldest, updating `stats`.
    ///
    /// In tiered mode each level's filter is probed (at most) once per
    /// lookup: a negative level probe charges one avoided read per run of
    /// that level, a positive one sends the lookup into the level's runs.
    #[must_use]
    pub fn get(&self, key: u32, stats: &mut LsmStats) -> Option<u64> {
        stats.lookups += 1;
        // Memoized per-level filter verdicts for this lookup (tiered mode):
        // two stack bitmasks instead of a heap map, so the hot lookup path —
        // the very cost the simulated-`t_w` harness measures — allocates
        // nothing. `with_tiered_store` bounds the level count at 64.
        let mut levels_probed: u64 = 0;
        let mut levels_positive: u64 = 0;
        for (run, &level) in self.runs.iter().zip(&self.run_levels) {
            let level_may_contain = match &self.tiered {
                Some(store) => {
                    let bit = 1u64 << level;
                    if levels_probed & bit == 0 {
                        levels_probed |= bit;
                        if store.level_contains(level, key) {
                            levels_positive |= bit;
                        }
                    }
                    levels_positive & bit != 0
                }
                None => true,
            };
            if !level_may_contain || !run.may_contain(key) {
                stats.run_reads_avoided += 1;
                continue;
            }
            stats.run_reads += 1;
            if let Some(value) = run.get(key) {
                stats.hits += 1;
                return Some(value);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    use pof_filter::KeyGen;

    fn build_tree(
        filtered: bool,
        runs: usize,
        keys_per_run: usize,
        seed: u64,
    ) -> (LsmTree, Vec<u32>) {
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic));
        let mut gen = KeyGen::new(seed);
        let mut tree = LsmTree::new();
        let mut all_keys = Vec::new();
        for run_id in 0..runs {
            let keys = gen.distinct_keys(keys_per_run);
            all_keys.extend_from_slice(&keys);
            let pairs: Vec<(u32, u64)> = keys
                .iter()
                .map(|&k| (k, u64::from(k) + run_id as u64))
                .collect();
            tree.add_run(Run::build(pairs, filtered.then_some((&config, 20.0))));
        }
        (tree, all_keys)
    }

    #[test]
    fn lookups_find_inserted_keys_with_and_without_filters() {
        for filtered in [false, true] {
            let (tree, keys) = build_tree(filtered, 4, 5_000, 71);
            assert_eq!(tree.num_runs(), 4);
            let mut stats = LsmStats::default();
            for &key in keys.iter().take(2_000) {
                assert!(tree.get(key, &mut stats).is_some(), "missing key {key}");
            }
            assert_eq!(stats.hits, 2_000);
        }
    }

    #[test]
    fn filters_avoid_most_run_reads_for_absent_keys() {
        let (tree, keys) = build_tree(true, 8, 4_000, 72);
        let mut gen = KeyGen::new(73);
        let mut stats = LsmStats::default();
        let mut probed = 0;
        for key in gen.keys(20_000) {
            if keys.contains(&key) {
                continue;
            }
            let _ = tree.get(key, &mut stats);
            probed += 1;
        }
        let total_runs = probed * tree.num_runs() as u64;
        assert_eq!(stats.run_reads + stats.run_reads_avoided, total_runs);
        // With a 16-bit-signature Cuckoo filter the false-positive rate is
        // ~5e-5, so essentially every run read is avoided.
        assert!(
            stats.run_reads_avoided as f64 > 0.999 * total_runs as f64,
            "avoided {} of {}",
            stats.run_reads_avoided,
            total_runs
        );
    }

    #[test]
    fn filtered_tree_has_lower_simulated_cost_for_negative_heavy_workloads() {
        let (filtered_tree, keys) = build_tree(true, 6, 3_000, 74);
        let (plain_tree, _) = build_tree(false, 6, 3_000, 74);
        let mut gen = KeyGen::new(75);
        let probes: Vec<u32> = gen
            .keys(10_000)
            .into_iter()
            .filter(|k| !keys.contains(k))
            .collect();

        let mut filtered_stats = LsmStats::default();
        let mut plain_stats = LsmStats::default();
        for &key in &probes {
            let _ = filtered_tree.get(key, &mut filtered_stats);
            let _ = plain_tree.get(key, &mut plain_stats);
        }
        // SSD-read-like cost per run read (~100k cycles), ~10-cycle filter probe.
        let filtered_cost = filtered_stats.simulated_cost(100_000.0, 10.0);
        let plain_cost = plain_stats.simulated_cost(100_000.0, 0.0);
        assert!(
            filtered_cost < plain_cost / 50.0,
            "filtered {filtered_cost} vs plain {plain_cost}"
        );
    }

    use pof_store::{
        BloomDeleteMode, LevelSpec, ManualCompaction, TieredStore, TieredStoreBuilder,
    };
    use std::sync::Arc;

    /// A two-level tiered store with pinned families (hot Bloom, cold
    /// Cuckoo) and manual compaction, for deterministic LSM tests.
    fn tiered_store(hot_keys: u64, cold_keys: u64) -> TieredStore {
        let hot = LevelSpec {
            expected_keys: hot_keys,
            work_saved_cycles: 32.0,
            delete_rate: 0.0,
            ..LevelSpec::default()
        };
        let cold = LevelSpec {
            expected_keys: cold_keys,
            work_saved_cycles: 1e7,
            delete_rate: 0.0,
            ..LevelSpec::default()
        };
        TieredStoreBuilder::new()
            .level_pinned(
                hot,
                FilterConfig::Bloom(pof_bloom::BloomConfig::cache_sectorized(
                    512,
                    64,
                    2,
                    8,
                    pof_bloom::Addressing::Magic,
                )),
                14.0,
                BloomDeleteMode::Tombstone,
            )
            .level_pinned(
                cold,
                FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
                18.0,
                BloomDeleteMode::Tombstone,
            )
            .compaction(Arc::new(ManualCompaction))
            .build()
    }

    /// Build a tiered-mode tree: `cold_runs` filterless runs on the cold
    /// level, one hot run on level 0.
    fn build_tiered_tree(
        cold_runs: usize,
        keys_per_run: usize,
        seed: u64,
    ) -> (LsmTree, Vec<u32>, Vec<u32>) {
        let mut gen = KeyGen::new(seed);
        let mut tree = LsmTree::with_tiered_store(tiered_store(
            keys_per_run as u64 * 2,
            (cold_runs * keys_per_run) as u64 * 2,
        ));
        let mut cold_keys = Vec::new();
        for run_id in 0..cold_runs {
            let keys = gen.distinct_keys(keys_per_run);
            cold_keys.extend_from_slice(&keys);
            let pairs: Vec<(u32, u64)> = keys
                .iter()
                .map(|&k| (k, u64::from(k) + run_id as u64))
                .collect();
            tree.add_run_at_level(Run::build(pairs, None), 1);
        }
        let hot_keys = gen.distinct_keys(keys_per_run);
        let pairs: Vec<(u32, u64)> = hot_keys.iter().map(|&k| (k, u64::from(k))).collect();
        tree.add_run(Run::build(pairs, None)); // tiered mode: level 0
        (tree, hot_keys, cold_keys)
    }

    #[test]
    fn tiered_tree_finds_every_key_through_the_level_filters() {
        let (tree, hot, cold) = build_tiered_tree(4, 3_000, 81);
        assert_eq!(tree.num_runs(), 5);
        let mut stats = LsmStats::default();
        for &key in hot.iter().chain(&cold) {
            assert!(tree.get(key, &mut stats).is_some(), "missing key {key}");
        }
        assert_eq!(stats.hits, (hot.len() + cold.len()) as u64);
    }

    #[test]
    fn tiered_tree_skips_whole_levels_for_absent_keys() {
        let (tree, hot, cold) = build_tiered_tree(8, 2_000, 82);
        let mut gen = KeyGen::new(83);
        let mut stats = LsmStats::default();
        let mut probed = 0u64;
        for key in gen.keys(20_000) {
            if hot.contains(&key) || cold.contains(&key) {
                continue;
            }
            assert!(tree.get(key, &mut stats).is_none());
            probed += 1;
        }
        let total_runs = probed * tree.num_runs() as u64;
        assert_eq!(stats.run_reads + stats.run_reads_avoided, total_runs);
        // One filter verdict covers all 8 cold runs at once; with the
        // level filters' FPRs nearly every run read is avoided.
        assert!(
            stats.run_reads_avoided as f64 > 0.99 * total_runs as f64,
            "avoided {} of {total_runs}",
            stats.run_reads_avoided
        );
    }

    #[test]
    fn tiered_and_per_run_trees_agree_on_results() {
        let (tiered_tree, hot, cold) = build_tiered_tree(4, 2_000, 84);
        // The per-run twin over the same data (re-generate the same keys).
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic));
        let mut gen = KeyGen::new(84);
        let mut plain = LsmTree::new();
        for run_id in 0..4 {
            let keys = gen.distinct_keys(2_000);
            let pairs: Vec<(u32, u64)> = keys
                .iter()
                .map(|&k| (k, u64::from(k) + run_id as u64))
                .collect();
            plain.add_run(Run::build(pairs, Some((&config, 20.0))));
        }
        let hot_pairs: Vec<(u32, u64)> = gen
            .distinct_keys(2_000)
            .iter()
            .map(|&k| (k, u64::from(k)))
            .collect();
        plain.add_run(Run::build(hot_pairs, Some((&config, 20.0))));
        let mut probe_gen = KeyGen::new(85);
        let probes: Vec<u32> = hot
            .iter()
            .chain(&cold)
            .copied()
            .chain(probe_gen.keys(5_000))
            .collect();
        let (mut a, mut b) = (LsmStats::default(), LsmStats::default());
        for &key in &probes {
            // Note: runs are consulted newest-*first* in insertion order in
            // both trees, but the overlapping-duplicate case is excluded by
            // distinct key generation, so values must agree exactly.
            assert_eq!(
                tiered_tree.get(key, &mut a),
                plain.get(key, &mut b),
                "value mismatch for {key}"
            );
        }
    }

    #[test]
    fn filter_memory_reports_bytes_per_level() {
        // Per-run mode: every run is its own level, filter bytes included.
        let (plain, _) = build_tree(true, 3, 2_000, 86);
        let memory = plain.filter_memory();
        assert_eq!(memory.len(), 3);
        for level in &memory {
            assert_eq!(level.runs, 1);
            assert_eq!(level.keys, 2_000);
            assert!(level.filter_bytes > 0);
            assert!(level.bytes_per_key() > 0.0);
        }
        assert_eq!(
            plain.filter_bytes(),
            memory.iter().map(|l| l.filter_bytes).sum::<u64>()
        );
        // The capture hook lands the same figure in the stats struct.
        let mut stats = LsmStats::default();
        plain.capture_memory(&mut stats);
        assert_eq!(stats.filter_bytes, plain.filter_bytes());

        // Tiered mode: runs group under their level, filter bytes come from
        // the level stores (the runs themselves are filterless).
        let (tiered, hot, cold) = build_tiered_tree(4, 2_000, 87);
        let memory = tiered.filter_memory();
        assert_eq!(memory.len(), 2);
        assert_eq!(memory[0].runs, 1);
        assert_eq!(memory[0].keys, hot.len() as u64);
        assert_eq!(memory[1].runs, 4);
        assert_eq!(memory[1].keys, cold.len() as u64);
        assert!(memory[0].filter_bytes > 0 && memory[1].filter_bytes > 0);
        assert_eq!(
            tiered.filter_bytes(),
            memory.iter().map(|l| l.filter_bytes).sum::<u64>()
        );
        // Cold level: 18 bits/key Cuckoo over 8k keys — bytes/key lands in
        // the plausible band (filters size to powers of two, hence slack).
        let cold_bpk = memory[1].bytes_per_key();
        assert!(
            cold_bpk > 1.0 && cold_bpk < 10.0,
            "cold bytes/key {cold_bpk}"
        );
    }

    #[test]
    fn run_deduplicates_and_sorts() {
        let run = Run::build(vec![(3, 30), (1, 10), (3, 31), (2, 20)], None);
        assert_eq!(run.len(), 3);
        assert_eq!(run.get(1), Some(10));
        assert_eq!(run.get(2), Some(20));
        assert!(run.get(4).is_none());
        assert!(
            run.may_contain(4),
            "runs without filters may always contain a key"
        );
    }
}
