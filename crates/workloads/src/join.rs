//! Selective join pushdown (§1–2, Figure 2): a minimal columnar hash-join
//! pipeline that can push an approximate filter into the probe-side scan.
//!
//! The engine is deliberately small — a dimension (build) table with a
//! predicate, a fact (probe) table, a chaining hash table and a pre-join
//! pipeline whose per-tuple cost can be inflated to model different `t_w`
//! values — but it is a real execution pipeline: the benefit of filtering is
//! *measured*, not assumed, which is what the join-pushdown example and the
//! experiment harness rely on.

use pof_core::AnyFilter;
use pof_filter::{Filter, SelectionVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A foreign-key join workload: `dimension` keys that survive the dimension
/// predicate, and a `fact` table whose join-key column matches a surviving
/// dimension key with probability σ.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// Join keys of the dimension rows that survive the predicate (the filter
    /// build side, the paper's `n`).
    pub dimension_keys: Vec<u32>,
    /// Join-key column of the fact table (the probe side).
    pub fact_keys: Vec<u32>,
    /// A payload column of the fact table, aggregated above the join.
    pub fact_values: Vec<u64>,
    /// Fraction of fact tuples that join (σ).
    pub sigma: f64,
}

impl JoinWorkload {
    /// Generate a workload with `dimension_rows` surviving dimension keys and
    /// `fact_rows` fact tuples of which a fraction `sigma` join.
    #[must_use]
    pub fn generate(seed: u64, dimension_rows: usize, fact_rows: usize, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&sigma));
        let mut gen = pof_filter::KeyGen::new(seed);
        let dimension_keys = gen.distinct_keys(dimension_rows);
        let fact_keys = gen.probes_with_selectivity(&dimension_keys, fact_rows, sigma);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let fact_values = (0..fact_rows).map(|_| rng.gen_range(1..1000u64)).collect();
        Self {
            dimension_keys,
            fact_keys,
            fact_values,
            sigma,
        }
    }
}

/// A chaining hash table from join key to dimension row id — the join's build
/// side (and the structure whose probe cost the filter is meant to avoid).
#[derive(Debug)]
pub struct JoinHashTable {
    buckets: Vec<u32>,
    next: Vec<u32>,
    keys: Vec<u32>,
    mask: u32,
}

const EMPTY: u32 = u32::MAX;

impl JoinHashTable {
    /// Build the hash table over the dimension keys.
    #[must_use]
    pub fn build(keys: &[u32]) -> Self {
        let capacity = (keys.len() * 2).next_power_of_two().max(16);
        let mut table = Self {
            buckets: vec![EMPTY; capacity],
            next: vec![EMPTY; keys.len()],
            keys: keys.to_vec(),
            mask: capacity as u32 - 1,
        };
        for (row, &key) in keys.iter().enumerate() {
            let bucket = (pof_hash::hash32(key) & table.mask) as usize;
            table.next[row] = table.buckets[bucket];
            table.buckets[bucket] = row as u32;
        }
        table
    }

    /// Probe for a key; returns the dimension row id of the first match.
    #[inline]
    #[must_use]
    pub fn probe(&self, key: u32) -> Option<u32> {
        let mut row = self.buckets[(pof_hash::hash32(key) & self.mask) as usize];
        while row != EMPTY {
            if self.keys[row as usize] == key {
                return Some(row);
            }
            row = self.next[row as usize];
        }
        None
    }

    /// Number of build-side rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the build side is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Result of running the probe pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinResult {
    /// Number of fact tuples that found a join partner.
    pub matches: u64,
    /// Sum of the payload column over the joining tuples (the post-join
    /// aggregate Γ of Figure 2).
    pub aggregate: u64,
    /// Number of hash-table probes actually executed.
    pub hash_probes: u64,
    /// Number of fact tuples eliminated by the pushed-down filter.
    pub filtered_out: u64,
}

/// The probe pipeline: scan the fact table (optionally through a pushed-down
/// filter), spend `pre_join_work` units of synthetic per-tuple work for every
/// surviving tuple (modelling the operators between the scan and the join),
/// probe the hash table and aggregate.
pub struct ProbePipeline<'a> {
    workload: &'a JoinWorkload,
    hash_table: &'a JoinHashTable,
    /// Iterations of synthetic work per surviving tuple; scales `t_w`.
    pub pre_join_work: u32,
    batch_size: usize,
}

impl<'a> ProbePipeline<'a> {
    /// Create a pipeline over a workload and its build-side hash table.
    #[must_use]
    pub fn new(workload: &'a JoinWorkload, hash_table: &'a JoinHashTable) -> Self {
        Self {
            workload,
            hash_table,
            pre_join_work: 0,
            batch_size: 4096,
        }
    }

    /// Synthetic per-tuple work standing in for the operators between the
    /// scan and the join (decompression, expression evaluation, …).
    #[inline]
    fn burn(&self, key: u32) -> u64 {
        let mut acc = u64::from(key) | 1;
        for _ in 0..self.pre_join_work {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        acc
    }

    /// Run the pipeline without any filter: every fact tuple pays the
    /// pre-join work and one hash-table probe.
    #[must_use]
    pub fn run_unfiltered(&self) -> JoinResult {
        let mut result = JoinResult {
            matches: 0,
            aggregate: 0,
            hash_probes: 0,
            filtered_out: 0,
        };
        for (i, &key) in self.workload.fact_keys.iter().enumerate() {
            std::hint::black_box(self.burn(key));
            result.hash_probes += 1;
            if self.hash_table.probe(key).is_some() {
                result.matches += 1;
                result.aggregate += self.workload.fact_values[i];
            }
        }
        result
    }

    /// Run the pipeline with `filter` pushed down into the scan: tuples whose
    /// join key tests negative are dropped before paying the pre-join work
    /// and the hash-table probe.
    #[must_use]
    pub fn run_with_filter(&self, filter: &AnyFilter) -> JoinResult {
        let mut result = JoinResult {
            matches: 0,
            aggregate: 0,
            hash_probes: 0,
            filtered_out: 0,
        };
        let mut sel = SelectionVector::with_capacity(self.batch_size);
        let fact_keys = &self.workload.fact_keys;
        // Selection-vector positions are 32-bit (§5 of the paper); the
        // offset-probing below would silently wrap past that.
        assert!(
            fact_keys.len() <= u32::MAX as usize,
            "fact tables beyond 2^32 rows must be scanned in multiple position spaces"
        );
        let mut offset = 0usize;
        while offset < fact_keys.len() {
            let batch = &fact_keys[offset..(offset + self.batch_size).min(fact_keys.len())];
            sel.clear();
            // Offset-probing yields column-global positions directly, so the
            // qualifying tuples index the fact table without per-position
            // arithmetic here.
            filter.contains_batch_offset(batch, offset as u32, &mut sel);
            result.filtered_out += (batch.len() - sel.len()) as u64;
            for &pos in sel.as_slice() {
                let index = pos as usize;
                let key = fact_keys[index];
                std::hint::black_box(self.burn(key));
                result.hash_probes += 1;
                if self.hash_table.probe(key).is_some() {
                    result.matches += 1;
                    result.aggregate += self.workload.fact_values[index];
                }
            }
            offset += batch.len();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_core::configspace::FilterConfig;
    use std::time::Instant;

    fn cache_sectorized_filter(keys: &[u32]) -> AnyFilter {
        AnyFilter::build_with_keys(
            &FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
            keys,
            16.0,
        )
        .unwrap()
    }

    #[test]
    fn hash_table_probes_find_exactly_the_build_keys() {
        let keys: Vec<u32> = (0..10_000u32).map(|i| i * 7 + 3).collect();
        let table = JoinHashTable::build(&keys);
        assert_eq!(table.len(), keys.len());
        for (row, &key) in keys.iter().enumerate() {
            assert_eq!(table.probe(key), Some(row as u32));
        }
        assert_eq!(table.probe(1), None);
        assert_eq!(table.probe(u32::MAX), None);
    }

    #[test]
    fn filtered_and_unfiltered_pipelines_agree_on_the_join_result() {
        let workload = JoinWorkload::generate(61, 20_000, 100_000, 0.25);
        let table = JoinHashTable::build(&workload.dimension_keys);
        let filter = cache_sectorized_filter(&workload.dimension_keys);
        let pipeline = ProbePipeline::new(&workload, &table);
        let unfiltered = pipeline.run_unfiltered();
        let filtered = pipeline.run_with_filter(&filter);
        // The filter may only remove non-joining tuples, so the join output is
        // identical.
        assert_eq!(unfiltered.matches, filtered.matches);
        assert_eq!(unfiltered.aggregate, filtered.aggregate);
        // And it must actually remove a substantial share of the 75 % misses.
        assert!(filtered.filtered_out > 0);
        assert!(filtered.hash_probes < unfiltered.hash_probes);
        let expected_matches = (workload.fact_keys.len() as f64 * workload.sigma) as u64;
        assert!((unfiltered.matches as f64 - expected_matches as f64).abs() < 2_000.0);
    }

    #[test]
    fn selectivity_extremes() {
        let all_match = JoinWorkload::generate(62, 5_000, 20_000, 1.0);
        let table = JoinHashTable::build(&all_match.dimension_keys);
        let filter = cache_sectorized_filter(&all_match.dimension_keys);
        let pipeline = ProbePipeline::new(&all_match, &table);
        let result = pipeline.run_with_filter(&filter);
        assert_eq!(result.matches, all_match.fact_keys.len() as u64);
        assert_eq!(result.filtered_out, 0, "members must never be filtered out");

        let none_match = JoinWorkload::generate(63, 5_000, 20_000, 0.0);
        let table = JoinHashTable::build(&none_match.dimension_keys);
        let filter = cache_sectorized_filter(&none_match.dimension_keys);
        let pipeline = ProbePipeline::new(&none_match, &table);
        let result = pipeline.run_with_filter(&filter);
        assert_eq!(result.matches, 0);
        // Almost everything is filtered out (modulo false positives).
        assert!(result.filtered_out as f64 > 0.95 * none_match.fact_keys.len() as f64);
    }

    #[test]
    fn filter_pushdown_speeds_up_selective_joins_with_expensive_pipelines() {
        // The end-to-end claim of Figure 2: with a selective join (σ = 0.05)
        // and non-trivial per-tuple work, the filtered pipeline is faster.
        // The pre-join work is set high enough that the comparison also holds
        // in unoptimised (debug) test builds, where the filter's per-batch
        // bookkeeping is disproportionately expensive.
        let workload = JoinWorkload::generate(64, 20_000, 60_000, 0.05);
        let table = JoinHashTable::build(&workload.dimension_keys);
        let filter = cache_sectorized_filter(&workload.dimension_keys);
        let mut pipeline = ProbePipeline::new(&workload, &table);
        pipeline.pre_join_work = 1024;

        let start = Instant::now();
        let unfiltered = pipeline.run_unfiltered();
        let unfiltered_time = start.elapsed();

        let start = Instant::now();
        let filtered = pipeline.run_with_filter(&filter);
        let filtered_time = start.elapsed();

        assert_eq!(unfiltered.matches, filtered.matches);
        assert!(
            filtered_time < unfiltered_time,
            "filtered {filtered_time:?} should beat unfiltered {unfiltered_time:?}"
        );
    }
}
