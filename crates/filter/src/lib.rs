//! Common abstractions shared by every filter implementation in the workspace.
//!
//! The paper unifies "the interface of all filters under test with regard to
//! batched lookups: the contains functions take an entire list of keys at once
//! and produce a position list (also called a selection vector) consisting of
//! 32-bit integers" (§5). This crate provides exactly that interface:
//!
//! * [`Filter`] — the unified insert/contains/batch-contains trait,
//! * [`SelectionVector`] — the position list produced by batched lookups,
//! * [`keygen`] — deterministic workload generation (build keys, probe keys
//!   with a chosen selectivity σ),
//! * [`probe`] — the staged mass-probe support: [`ProbePlan`] scratch,
//!   portable software prefetching and the staged-vs-scalar routing policy
//!   shared by every family's hash → prefetch → probe batch kernel,
//! * [`stats`] — empirical false-positive-rate measurement used by the
//!   model-validation tests and by EXPERIMENTS.md.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod keygen;
pub mod probe;
pub mod selection;
pub mod stats;
pub mod traits;

pub use keygen::{KeyGen, Workload};
pub use probe::{ProbePlan, STAGED_BATCH_THRESHOLD};
pub use selection::SelectionVector;
pub use stats::{measured_fpr, FprMeasurement};
pub use traits::{DeleteOutcome, Filter, FilterKind};
