//! The unified filter interface.

use crate::selection::SelectionVector;

/// Which family a filter configuration belongs to. Used by the
/// performance-optimal skylines (Figure 10) to report the winning *type*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FilterKind {
    /// Any Bloom filter variant (classic, blocked, register-blocked,
    /// sectorized, cache-sectorized).
    Bloom,
    /// A Cuckoo filter.
    Cuckoo,
    /// An immutable Xor / binary-fuse filter, constructed from a complete
    /// key set and never mutated in place.
    Fuse,
}

impl std::fmt::Display for FilterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bloom => write!(f, "Bloom"),
            Self::Cuckoo => write!(f, "Cuckoo"),
            Self::Fuse => write!(f, "Fuse"),
        }
    }
}

/// Outcome of a [`Filter::try_delete`] call.
///
/// Deletion is a *capability*, not a guarantee: Cuckoo filters store discrete
/// fingerprints and can remove one occurrence of a key, counting Bloom
/// variants track per-bit reference counts and can clear bits in place, while
/// plain Bloom variants share bits between keys and cannot unset anything
/// without corrupting other members. The three-way outcome lets callers (such
/// as the sharded store's shard lifecycle) pick a strategy per family —
/// delete in place when `Removed`, fall back to tombstoning and a later
/// rebuild when `Unsupported` — through one uniform interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeleteOutcome {
    /// One occurrence of the key was found and removed from the structure.
    Removed,
    /// The structure supports deletion but held no occurrence of the key.
    NotFound,
    /// The structure cannot delete keys (Bloom variants, frozen snapshots).
    Unsupported,
}

impl DeleteOutcome {
    /// True if the call actually removed an occurrence of the key.
    #[must_use]
    pub fn removed(self) -> bool {
        matches!(self, Self::Removed)
    }
}

/// The unified approximate-membership filter interface (§5 of the paper).
///
/// Keys are 32-bit integers, matching the paper's evaluation ("random 32-bit
/// integers (uniformly distributed)"); wider keys are expected to be hashed
/// down to 32 bits by the caller (as the paper's join use case does with join
/// keys).
///
/// # Contract
///
/// * `contains(k)` must return `true` for every `k` successfully inserted
///   (no false negatives);
/// * `contains(k)` may return `true` for keys never inserted (false
///   positives), at a rate predicted by the `pof-model` crate;
/// * `contains_batch` must be exactly equivalent to calling `contains` on
///   every key (the SIMD and scalar code paths are interchangeable).
pub trait Filter {
    /// Insert a key. Returns `false` if the structure could not accommodate
    /// the key (only possible for Cuckoo filters whose relocation search
    /// failed); Bloom filters always return `true`.
    fn insert(&mut self, key: u32) -> bool;

    /// Point lookup: may the key be in the set?
    fn contains(&self, key: u32) -> bool;

    /// Batched lookup: for every key in `keys` that tests positive, append its
    /// index (position within the batch) to `sel`. `sel` is *not* cleared
    /// first, so results can be accumulated across batches by offsetting.
    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        for (i, &key) in keys.iter().enumerate() {
            sel.push_if(i as u32, self.contains(key));
        }
    }

    /// Batched lookup with a base offset: exactly [`Filter::contains_batch`],
    /// except qualifying keys append `base + index` instead of `index`.
    ///
    /// This is the building block for probing one logical key stream in
    /// chunks while accumulating column-global positions (the join pipeline's
    /// probe loop scans the fact table this way). The default routes through
    /// [`Filter::contains_batch`] — so every implementation's vectorised
    /// batch kernel is reached — and rebases the appended tail in place;
    /// no allocation, no extra passes. Positions are 32-bit: the probed
    /// stream must stay below `u32::MAX` keys (`base + index` must not wrap).
    fn contains_batch_offset(&self, keys: &[u32], base: u32, sel: &mut SelectionVector) {
        let start = sel.len();
        self.contains_batch(keys, sel);
        sel.offset_tail(start, base);
    }

    /// Remove one occurrence of `key`, if this filter family supports
    /// deletion.
    ///
    /// The default refuses ([`DeleteOutcome::Unsupported`]): plain Bloom
    /// variants share bits between keys, so unsetting anything would
    /// introduce false negatives for other members. Cuckoo filters override
    /// this to remove a stored fingerprint, and *counting* Bloom variants
    /// (a per-bit counter sidecar) override it to clear bits whose last
    /// referencing key left. Either way the shared caveat applies: removing
    /// a key that was never inserted may take a colliding key's signature or
    /// shared bits with it — only delete keys known to be present.
    fn try_delete(&mut self, _key: u32) -> DeleteOutcome {
        DeleteOutcome::Unsupported
    }

    /// True if [`Filter::try_delete`] can ever return something other than
    /// [`DeleteOutcome::Unsupported`] for this filter.
    fn supports_delete(&self) -> bool {
        false
    }

    /// Memory footprint of the filter data in bits (the paper's `m`).
    fn size_bits(&self) -> u64;

    /// Which family this filter belongs to.
    fn kind(&self) -> FilterKind;

    /// A short human-readable configuration label, e.g.
    /// `"blocked-bloom(B=512,S=64,z=2,k=8,magic)"`. Used in figure output and
    /// calibration records.
    fn config_label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// An exact filter used to exercise the default `contains_batch`
    /// implementation.
    struct ExactSet {
        keys: HashSet<u32>,
    }

    impl Filter for ExactSet {
        fn insert(&mut self, key: u32) -> bool {
            self.keys.insert(key);
            true
        }
        fn contains(&self, key: u32) -> bool {
            self.keys.contains(&key)
        }
        fn size_bits(&self) -> u64 {
            (self.keys.len() * 32) as u64
        }
        fn kind(&self) -> FilterKind {
            FilterKind::Bloom
        }
        fn config_label(&self) -> String {
            "exact".to_string()
        }
    }

    #[test]
    fn default_batch_lookup_matches_point_lookups() {
        let mut filter = ExactSet {
            keys: HashSet::new(),
        };
        for key in [10u32, 20, 30, 40] {
            assert!(filter.insert(key));
        }
        let probe = [5u32, 10, 15, 20, 25, 30, 35, 40];
        let mut sel = SelectionVector::new();
        filter.contains_batch(&probe, &mut sel);
        assert_eq!(sel.as_slice(), &[1, 3, 5, 7]);
    }

    #[test]
    fn offset_batch_lookup_accumulates_global_positions() {
        let mut filter = ExactSet {
            keys: HashSet::new(),
        };
        for key in [10u32, 20, 30, 40] {
            assert!(filter.insert(key));
        }
        let probe = [5u32, 10, 15, 20, 25, 30, 35, 40];
        // Chunked probing with offsets must equal the one-shot batch result.
        let mut oneshot = SelectionVector::new();
        filter.contains_batch(&probe, &mut oneshot);
        let mut chunked = SelectionVector::new();
        for (i, chunk) in probe.chunks(3).enumerate() {
            filter.contains_batch_offset(chunk, (i * 3) as u32, &mut chunked);
        }
        assert_eq!(chunked.as_slice(), oneshot.as_slice());
    }

    #[test]
    fn delete_defaults_to_unsupported() {
        let mut filter = ExactSet {
            keys: HashSet::new(),
        };
        assert!(filter.insert(9));
        assert!(!filter.supports_delete());
        assert_eq!(filter.try_delete(9), DeleteOutcome::Unsupported);
        assert!(!DeleteOutcome::Unsupported.removed());
        assert!(!DeleteOutcome::NotFound.removed());
        assert!(DeleteOutcome::Removed.removed());
        // The default must not have touched the structure.
        assert!(filter.contains(9));
    }

    #[test]
    fn filter_kind_display() {
        assert_eq!(FilterKind::Bloom.to_string(), "Bloom");
        assert_eq!(FilterKind::Cuckoo.to_string(), "Cuckoo");
        assert_eq!(FilterKind::Fuse.to_string(), "Fuse");
    }
}
