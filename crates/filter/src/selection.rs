//! Selection vectors: position lists produced by batched filter lookups.

/// A position list of 32-bit indexes, the output format of batched `contains`
/// calls (§5 of the paper). Positions are appended in ascending order of the
/// probed batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionVector {
    positions: Vec<u32>,
}

impl SelectionVector {
    /// Create an empty selection vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty selection vector with capacity for `n` positions.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            positions: Vec::with_capacity(n),
        }
    }

    /// Append a qualifying position.
    #[inline(always)]
    pub fn push(&mut self, position: u32) {
        self.positions.push(position);
    }

    /// Append a position only if `qualifies` is true, without branching in the
    /// caller. This is the standard branch-free pattern used by vectorized
    /// engines: the write always happens, the length only advances when the
    /// predicate holds.
    #[inline(always)]
    pub fn push_if(&mut self, position: u32, qualifies: bool) {
        self.positions.push(position);
        if !qualifies {
            self.positions.pop();
        }
    }

    /// Number of selected positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no position qualified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Selected positions as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.positions
    }

    /// Shift every position from index `from` to the end by `offset`, in
    /// place.
    ///
    /// This is the merge primitive for batch-at-a-time pipelines
    /// ([`Filter::contains_batch_offset`] is built on it): a chunked probe
    /// writes chunk-local positions straight into this vector through the
    /// batch kernel, then rebases the freshly appended tail to stream-global
    /// positions. Positions are 32-bit, so a probed stream must stay below
    /// `u32::MAX` keys.
    ///
    /// [`Filter::contains_batch_offset`]: crate::Filter::contains_batch_offset
    pub fn offset_tail(&mut self, from: usize, offset: u32) {
        for position in &mut self.positions[from..] {
            *position += offset;
        }
    }

    /// Remove all positions, keeping the allocation.
    pub fn clear(&mut self) {
        self.positions.clear();
    }

    /// Reserve space for at least `additional` more positions.
    pub fn reserve(&mut self, additional: usize) {
        self.positions.reserve(additional);
    }

    /// Fraction of a batch of `batch_len` probes that qualified.
    #[must_use]
    pub fn selectivity(&self, batch_len: usize) -> f64 {
        if batch_len == 0 {
            0.0
        } else {
            self.positions.len() as f64 / batch_len as f64
        }
    }
}

impl From<Vec<u32>> for SelectionVector {
    fn from(positions: Vec<u32>) -> Self {
        Self { positions }
    }
}

impl From<SelectionVector> for Vec<u32> {
    fn from(sel: SelectionVector) -> Self {
        sel.positions
    }
}

impl<'a> IntoIterator for &'a SelectionVector {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.positions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut sel = SelectionVector::new();
        assert!(sel.is_empty());
        sel.push(3);
        sel.push(7);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.as_slice(), &[3, 7]);
    }

    #[test]
    fn offset_tail_rebases_only_the_tail() {
        let mut sel = SelectionVector::from(vec![0, 2]);
        sel.push(1);
        sel.push(3);
        sel.offset_tail(2, 100);
        assert_eq!(sel.as_slice(), &[0, 2, 101, 103]);
        // Degenerate forms: empty tail, zero offset.
        sel.offset_tail(4, 50);
        sel.offset_tail(0, 0);
        assert_eq!(sel.as_slice(), &[0, 2, 101, 103]);
    }

    #[test]
    fn push_if_only_keeps_qualifying_positions() {
        let mut sel = SelectionVector::with_capacity(8);
        for i in 0..8u32 {
            sel.push_if(i, i % 3 == 0);
        }
        assert_eq!(sel.as_slice(), &[0, 3, 6]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut sel = SelectionVector::with_capacity(100);
        for i in 0..50 {
            sel.push(i);
        }
        sel.clear();
        assert!(sel.is_empty());
        sel.push(1);
        assert_eq!(sel.as_slice(), &[1]);
    }

    #[test]
    fn selectivity_calculation() {
        let sel = SelectionVector::from(vec![1, 5, 9]);
        assert!((sel.selectivity(10) - 0.3).abs() < 1e-12);
        assert_eq!(sel.selectivity(0), 0.0);
    }

    #[test]
    fn conversions_round_trip() {
        let sel = SelectionVector::from(vec![2, 4, 8]);
        let v: Vec<u32> = sel.clone().into();
        assert_eq!(v, vec![2, 4, 8]);
        let collected: Vec<u32> = (&sel).into_iter().copied().collect();
        assert_eq!(collected, vec![2, 4, 8]);
    }
}
