//! Staged mass-probe support: reusable probe-plan scratch, software
//! prefetching and the staged-vs-scalar routing policy.
//!
//! The paper frames filter choice as a question of *throughput at the memory
//! wall* (§2, §5), yet a scalar batch loop hashes and probes one key at a
//! time, paying every cache/TLB miss serially. The staged kernels built on
//! this module restructure a batch lookup into a hash → prefetch → probe
//! pipeline over fixed-size chunks:
//!
//! ```text
//!           chunk c+1                 chunk c
//!  ┌──────────────────────┐  ┌──────────────────────┐
//!  │ hash: key → address  │  │ probe: resolve       │
//!  │ prefetch: request    │  │ membership from      │
//!  │ the cache lines      │  │ already-warm lines   │
//!  └──────────────────────┘  └──────────────────────┘
//!        (issued first)         (runs while c+1's
//!                                lines stream in)
//! ```
//!
//! Each family crate owns its probe math; this module provides the shared
//! pieces: [`ProbePlan`] (the reusable address scratch and the tunable
//! prefetch distance), [`prefetch_read`] (a portable software-prefetch
//! wrapper), and [`staged_worthwhile`] (the batch-size / filter-footprint
//! policy that keeps small batches and cache-resident filters on the
//! existing scalar/SIMD kernels, where staging is pure overhead).

use std::cell::RefCell;

/// Default prefetch distance: how many keys the hash stage runs ahead of the
/// probe stage. 64 keys cover a DRAM/L3 miss latency at typical per-key probe
/// costs while keeping at most `3 · 64` requested lines in flight — small
/// enough that early lines are still resident when their probes arrive.
pub const DEFAULT_PREFETCH_DISTANCE: usize = 64;

/// Smallest accepted prefetch distance. Below this the pipeline degenerates:
/// prefetches have no probe work to hide behind.
pub const MIN_PREFETCH_DISTANCE: usize = 4;

/// Largest accepted prefetch distance. Beyond this the oldest prefetched
/// lines risk eviction before their probes run.
pub const MAX_PREFETCH_DISTANCE: usize = 4096;

/// Batch length at which the staged kernels start paying off. Smaller
/// batches stay on the scalar/SIMD paths: the pipeline's staging overhead is
/// amortised over too few probes, and out-of-order execution already
/// overlaps a handful of independent lookups.
pub const STAGED_BATCH_THRESHOLD: usize = 1024;

/// Filter footprint (bytes) below which staging is pointless: a filter that
/// fits in the L2 cache serves probes at a latency software prefetching
/// cannot beat. 2 MiB approximates a current per-core L2.
pub const STAGED_FOOTPRINT_FLOOR_BYTES: u64 = 2 * 1024 * 1024;

/// Footprint floor for *fuse* filters, far above the generic
/// [`STAGED_FOOTPRINT_FLOOR_BYTES`]. A fuse probe is three loads confined to
/// three consecutive `segment_length`-sized windows — locality the recorded
/// sweeps show the out-of-order core already exploits: `BENCH_store.json`
/// has fuse8 staged/scalar at 0.66–0.81× across every batch size at
/// store-scale footprints, i.e. the staging overhead was pure loss. Staging
/// can only start paying once the segment windows themselves fall out of the
/// last-level cache, so the floor sits past a large shared LLC; below it
/// fuse batches stay on the scalar kernel.
pub const FUSE_STAGED_FOOTPRINT_FLOOR_BYTES: u64 = 64 * 1024 * 1024;

/// Should a batch of `batch_len` keys against a filter occupying
/// `filter_bytes` take the staged path? True only past both the batch-size
/// threshold and the footprint floor — the staged kernels trade extra
/// address arithmetic for hidden miss latency, which is only a win when
/// there are misses to hide and enough keys to amortise the staging.
///
/// This is the family-agnostic policy with the generic footprint floor;
/// routing that knows the family should call [`staged_worthwhile_for`],
/// which raises the floor for fuse filters.
#[inline]
#[must_use]
pub fn staged_worthwhile(batch_len: usize, filter_bytes: u64) -> bool {
    batch_len >= STAGED_BATCH_THRESHOLD && filter_bytes >= STAGED_FOOTPRINT_FLOOR_BYTES
}

/// Family-aware staged routing: like [`staged_worthwhile`], but the
/// footprint floor depends on the probe shape of the family. Bloom blocks
/// and Cuckoo buckets scatter uniformly over the whole array, so misses
/// start as soon as the array outgrows a per-core L2
/// ([`STAGED_FOOTPRINT_FLOOR_BYTES`]); a fuse probe's three loads land in
/// three adjacent segment windows whose locality keeps scalar ahead until
/// far larger footprints ([`FUSE_STAGED_FOOTPRINT_FLOOR_BYTES`]).
#[inline]
#[must_use]
pub fn staged_worthwhile_for(kind: crate::FilterKind, batch_len: usize, filter_bytes: u64) -> bool {
    let floor = match kind {
        crate::FilterKind::Bloom | crate::FilterKind::Cuckoo => STAGED_FOOTPRINT_FLOOR_BYTES,
        crate::FilterKind::Fuse => FUSE_STAGED_FOOTPRINT_FLOOR_BYTES,
    };
    batch_len >= STAGED_BATCH_THRESHOLD && filter_bytes >= floor
}

/// Issue a best-effort software prefetch for the cache line holding `slot`.
///
/// On x86-64 this lowers to `_mm_prefetch(…, _MM_HINT_T0)`; elsewhere it is
/// a no-op, so the staged kernels stay portable (they still compute correct
/// answers, just without the latency hiding).
#[inline(always)]
pub fn prefetch_read<T>(slot: &T) {
    // SAFETY: `_mm_prefetch` is purely a hint with no architectural side
    // effects — it cannot fault even on an invalid address, so any pointer
    // (here a valid reference) is sound to pass.
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(std::ptr::from_ref(slot).cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = slot;
}

/// Prefetch the first few cache lines of a backing-storage slice. Used for
/// shard- and level-granular streaming: while one shard's slice is being
/// probed, the *next* shard's filter starts moving toward the core.
#[inline]
pub fn prefetch_lines<T>(data: &[T]) {
    let per_line = (64 / std::mem::size_of::<T>().max(1)).max(1);
    for line in 0..4usize {
        if let Some(slot) = data.get(line * per_line) {
            prefetch_read(slot);
        }
    }
}

/// Reusable scratch for the staged (hash → prefetch → probe) batch kernels.
///
/// A plan owns up to three `u64` address lanes — enough for the widest probe
/// shape (a binary fuse filter's three segment slots; Cuckoo uses two lanes
/// plus one for signatures, blocked Bloom uses one) — double-buffered over
/// two chunks of [`Self::distance`] keys, and the tunable prefetch distance
/// itself. Lanes grow on first use and are reused afterwards, so a held plan
/// keeps the staged path allocation-free in steady state (the sharded
/// store's `ProbeScratch` embeds one for exactly this reason).
#[derive(Debug, Clone)]
pub struct ProbePlan {
    distance: usize,
    lanes: [Vec<u64>; 3],
}

impl Default for ProbePlan {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbePlan {
    /// Create a plan with the default prefetch distance.
    #[must_use]
    pub fn new() -> Self {
        Self::with_distance(DEFAULT_PREFETCH_DISTANCE)
    }

    /// Create a plan with an explicit prefetch distance (clamped to
    /// [`MIN_PREFETCH_DISTANCE`], [`MAX_PREFETCH_DISTANCE`]).
    #[must_use]
    pub fn with_distance(distance: usize) -> Self {
        Self {
            distance: distance.clamp(MIN_PREFETCH_DISTANCE, MAX_PREFETCH_DISTANCE),
            lanes: [Vec::new(), Vec::new(), Vec::new()],
        }
    }

    /// The prefetch distance: how many keys the hash stage stays ahead of
    /// the probe stage.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Re-tune the prefetch distance (clamped like
    /// [`Self::with_distance`]). Existing lane capacity is kept.
    pub fn set_distance(&mut self, distance: usize) {
        self.distance = distance.clamp(MIN_PREFETCH_DISTANCE, MAX_PREFETCH_DISTANCE);
    }

    /// Borrow the three address lanes, each grown to at least `len` entries.
    /// The staged kernels call this with `2 · distance` and split each lane
    /// into two chunk-sized halves (hash into one half while probing from
    /// the other).
    // pof-analyze: no-alloc
    pub fn lanes(&mut self, len: usize) -> [&mut [u64]; 3] {
        for lane in &mut self.lanes {
            if lane.len() < len {
                lane.resize(len, 0);
            }
        }
        let [a, b, c] = &mut self.lanes;
        [&mut a[..len], &mut b[..len], &mut c[..len]]
    }
}

thread_local! {
    /// Per-thread plan backing the automatic staged routing inside the
    /// filters' `contains_batch`, so auto-routed callers also reach a warm,
    /// allocation-free steady state.
    static THREAD_PLAN: RefCell<ProbePlan> = RefCell::new(ProbePlan::new());
}

/// Run `f` with this thread's shared [`ProbePlan`]. Used by the filters'
/// `contains_batch` when the staged path is chosen automatically; callers
/// that want explicit control (distance tuning, embedding the plan in their
/// own scratch) pass their own plan to `contains_batch_staged` instead.
///
/// # Panics
/// Panics if `f` re-enters `with_thread_plan` (the staged kernels never do).
pub fn with_thread_plan<R>(f: impl FnOnce(&mut ProbePlan) -> R) -> R {
    THREAD_PLAN.with(|plan| f(&mut plan.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_clamped() {
        assert_eq!(
            ProbePlan::with_distance(0).distance(),
            MIN_PREFETCH_DISTANCE
        );
        assert_eq!(
            ProbePlan::with_distance(usize::MAX).distance(),
            MAX_PREFETCH_DISTANCE
        );
        let mut plan = ProbePlan::new();
        assert_eq!(plan.distance(), DEFAULT_PREFETCH_DISTANCE);
        plan.set_distance(1);
        assert_eq!(plan.distance(), MIN_PREFETCH_DISTANCE);
        plan.set_distance(128);
        assert_eq!(plan.distance(), 128);
    }

    #[test]
    fn lanes_grow_and_are_reused() {
        let mut plan = ProbePlan::new();
        {
            let [a, b, c] = plan.lanes(16);
            assert_eq!(a.len(), 16);
            assert_eq!(b.len(), 16);
            assert_eq!(c.len(), 16);
            a[15] = 7;
        }
        // A smaller request reuses the same storage without shrinking it.
        let [a, _, _] = plan.lanes(8);
        assert_eq!(a.len(), 8);
        assert_eq!(plan.lanes(16)[0][15], 7);
    }

    #[test]
    fn routing_policy_needs_both_thresholds() {
        let big = STAGED_FOOTPRINT_FLOOR_BYTES;
        assert!(staged_worthwhile(STAGED_BATCH_THRESHOLD, big));
        assert!(!staged_worthwhile(STAGED_BATCH_THRESHOLD - 1, big));
        assert!(!staged_worthwhile(STAGED_BATCH_THRESHOLD, big - 1));
        assert!(!staged_worthwhile(0, 0));
    }

    #[test]
    fn family_aware_routing_raises_the_fuse_floor() {
        use crate::FilterKind;
        let generic = STAGED_FOOTPRINT_FLOOR_BYTES;
        // Bloom/Cuckoo keep the generic policy bit for bit.
        for bytes in [generic - 1, generic, 4 * generic] {
            for len in [STAGED_BATCH_THRESHOLD - 1, STAGED_BATCH_THRESHOLD] {
                assert_eq!(
                    staged_worthwhile_for(FilterKind::Bloom, len, bytes),
                    staged_worthwhile(len, bytes)
                );
                assert_eq!(
                    staged_worthwhile_for(FilterKind::Cuckoo, len, bytes),
                    staged_worthwhile(len, bytes)
                );
            }
        }
        // A store-scale fuse filter (tens of MiB) that the generic policy
        // would stage stays scalar — the recorded regression shape.
        assert!(staged_worthwhile(STAGED_BATCH_THRESHOLD, 8 * generic));
        assert!(!staged_worthwhile_for(
            FilterKind::Fuse,
            STAGED_BATCH_THRESHOLD,
            8 * generic
        ));
        // Past the fuse floor the staged path opens up again.
        assert!(staged_worthwhile_for(
            FilterKind::Fuse,
            STAGED_BATCH_THRESHOLD,
            FUSE_STAGED_FOOTPRINT_FLOOR_BYTES
        ));
        assert!(!staged_worthwhile_for(
            FilterKind::Fuse,
            STAGED_BATCH_THRESHOLD - 1,
            FUSE_STAGED_FOOTPRINT_FLOOR_BYTES
        ));
    }

    #[test]
    fn prefetch_is_safe_on_any_slice() {
        // Purely a does-not-crash check: prefetching is semantically a no-op.
        let words = vec![0u64; 1024];
        prefetch_read(&words[0]);
        prefetch_read(&words[1023]);
        prefetch_lines(&words);
        prefetch_lines(&words[..1]);
        let empty: [u64; 0] = [];
        prefetch_lines(&empty);
    }

    #[test]
    fn thread_plan_is_shared_per_thread() {
        with_thread_plan(|plan| {
            plan.lanes(32)[0][31] = 99;
        });
        let seen = with_thread_plan(|plan| plan.lanes(32)[0][31]);
        assert_eq!(seen, 99);
    }
}
