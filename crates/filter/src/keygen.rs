//! Deterministic workload generation.
//!
//! The paper's experiments use "random 32-bit integers (uniformly distributed)
//! generated with the Mersenne Twister engine" (§6). We use a seeded
//! ChaCha-based PRNG from `rand` instead — the statistical requirements are
//! merely "uniform and reproducible" — and keep every generator seedable so
//! experiments and tests are repeatable bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Deterministic generator of key sets and probe sets.
#[derive(Debug)]
pub struct KeyGen {
    rng: StdRng,
}

impl KeyGen {
    /// Create a generator from a seed. Equal seeds produce equal workloads.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate `n` *distinct* uniformly distributed 32-bit keys.
    pub fn distinct_keys(&mut self, n: usize) -> Vec<u32> {
        assert!(
            n <= (u32::MAX as usize) / 2,
            "cannot generate {n} distinct 32-bit keys without excessive rejection"
        );
        let mut seen = HashSet::with_capacity(n * 2);
        let mut keys = Vec::with_capacity(n);
        while keys.len() < n {
            let key: u32 = self.rng.gen();
            if seen.insert(key) {
                keys.push(key);
            }
        }
        keys
    }

    /// Generate `n` uniformly distributed keys (duplicates allowed).
    pub fn keys(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.rng.gen()).collect()
    }

    /// Build a probe workload over a set of member keys: a probe set of
    /// `probe_count` keys of which a fraction `sigma` are members (drawn
    /// uniformly from `members`) and the rest are guaranteed non-members.
    pub fn probes_with_selectivity(
        &mut self,
        members: &[u32],
        probe_count: usize,
        sigma: f64,
    ) -> Vec<u32> {
        assert!(
            (0.0..=1.0).contains(&sigma),
            "selectivity must be in [0, 1]"
        );
        let member_set: HashSet<u32> = members.iter().copied().collect();
        let mut probes = Vec::with_capacity(probe_count);
        for _ in 0..probe_count {
            if !members.is_empty() && self.rng.gen::<f64>() < sigma {
                let idx = self.rng.gen_range(0..members.len());
                probes.push(members[idx]);
            } else {
                // Rejection-sample a non-member.
                loop {
                    let candidate: u32 = self.rng.gen();
                    if !member_set.contains(&candidate) {
                        probes.push(candidate);
                        break;
                    }
                }
            }
        }
        probes
    }
}

/// A complete filter workload: the build-side key set and a probe-side key
/// stream with known selectivity σ (the fraction of probes that are true
/// members — the paper's join hit rate).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Keys inserted into the filter (the paper's `n` build-side keys).
    pub build_keys: Vec<u32>,
    /// Keys probed against the filter.
    pub probe_keys: Vec<u32>,
    /// Fraction of probe keys that are true members.
    pub sigma: f64,
}

impl Workload {
    /// Generate a workload with `n` distinct build keys and `probe_count`
    /// probes of which a fraction `sigma` are members.
    #[must_use]
    pub fn generate(seed: u64, n: usize, probe_count: usize, sigma: f64) -> Self {
        let mut gen = KeyGen::new(seed);
        let build_keys = gen.distinct_keys(n);
        let probe_keys = gen.probes_with_selectivity(&build_keys, probe_count, sigma);
        Self {
            build_keys,
            probe_keys,
            sigma,
        }
    }

    /// Number of build-side keys (`n`).
    #[must_use]
    pub fn n(&self) -> usize {
        self.build_keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_are_distinct_and_deterministic() {
        let mut gen_a = KeyGen::new(42);
        let mut gen_b = KeyGen::new(42);
        let a = gen_a.distinct_keys(10_000);
        let b = gen_b.distinct_keys(10_000);
        assert_eq!(a, b);
        let unique: HashSet<u32> = a.iter().copied().collect();
        assert_eq!(unique.len(), a.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = KeyGen::new(1).distinct_keys(1000);
        let b = KeyGen::new(2).distinct_keys(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn probe_selectivity_is_respected() {
        let mut gen = KeyGen::new(7);
        let members = gen.distinct_keys(5_000);
        let member_set: HashSet<u32> = members.iter().copied().collect();
        for sigma in [0.0, 0.25, 0.5, 1.0] {
            let probes = gen.probes_with_selectivity(&members, 20_000, sigma);
            let hits = probes.iter().filter(|k| member_set.contains(k)).count();
            let observed = hits as f64 / probes.len() as f64;
            assert!(
                (observed - sigma).abs() < 0.02,
                "sigma {sigma}: observed {observed}"
            );
        }
    }

    #[test]
    fn zero_selectivity_probes_never_hit() {
        let mut gen = KeyGen::new(3);
        let members = gen.distinct_keys(1_000);
        let member_set: HashSet<u32> = members.iter().copied().collect();
        let probes = gen.probes_with_selectivity(&members, 5_000, 0.0);
        assert!(probes.iter().all(|k| !member_set.contains(k)));
    }

    #[test]
    fn workload_generation_end_to_end() {
        let w = Workload::generate(99, 4_096, 10_000, 0.3);
        assert_eq!(w.n(), 4_096);
        assert_eq!(w.probe_keys.len(), 10_000);
        assert!((w.sigma - 0.3).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn invalid_selectivity_panics() {
        let mut gen = KeyGen::new(0);
        let members = gen.distinct_keys(10);
        let _ = gen.probes_with_selectivity(&members, 10, 1.5);
    }
}
