//! Empirical false-positive-rate measurement.
//!
//! Used by the model-validation tests (`pof-bloom`, `pof-cuckoo`) and by the
//! EXPERIMENTS.md harness to cross-check the analytical formulas of
//! `pof-model` against real filter behaviour.

use crate::keygen::KeyGen;
use crate::selection::SelectionVector;
use crate::traits::Filter;
use std::collections::HashSet;

/// Result of an empirical false-positive-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FprMeasurement {
    /// Number of negative probes issued.
    pub negative_probes: usize,
    /// Number of those that (falsely) tested positive.
    pub false_positives: usize,
    /// `false_positives / negative_probes`.
    pub fpr: f64,
}

/// Measure the empirical false-positive rate of `filter` by probing
/// `probe_count` keys that are guaranteed not to be in `members`.
///
/// The measurement uses the batched lookup path, so it also exercises the SIMD
/// kernels when they are active.
#[must_use]
pub fn measured_fpr<F: Filter + ?Sized>(
    filter: &F,
    members: &[u32],
    probe_count: usize,
    seed: u64,
) -> FprMeasurement {
    let member_set: HashSet<u32> = members.iter().copied().collect();
    let mut gen = KeyGen::new(seed);
    let mut negatives = Vec::with_capacity(probe_count);
    while negatives.len() < probe_count {
        for key in gen.keys(probe_count - negatives.len()) {
            if !member_set.contains(&key) {
                negatives.push(key);
            }
        }
    }

    let mut sel = SelectionVector::with_capacity(probe_count);
    let mut false_positives = 0usize;
    for chunk in negatives.chunks(16 * 1024) {
        sel.clear();
        filter.contains_batch(chunk, &mut sel);
        false_positives += sel.len();
    }

    FprMeasurement {
        negative_probes: probe_count,
        false_positives,
        fpr: false_positives as f64 / probe_count as f64,
    }
}

/// Assert helper used across the workspace's validation tests: the measured
/// rate must lie within `rel_tol` *relative* tolerance of the model, or within
/// an absolute floor for very small rates (where sampling noise dominates).
#[must_use]
pub fn fpr_matches_model(measured: f64, modeled: f64, rel_tol: f64, abs_floor: f64) -> bool {
    if (measured - modeled).abs() <= abs_floor {
        return true;
    }
    if modeled == 0.0 {
        return measured <= abs_floor;
    }
    (measured - modeled).abs() / modeled <= rel_tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::FilterKind;

    /// A deliberately bad "filter" that reports a fixed fraction of false
    /// positives, for testing the measurement machinery itself.
    struct FixedFpr {
        members: HashSet<u32>,
        modulus: u32,
    }

    impl Filter for FixedFpr {
        fn insert(&mut self, key: u32) -> bool {
            self.members.insert(key);
            true
        }
        fn contains(&self, key: u32) -> bool {
            self.members.contains(&key) || key.is_multiple_of(self.modulus)
        }
        fn size_bits(&self) -> u64 {
            0
        }
        fn kind(&self) -> FilterKind {
            FilterKind::Bloom
        }
        fn config_label(&self) -> String {
            format!("fixed-fpr(1/{})", self.modulus)
        }
    }

    #[test]
    fn measurement_recovers_known_rate() {
        let mut filter = FixedFpr {
            members: HashSet::new(),
            modulus: 8,
        };
        let members: Vec<u32> = (0..1000u32).map(|i| i * 2 + 1).collect();
        for &k in &members {
            filter.insert(k);
        }
        let m = measured_fpr(&filter, &members, 200_000, 11);
        // Expected rate 1/8 = 0.125.
        assert!((m.fpr - 0.125).abs() < 0.005, "measured {}", m.fpr);
        assert_eq!(m.negative_probes, 200_000);
        assert_eq!(m.false_positives, (m.fpr * 200_000.0).round() as usize);
    }

    #[test]
    fn exact_filter_has_zero_fpr() {
        let mut filter = FixedFpr {
            members: HashSet::new(),
            modulus: u32::MAX,
        };
        let members: Vec<u32> = (1..500u32).collect();
        for &k in &members {
            filter.insert(k);
        }
        let m = measured_fpr(&filter, &members, 50_000, 5);
        assert!(m.fpr < 1e-4);
    }

    #[test]
    fn tolerance_helper() {
        assert!(fpr_matches_model(0.011, 0.010, 0.15, 1e-4));
        assert!(!fpr_matches_model(0.02, 0.010, 0.15, 1e-4));
        assert!(fpr_matches_model(0.00005, 0.0, 0.15, 1e-4));
        assert!(fpr_matches_model(0.0, 0.00005, 0.15, 1e-4));
    }
}
