//! Fixture-driven proof that every gate is live: for each of the four
//! passes, a seeded violation must produce a diagnostic and its clean twin
//! must not. A gate that cannot fail is no gate at all, so these tests are
//! the acceptance evidence for the analyzer itself.

use pof_analyze::{analyze, Ledger, Pass, SourceFile};

fn empty_ledger() -> Ledger {
    Ledger::parse("").expect("empty ledger parses")
}

fn diags_for(files: &[(&str, &str)], ledger: &Ledger) -> Vec<pof_analyze::Diagnostic> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();
    analyze(&parsed, ledger)
}

fn has(diags: &[pof_analyze::Diagnostic], pass: Pass) -> bool {
    diags.iter().any(|d| d.pass == pass)
}

// ---------------------------------------------------------- unsafe ledger

const UNSAFE_BAD: &str = r#"
pub fn read_lane(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}
"#;

const UNSAFE_CLEAN: &str = r#"
pub fn read_lane(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees `ptr` points at a live, aligned u32.
    unsafe { *ptr }
}
"#;

const UNSAFE_CLEAN_LEDGER: &str = r#"
[[unsafe]]
file = "crates/demo/src/lib.rs"
context = "read_lane"
count = 1
justification = "Caller contract: live, aligned pointer."
"#;

#[test]
fn unsafe_pass_flags_unregistered_and_uncommented_site() {
    let diags = diags_for(&[("crates/demo/src/lib.rs", UNSAFE_BAD)], &empty_ledger());
    assert!(
        has(&diags, Pass::UnsafeLedger),
        "seeded violation not flagged"
    );
    // Both problems are reported: no SAFETY comment and no ledger entry.
    assert!(diags.iter().any(|d| d.message.contains("SAFETY")));
    assert!(diags.iter().any(|d| d.message.contains("unregistered")));
}

#[test]
fn unsafe_pass_accepts_commented_and_registered_twin() {
    let ledger = Ledger::parse(UNSAFE_CLEAN_LEDGER).expect("ledger parses");
    let diags = diags_for(&[("crates/demo/src/lib.rs", UNSAFE_CLEAN)], &ledger);
    assert!(diags.is_empty(), "clean twin flagged: {diags:?}");
}

#[test]
fn unsafe_pass_reports_count_drift_and_stale_entries() {
    let two_sites = r#"
pub fn read_two(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees both reads are in bounds.
    unsafe { *ptr + *ptr.add(1) }
}
"#;
    // Ledger registers one token, source has... still one `unsafe` token —
    // use a second unsafe block instead.
    let two_blocks = r#"
pub fn read_two(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees the read is in bounds.
    let a = unsafe { *ptr };
    // SAFETY: caller guarantees the second read is in bounds.
    let b = unsafe { *ptr.add(1) };
    a + b
}
"#;
    let _ = two_sites;
    let ledger = Ledger::parse(
        r#"
[[unsafe]]
file = "crates/demo/src/lib.rs"
context = "read_two"
count = 1
justification = "One registered block."

[[unsafe]]
file = "crates/demo/src/gone.rs"
context = "vanished"
count = 1
justification = "The site this entry covered was deleted."
"#,
    )
    .expect("ledger parses");
    let diags = diags_for(&[("crates/demo/src/lib.rs", two_blocks)], &ledger);
    assert!(diags.iter().any(|d| d.message.contains("count drift")));
    assert!(diags.iter().any(|d| d.message.contains("stale")));
}

// -------------------------------------------------------------- atomics

const ATOMICS_BAD: &str = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub struct Stats { hits: AtomicU64 }
impl Stats {
    pub fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }
}
"#;

const ATOMICS_LEDGER: &str = r#"
[[ordering]]
file = "crates/demo/src/lib.rs"
atomic = "hits"
ordering = "Relaxed"
count = 1
why = "Statistics counter; no cross-thread edge needed."
"#;

#[test]
fn atomics_pass_flags_undeclared_ordering() {
    let diags = diags_for(&[("crates/demo/src/lib.rs", ATOMICS_BAD)], &empty_ledger());
    assert!(has(&diags, Pass::Atomics), "seeded violation not flagged");
}

#[test]
fn atomics_pass_accepts_declared_twin() {
    let ledger = Ledger::parse(ATOMICS_LEDGER).expect("ledger parses");
    let diags = diags_for(&[("crates/demo/src/lib.rs", ATOMICS_BAD)], &ledger);
    assert!(diags.is_empty(), "declared twin flagged: {diags:?}");
}

#[test]
fn atomics_pass_reports_ordering_drift() {
    // Manifest says Relaxed; the code moved to SeqCst: both the undeclared
    // new ordering and the stale old entry must surface.
    let seqcst = ATOMICS_BAD.replace("Relaxed", "SeqCst");
    let ledger = Ledger::parse(ATOMICS_LEDGER).expect("ledger parses");
    let diags = diags_for(&[("crates/demo/src/lib.rs", &seqcst)], &ledger);
    assert!(diags.iter().any(|d| d.message.contains("undeclared")));
    assert!(diags.iter().any(|d| d.message.contains("stale")));
}

#[test]
fn atomics_pass_ignores_test_code() {
    let in_tests = r#"
#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    #[test]
    fn t() {
        let x = AtomicU64::new(0);
        x.store(1, Ordering::SeqCst);
    }
}
"#;
    let diags = diags_for(&[("crates/demo/src/lib.rs", in_tests)], &empty_ledger());
    assert!(diags.is_empty(), "test-code ordering flagged: {diags:?}");
}

// ------------------------------------------------------- lock discipline

const LOCK_BAD: &str = r#"
pub fn grow(&self) {
    let mut writer = self.writer.lock().expect("poisoned");
    writer.rebuild_inline(1024, false);
}
"#;

const LOCK_CLEAN: &str = r#"
pub fn grow(&self) {
    let plan = {
        let writer = self.writer.lock().expect("poisoned");
        writer.snapshot_plan(1024)
    };
    let filter = build_shard_filter(&plan);
    self.publish(filter);
}
"#;

#[test]
fn lock_pass_flags_guard_held_across_rebuild() {
    let diags = diags_for(&[("crates/store/src/demo.rs", LOCK_BAD)], &empty_ledger());
    assert!(
        has(&diags, Pass::LockDiscipline),
        "seeded violation not flagged"
    );
}

#[test]
fn lock_pass_accepts_snapshot_then_build_off_lock() {
    let diags = diags_for(&[("crates/store/src/demo.rs", LOCK_CLEAN)], &empty_ledger());
    assert!(diags.is_empty(), "clean twin flagged: {diags:?}");
}

#[test]
fn lock_pass_only_runs_inside_store_src() {
    // The same pattern outside crates/store/src is out of scope.
    let diags = diags_for(&[("crates/bloom/src/demo.rs", LOCK_BAD)], &empty_ledger());
    assert!(!has(&diags, Pass::LockDiscipline));
}

#[test]
fn lock_pass_honors_waiver_with_reason() {
    let waived = r#"
pub fn grow(&self) {
    let mut writer = self.writer.lock().expect("poisoned");
    // pof-analyze: allow(lock-discipline): inline mode rebuilds under the writer lock by contract
    writer.rebuild_inline(1024, false);
}
"#;
    let diags = diags_for(&[("crates/store/src/demo.rs", waived)], &empty_ledger());
    assert!(diags.is_empty(), "waived call still flagged: {diags:?}");
}

// --------------------------------------------------------------- no-alloc

const ALLOC_BAD: &str = r#"
// pof-analyze: no-alloc
pub fn probe_hot(keys: &[u32]) -> usize {
    let copies = keys.to_vec();
    copies.len()
}
"#;

const ALLOC_CLEAN: &str = r#"
// pof-analyze: no-alloc
pub fn probe_hot(keys: &[u32], scratch: &mut [u32]) -> usize {
    let n = keys.len().min(scratch.len());
    scratch[..n].copy_from_slice(&keys[..n]);
    n
}
"#;

#[test]
fn no_alloc_pass_flags_allocation_in_marked_fn() {
    let diags = diags_for(&[("crates/demo/src/lib.rs", ALLOC_BAD)], &empty_ledger());
    assert!(has(&diags, Pass::NoAlloc), "seeded violation not flagged");
}

#[test]
fn no_alloc_pass_accepts_scratch_reuse_twin() {
    let diags = diags_for(&[("crates/demo/src/lib.rs", ALLOC_CLEAN)], &empty_ledger());
    assert!(diags.is_empty(), "clean twin flagged: {diags:?}");
}

#[test]
fn no_alloc_pass_permits_panic_message_allocation() {
    let cold = r#"
// pof-analyze: no-alloc
pub fn probe_hot(keys: &[u32]) -> usize {
    assert!(!keys.is_empty(), "empty batch: {}", format!("{керов:?}", керов = keys.len()));
    keys.len()
}
"#;
    // (identifier is deliberately non-ASCII to exercise the lexer, too)
    let diags = diags_for(&[("crates/demo/src/lib.rs", cold)], &empty_ledger());
    assert!(
        diags.is_empty(),
        "cold-branch allocation flagged: {diags:?}"
    );
}

// -------------------------------------------------------- waiver hygiene

#[test]
fn malformed_waivers_are_diagnosed_not_ignored() {
    let bad_waiver = r#"
pub fn grow(&self) {
    let mut writer = self.writer.lock().expect("poisoned");
    // pof-analyze: allow(lock-disciplin): typo in the pass name
    writer.rebuild_inline(1024, false);
}
"#;
    let diags = diags_for(&[("crates/store/src/demo.rs", bad_waiver)], &empty_ledger());
    // The typo'd waiver waives nothing, and is itself reported.
    assert!(has(&diags, Pass::LockDiscipline));
    assert!(has(&diags, Pass::WaiverSyntax));
}

#[test]
fn reasonless_waivers_do_not_waive() {
    let no_reason = r#"
pub fn grow(&self) {
    let mut writer = self.writer.lock().expect("poisoned");
    // pof-analyze: allow(lock-discipline):
    writer.rebuild_inline(1024, false);
}
"#;
    let diags = diags_for(&[("crates/store/src/demo.rs", no_reason)], &empty_ledger());
    assert!(has(&diags, Pass::LockDiscipline));
    assert!(has(&diags, Pass::WaiverSyntax));
}

// ----------------------------------------------------------- ledger file

#[test]
fn ledger_parser_rejects_unknown_tables_and_keys() {
    assert!(Ledger::parse("[[frobnicate]]\n").is_err());
    assert!(Ledger::parse("[[unsafe]]\nfile = \"x\"\nbogus = 1\n").is_err());
    assert!(Ledger::parse("[[ordering]]\ncount = \"not an int\"\n").is_err());
}
