//! A hand-rolled Rust lexer: just enough tokenization for the invariant
//! passes, with no dependency on `syn` (the build is offline).
//!
//! The lexer's one job is to make the passes immune to the classic grep
//! failure modes: `unsafe` inside a string literal, `Ordering::Relaxed` in a
//! doc comment, `vec![` in an example snippet. It produces a flat token
//! stream (identifiers, punctuation, literals) with line numbers, and a
//! separate per-line comment record the passes consult for `// SAFETY:`
//! comments, `// pof-analyze:` markers and waivers.
//!
//! Handled: line and (nested) block comments, cooked strings with escapes,
//! raw strings (`r"…"`, `r#"…"#`), byte strings and byte chars, char
//! literals vs lifetimes, numeric literals (including `1.5` vs the `0..10`
//! range ambiguity), and `::` as a single token so path patterns are easy to
//! match. Not handled (not needed): precise keyword classification, operator
//! clustering beyond `::`, macro expansion.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `fn`, `Ordering`, …).
    Ident,
    /// A punctuation token; `::` is one token, everything else single-char.
    Punct,
    /// A string/char/numeric literal (contents are opaque to the passes).
    Literal,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (for literals, a placeholder).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token's kind.
    pub kind: TokenKind,
}

/// One line's worth of comment text (a block comment spanning three lines
/// yields three records, so per-line lookups stay trivial).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line this comment text sits on.
    pub line: usize,
    /// The comment text for this line, without the `//`/`/*` framing.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per line (one entry per line a comment touches).
    pub comments: Vec<Comment>,
}

/// Lex `source` into tokens and comments. Never fails: unterminated
/// constructs simply end at EOF (the passes operate on what was seen).
#[must_use]
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: LexedFile,
    source: std::marker::PhantomData<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            out: LexedFile::default(),
            source: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, text: impl Into<String>, line: usize, kind: TokenKind) {
        self.out.tokens.push(Token {
            text: text.into(),
            line,
            kind,
        });
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.cooked_string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                ':' if self.peek(1) == Some(':') => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.push("::", line, TokenKind::Punct);
                }
                c => {
                    let line = self.line;
                    self.bump();
                    self.push(c.to_string(), line, TokenKind::Punct);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if c == '/' && self.peek(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
            } else if c == '\n' {
                self.out.comments.push(Comment {
                    line,
                    text: std::mem::take(&mut text),
                });
                self.bump();
                line = self.line;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    fn cooked_string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push("\"…\"", line, TokenKind::Literal);
    }

    /// `r"…"`, `r#"…"#`, … — called with `pos` on the first `#` or `"`.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: emit the ident we already consumed
            // the `r` of; the ident characters follow.
            self.push("r#", line, TokenKind::Punct);
            return;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push("r\"…\"", line, TokenKind::Literal);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push("'…'", line, TokenKind::Literal);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // `'a'` is a char literal, `'a` (no closing quote after the
                // ident run) is a lifetime.
                let mut run = 1usize;
                while matches!(self.peek(run), Some(c) if c == '_' || c.is_alphanumeric()) {
                    run += 1;
                }
                if self.peek(run) == Some('\'') {
                    for _ in 0..=run {
                        self.bump();
                    }
                    self.push("'…'", line, TokenKind::Literal);
                } else {
                    for _ in 0..run {
                        self.bump();
                    }
                    // Lifetimes carry no signal for the passes; drop them.
                }
            }
            Some(c) => {
                // `'('` and friends: a one-char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                let _ = c;
                self.push("'…'", line, TokenKind::Literal);
            }
            None => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the literal; `0..10` does not.
                self.bump();
            } else {
                break;
            }
        }
        self.push("0", line, TokenKind::Literal);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String/char-literal prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
        // `b'…'`.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "b", Some('"')) | ("r" | "br", Some('#')) => self.raw_string(),
            ("b", Some('\'')) => self.char_or_lifetime(),
            _ => self.push(text, line, TokenKind::Ident),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // unsafe in a comment
            /* Ordering::Relaxed in a block
               over two lines */
            let s = "unsafe { Ordering::SeqCst }";
            let r = r#"vec![unsafe]"#;
            let c = 'u';
            fn real() { unsafe { } }
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "unsafe").count(), 1);
        assert!(!ids.contains(&"Ordering".to_string()));
        let lexed = lex(src);
        assert!(lexed.comments.iter().any(|c| c.text.contains("unsafe")));
        assert_eq!(lexed.comments.len(), 3); // line + two block lines
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lexed = lex(src);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 1); // only 'x'
        assert!(lexed.tokens.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn float_vs_range_lexing() {
        let src = "let a = 1.5; for i in 0..10 { }";
        let lexed = lex(src);
        // `..` survives as two punct dots; 1.5 is one literal.
        let dots = lexed.tokens.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn path_separator_is_one_token() {
        let lexed = lex("Ordering::Relaxed");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Ordering", "::", "Relaxed"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nunsafe {}";
        let lexed = lex(src);
        let site = lexed.tokens.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(site.line, 4);
    }
}
