//! The `pof-analyze` CLI.
//!
//! `cargo run -p pof-analyze -- --check` walks `crates/*/src` and
//! `crates/*/tests`, loads `UNSAFE_LEDGER.toml` from the workspace root,
//! runs the four passes and exits non-zero on any diagnostic.
//! `-- --dump` prints ledger skeletons for every discovered unsafe site
//! and ordering use instead (the seeding workflow for new code).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pof_analyze::passes::{atomics, unsafe_ledger};
use pof_analyze::{analyze, Ledger, SourceFile};

fn main() -> ExitCode {
    let mut dump = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => dump = false,
            "--dump" => dump = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("pof-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = match load_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("pof-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    if dump {
        dump_skeleton(&files);
        return ExitCode::SUCCESS;
    }
    let ledger_path = root.join("UNSAFE_LEDGER.toml");
    let ledger_text = match std::fs::read_to_string(&ledger_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "pof-analyze: cannot read {}: {e} (run with --dump to generate a skeleton)",
                ledger_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let ledger = match Ledger::parse(&ledger_text) {
        Ok(ledger) => ledger,
        Err(e) => {
            eprintln!("pof-analyze: UNSAFE_LEDGER.toml: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diagnostics = analyze(&files, &ledger);
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!(
            "pof-analyze: {} file(s) clean (unsafe-ledger, atomics, lock-discipline, no-alloc)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pof-analyze: {} diagnostic(s) across {} file(s)",
            diagnostics.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

const USAGE: &str = "\
pof-analyze — workspace invariant linter

USAGE:
    cargo run -p pof-analyze -- [--check | --dump] [--root <dir>]

    --check      run the four passes against UNSAFE_LEDGER.toml (default)
    --dump       print ledger skeletons for every unsafe site / ordering use
    --root <dir> workspace root (default: walk up from the current directory)
";

fn usage(problem: &str) -> ExitCode {
    eprintln!("pof-analyze: {problem}\n{USAGE}");
    ExitCode::FAILURE
}

/// Walk up from the current directory to the first one holding both a
/// `Cargo.toml` and a `crates/` directory.
fn find_workspace_root() -> Result<PathBuf, String> {
    let start =
        std::env::current_dir().map_err(|e| format!("cannot read current directory: {e}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root (Cargo.toml + crates/) above {}",
                    start.display()
                ))
            }
        }
    }
}

/// Collect every `.rs` file under `crates/*/src` and `crates/*/tests`,
/// sorted by repo-relative path.
fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    let crates = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for krate in crates {
        let krate = krate.map_err(|e| format!("readdir: {e}"))?.path();
        for sub in ["src", "tests"] {
            collect_rs(&krate.join(sub), &mut paths);
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(&rel, &source));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // a crate without a tests/ directory is fine
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Print `[[unsafe]]` / `[[ordering]]` skeletons for everything found, so
/// seeding the ledger for new code is copy-paste plus writing the *why*.
fn dump_skeleton(files: &[SourceFile]) {
    use std::collections::BTreeMap;
    let mut unsafe_groups: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut ordering_groups: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for file in files {
        for site in unsafe_ledger::scan(file) {
            *unsafe_groups
                .entry((file.rel_path.clone(), site.context))
                .or_insert(0) += 1;
        }
        if !file.is_test_file() {
            for usage in atomics::scan(file) {
                *ordering_groups
                    .entry((file.rel_path.clone(), usage.atomic, usage.ordering))
                    .or_insert(0) += 1;
            }
        }
    }
    for ((file, context), count) in &unsafe_groups {
        println!("[[unsafe]]");
        println!("file = \"{file}\"");
        println!("context = \"{context}\"");
        println!("count = {count}");
        println!("justification = \"\"");
        println!();
    }
    for ((file, atomic, ordering), count) in &ordering_groups {
        println!("[[ordering]]");
        println!("file = \"{file}\"");
        println!("atomic = \"{atomic}\"");
        println!("ordering = \"{ordering}\"");
        println!("count = {count}");
        println!("why = \"\"");
        println!();
    }
}
