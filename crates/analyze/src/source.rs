//! A lexed source file plus the light structure the passes share: function
//! spans, `#[cfg(test)]` spans, per-line comments, waivers and markers.

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::Pass;

/// A function item discovered in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_token: usize,
    /// Token index range `(open, close)` of the body braces; `None` for
    /// bodyless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
}

/// One parsed source file, ready for the passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, with `/` separators.
    pub rel_path: String,
    /// Raw source lines (for comment/attribute adjacency checks).
    pub lines: Vec<String>,
    /// The token/comment stream.
    pub lex: LexedFile,
    /// Function items in source order.
    pub fns: Vec<FnSpan>,
    /// Line ranges (inclusive) of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex and structure `text` as the file at `rel_path`.
    #[must_use]
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let lex = lex(text);
        let lines = text.lines().map(str::to_owned).collect();
        let fns = find_fns(&lex.tokens);
        let test_spans = find_test_spans(&lex.tokens);
        Self {
            rel_path: rel_path.to_owned(),
            lines,
            lex,
            fns,
            test_spans,
        }
    }

    /// Is this file an integration-test file (under a crate's `tests/` dir)?
    #[must_use]
    pub fn is_test_file(&self) -> bool {
        self.rel_path.contains("/tests/")
    }

    /// Is `line` inside a `#[cfg(test)]` item (or is the whole file tests)?
    #[must_use]
    pub fn is_test_code(&self, line: usize) -> bool {
        self.is_test_file()
            || self
                .test_spans
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// All comment text on `line`, concatenated.
    #[must_use]
    pub fn comment_on(&self, line: usize) -> Option<String> {
        let parts: Vec<&str> = self
            .lex
            .comments
            .iter()
            .filter(|c| c.line == line)
            .map(|c| c.text.as_str())
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(" "))
        }
    }

    /// Does a `// pof-analyze: allow(<pass>): reason` waiver cover `line`?
    /// The waiver must sit on the flagged line itself or the line directly
    /// above it — deliberately narrow, so one waiver cannot blanket a file.
    #[must_use]
    pub fn waived(&self, pass: Pass, line: usize) -> bool {
        self.lex
            .comments
            .iter()
            .filter(|c| c.line == line || c.line + 1 == line)
            .any(|c| {
                parse_waiver(&c.text).is_some_and(|(p, reason)| p == pass && !reason.is_empty())
            })
    }

    /// Lines carrying a `// pof-analyze: no-alloc` marker.
    #[must_use]
    pub fn no_alloc_marker_lines(&self) -> Vec<usize> {
        self.lex
            .comments
            .iter()
            .filter(|c| directive(&c.text).is_some_and(|rest| rest.trim() == "no-alloc"))
            .map(|c| c.line)
            .collect()
    }

    /// The innermost function whose body contains token index `index`.
    #[must_use]
    pub fn enclosing_fn(&self, index: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| {
                f.body
                    .is_some_and(|(open, close)| (open..=close).contains(&index))
            })
            .min_by_key(|f| f.body.map_or(usize::MAX, |(open, close)| close - open))
    }

    /// Is `line` blank, or only comments/attributes — i.e. skippable when
    /// walking upward from a construct toward its doc/`SAFETY:` block?
    #[must_use]
    pub fn is_annotation_line(&self, line: usize) -> bool {
        let Some(text) = self.lines.get(line.saturating_sub(1)) else {
            return false;
        };
        let trimmed = text.trim();
        trimmed.is_empty()
            || trimmed.starts_with("//")
            || trimmed.starts_with("#[")
            || trimmed.starts_with("#!")
            || trimmed.starts_with("/*")
            || trimmed.starts_with('*')
            || trimmed.starts_with("*/")
            || trimmed == ")]"
    }
}

/// The directive payload of a comment, if the comment *is* a directive:
/// after stripping doc-comment framing (`/`, `!`) and whitespace, the text
/// must begin with `pof-analyze:`. Prose that merely mentions the marker
/// mid-sentence (docs, this crate's own comments) is not a directive.
fn directive(comment_text: &str) -> Option<&str> {
    comment_text
        .trim_start_matches(['/', '!', ' ', '\t'])
        .strip_prefix("pof-analyze:")
}

/// Parse `pof-analyze: allow(<pass>): reason` out of one comment's text.
/// Returns the pass and the (trimmed) reason; `None` if the text holds no
/// waiver at all. An unknown pass name maps to `None` too — the driver
/// reports malformed waivers separately via [`scan_waiver_syntax`].
#[must_use]
pub fn parse_waiver(text: &str) -> Option<(Pass, String)> {
    let rest = directive(text)?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let (name, tail) = rest.split_once(')')?;
    let pass = Pass::from_name(name.trim())?;
    let reason = tail.trim_start_matches(':').trim();
    Some((pass, reason.to_owned()))
}

/// Diagnose malformed `pof-analyze:` comments: unknown pass names, missing
/// reasons, or directives that are neither waivers nor the `no-alloc`
/// marker. A waiver that silently fails to parse would otherwise *widen*
/// the gate it meant to narrow.
#[must_use]
pub fn scan_waiver_syntax(file: &SourceFile) -> Vec<(usize, String)> {
    let mut problems = Vec::new();
    for comment in &file.lex.comments {
        let Some(rest) = directive(&comment.text) else {
            continue;
        };
        let rest = rest.trim();
        if rest == "no-alloc" {
            continue;
        }
        if let Some(tail) = rest.strip_prefix("allow(") {
            match tail.split_once(')') {
                Some((name, reason)) if Pass::from_name(name.trim()).is_none() => {
                    let _ = reason;
                    problems.push((
                        comment.line,
                        format!("waiver names unknown pass `{}`", name.trim()),
                    ));
                }
                Some((_, reason)) if reason.trim_start_matches(':').trim().is_empty() => {
                    problems.push((
                        comment.line,
                        "waiver has no reason; write `allow(<pass>): <why>`".to_owned(),
                    ));
                }
                Some(_) => {}
                None => problems.push((
                    comment.line,
                    "unterminated waiver; write `allow(<pass>): <why>`".to_owned(),
                )),
            }
        } else {
            problems.push((
                comment.line,
                format!("unrecognized pof-analyze directive `{rest}`"),
            ));
        }
    }
    problems
}

/// Discover function items: `fn name … { body }` (and bodyless `fn name …;`).
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(u32) -> u32` type position
        }
        // Scan to the body `{` (or a `;` for a bodyless declaration) at
        // paren/bracket depth 0; the signature itself cannot contain braces.
        let mut depth = 0i32;
        let mut body = None;
        for (j, tok) in tokens.iter().enumerate().skip(i + 2) {
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    body = close_brace(tokens, j).map(|close| (j, close));
                    break;
                }
                _ => {}
            }
        }
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            fn_token: i,
            body,
            start_line: tokens[i].line,
        });
    }
    fns
}

/// Token index of the `}` matching the `{` at `open`.
#[must_use]
pub fn close_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line ranges of items annotated `#[cfg(test)]` (usually `mod tests`).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Collect this attribute group and note whether it is cfg(test).
        let mut depth = 0i32;
        let mut is_cfg = false;
        let mut has_test = false;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" | "(" => depth += 1,
                ")" => depth -= 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" => is_cfg = true,
                "test" => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(is_cfg && has_test) {
            i = j + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then span the item to its `{…}` body
        // (or its `;` for `mod tests;`).
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut adepth = 0i32;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" | "(" => adepth += 1,
                    ")" | "]" => {
                        adepth -= 1;
                        if adepth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut depth = 0i32;
        let mut end_line = start_line;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    end_line = tokens[k].line;
                    break;
                }
                "{" if depth == 0 => {
                    if let Some(close) = close_brace(tokens, k) {
                        end_line = tokens[close].line;
                        k = close;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((start_line, end_line));
        i = k + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_nesting() {
        let src = "fn outer() {\n    fn inner() { body(); }\n    tail();\n}\nfn decl();";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let names: Vec<_> = file.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "decl"]);
        assert!(file.fns[2].body.is_none());
        // `body()` resolves to `inner`, `tail()` to `outer`.
        let body_idx = file
            .lex
            .tokens
            .iter()
            .position(|t| t.text == "body")
            .unwrap();
        assert_eq!(file.enclosing_fn(body_idx).unwrap().name, "inner");
        let tail_idx = file
            .lex
            .tokens
            .iter()
            .position(|t| t.text == "tail")
            .unwrap();
        assert_eq!(file.enclosing_fn(tail_idx).unwrap().name, "outer");
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!file.is_test_code(1));
        assert!(file.is_test_code(4));
        assert!(file.is_test_code(6));
    }

    #[test]
    fn waivers_are_narrow_and_typed() {
        let src = "// pof-analyze: allow(atomics): counter is advisory\nlet x = 1;\nlet y = 2;\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(file.waived(Pass::Atomics, 2));
        assert!(!file.waived(Pass::Atomics, 3));
        assert!(!file.waived(Pass::UnsafeLedger, 2));
    }

    #[test]
    fn malformed_waivers_are_reported() {
        let src = "// pof-analyze: allow(atomics)\n// pof-analyze: allow(nope): x\n// pof-analyze: frobnicate\n// pof-analyze: no-alloc\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let problems = scan_waiver_syntax(&file);
        assert_eq!(problems.len(), 3);
        assert_eq!(file.no_alloc_marker_lines(), vec![4]);
    }
}
