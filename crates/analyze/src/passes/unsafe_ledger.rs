//! Pass 1 — the unsafe ledger.
//!
//! Every `unsafe` token (block, fn, impl, trait) must (a) carry a
//! `// SAFETY:` comment (a `# Safety` doc section also counts) directly
//! above it, and (b) be registered in `UNSAFE_LEDGER.toml` under its
//! `(file, context)` with a matching count and a non-empty justification.
//! Unregistered sites, count drift (a new unsafe block slipped into an
//! already-registered function) and stale ledger entries all fail.

use std::collections::BTreeMap;

use crate::ledger::Ledger;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::{Diagnostic, Pass};

/// One discovered `unsafe` site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// The enclosing function name, or the `impl`/`trait` header for
    /// `unsafe impl`/`unsafe trait` items.
    pub context: String,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// Whether a `SAFETY:` comment (or `# Safety` doc section) covers it.
    pub has_safety: bool,
}

/// How many annotation lines above a site we search for its `SAFETY:`
/// comment. Generous enough for a doc block plus `#[inline]` /
/// `#[target_feature(...)]` attribute stacks; a comment further away than
/// this is not *about* the site.
const SAFETY_LOOKBACK_LINES: usize = 16;

/// Find every `unsafe` site in `file`.
#[must_use]
pub fn scan(file: &SourceFile) -> Vec<UnsafeSite> {
    let tokens = &file.lex.tokens;
    let mut sites = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        let context = match next {
            Some("impl" | "trait") => header_context(file, i + 1),
            Some("fn") => tokens
                .get(i + 2)
                .map_or_else(|| "<fn>".to_owned(), |t| t.text.clone()),
            _ => file
                .enclosing_fn(i)
                .map_or_else(|| "<module>".to_owned(), |f| f.name.clone()),
        };
        sites.push(UnsafeSite {
            context,
            line: tok.line,
            has_safety: has_safety_comment(file, tok.line),
        });
    }
    sites
}

/// `impl Trait for Type` / `trait Name` header text, from the token at
/// `start` to the body brace.
fn header_context(file: &SourceFile, start: usize) -> String {
    let mut parts = Vec::new();
    for tok in &file.lex.tokens[start..] {
        if tok.text == "{" || tok.text == ";" || parts.len() >= 8 {
            break;
        }
        parts.push(tok.text.clone());
    }
    parts.join(" ")
}

/// Walk upward from the site through comment/attribute/blank lines looking
/// for a `SAFETY:` marker (or rustdoc's `# Safety` section heading).
fn has_safety_comment(file: &SourceFile, site_line: usize) -> bool {
    let mentions_safety = |line: usize| {
        file.comment_on(line)
            .is_some_and(|text| text.contains("SAFETY:") || text.contains("# Safety"))
    };
    if mentions_safety(site_line) {
        return true;
    }
    let mut line = site_line.saturating_sub(1);
    let floor = site_line.saturating_sub(SAFETY_LOOKBACK_LINES);
    while line >= floor.max(1) && file.is_annotation_line(line) {
        if mentions_safety(line) {
            return true;
        }
        line -= 1;
    }
    false
}

/// Check all `files` against the ledger's `[[unsafe]]` section.
#[must_use]
pub fn check(files: &[SourceFile], ledger: &Ledger) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    // (file, context) -> (count, first line)
    let mut groups: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for file in files {
        for site in scan(file) {
            if !site.has_safety && !file.waived(Pass::UnsafeLedger, site.line) {
                diagnostics.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: site.line,
                    pass: Pass::UnsafeLedger,
                    message: format!(
                        "unsafe site in `{}` has no `// SAFETY:` comment",
                        site.context
                    ),
                });
            }
            let entry = groups
                .entry((file.rel_path.clone(), site.context.clone()))
                .or_insert((0, site.line));
            entry.0 += 1;
        }
    }
    for ((file, context), (count, line)) in &groups {
        match ledger
            .unsafes
            .iter()
            .find(|e| &e.file == file && &e.context == context)
        {
            None => diagnostics.push(Diagnostic {
                file: file.clone(),
                line: *line,
                pass: Pass::UnsafeLedger,
                message: format!(
                    "unregistered unsafe site(s) in `{context}` ({count} token(s)); \
                     add an [[unsafe]] entry to UNSAFE_LEDGER.toml"
                ),
            }),
            Some(entry) if entry.count != *count => diagnostics.push(Diagnostic {
                file: file.clone(),
                line: *line,
                pass: Pass::UnsafeLedger,
                message: format!(
                    "unsafe count drift in `{context}`: ledger says {}, found {count}; \
                     re-justify and update the entry",
                    entry.count
                ),
            }),
            Some(entry) if entry.justification.trim().is_empty() => diagnostics.push(Diagnostic {
                file: "UNSAFE_LEDGER.toml".to_owned(),
                line: entry.line,
                pass: Pass::UnsafeLedger,
                message: format!("[[unsafe]] entry for `{file}` `{context}` has no justification"),
            }),
            Some(_) => {}
        }
    }
    for entry in &ledger.unsafes {
        if !groups.contains_key(&(entry.file.clone(), entry.context.clone())) {
            diagnostics.push(Diagnostic {
                file: "UNSAFE_LEDGER.toml".to_owned(),
                line: entry.line,
                pass: Pass::UnsafeLedger,
                message: format!(
                    "stale [[unsafe]] entry: no unsafe site in `{}` `{}` any more",
                    entry.file, entry.context
                ),
            });
        }
    }
    diagnostics
}
