//! Pass 3 — the lock-discipline lint.
//!
//! The store's contract is *snapshot under a brief lock, build off-lock,
//! publish with one `Arc` swap*: a writer that holds a `Mutex`/`RwLock`
//! guard across a filter (re)build stalls every other writer for the whole
//! O(shard) construction. This pass enforces that structurally inside
//! `crates/store/src`: any function where a guard binding is still live
//! when a rebuild/build/peel-family function is called gets flagged.
//!
//! Guard bindings are recognized lexically: `let [mut] name = …` whose
//! initializer is a lock acquisition chain — ending in `.lock()`,
//! `.read()`, `.write()` or a `…guard()` helper, optionally followed by
//! `.unwrap()` / `.expect("…")`. The guard is considered live from its
//! binding to the end of the enclosing block, or to an explicit
//! `drop(name)`. Intentional inline builds (the synchronous
//! `RebuildMode::Inline` fallback) carry a
//! `// pof-analyze: allow(lock-discipline): …` waiver at the call site.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::{Diagnostic, Pass};

/// Does `name` belong to the rebuild/build/peel family the off-lock
/// contract is about?
#[must_use]
pub fn is_build_family(name: &str) -> bool {
    name.contains("rebuild")
        || name.contains("peel")
        || name == "build"
        || name.starts_with("build_")
}

/// Is the call at token `index` the *definition* (`fn rebuild…(`) rather
/// than a use?
fn is_definition(tokens: &[Token], index: usize) -> bool {
    index > 0 && tokens[index - 1].text == "fn"
}

/// A live guard: binding name plus the brace depth it was bound at.
struct LiveGuard {
    name: String,
    line: usize,
    depth: i32,
}

/// Check one file (the driver only feeds `crates/store/src` files here).
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let tokens = &file.lex.tokens;
    let mut diagnostics = Vec::new();
    for f in &file.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        if file.is_test_code(f.start_line) {
            continue;
        }
        let mut guards: Vec<LiveGuard> = Vec::new();
        let mut depth = 0i32;
        let mut i = open;
        while i <= close {
            let tok = &tokens[i];
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                "let" => {
                    if let Some((name, line, end)) = guard_binding(tokens, i, close) {
                        guards.push(LiveGuard { name, line, depth });
                        i = end;
                        continue;
                    }
                }
                "drop" => {
                    // `drop(name)` releases the guard early.
                    if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
                        if let Some(arg) = tokens.get(i + 2) {
                            guards.retain(|g| g.name != arg.text);
                        }
                    }
                }
                _ => {
                    if tok.kind == TokenKind::Ident
                        && is_build_family(&tok.text)
                        && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                        && !is_definition(tokens, i)
                        && !guards.is_empty()
                        && !file.waived(Pass::LockDiscipline, tok.line)
                    {
                        let guard = guards.last().expect("non-empty");
                        diagnostics.push(Diagnostic {
                            file: file.rel_path.clone(),
                            line: tok.line,
                            pass: Pass::LockDiscipline,
                            message: format!(
                                "`{}` called while guard `{}` (acquired line {}) is live in \
                                 `{}`; snapshot under a brief lock and build off-lock, or waive \
                                 an intentional inline build with \
                                 `// pof-analyze: allow(lock-discipline): <why>`",
                                tok.text, guard.name, guard.line, f.name
                            ),
                        });
                    }
                }
            }
            i += 1;
        }
    }
    diagnostics
}

/// If the `let` at token `start` binds a lock guard, return
/// `(name, line, index of the terminating ';')`.
fn guard_binding(tokens: &[Token], start: usize, limit: usize) -> Option<(String, usize, usize)> {
    let mut i = start + 1;
    if tokens.get(i).map(|t| t.text.as_str()) == Some("mut") {
        i += 1;
    }
    let name_tok = tokens.get(i)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // destructuring patterns never bind a bare guard
    }
    // Skip an optional `: Type` ascription to the `=`.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j <= limit {
        match tokens[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => break,
            ";" if depth == 0 => return None, // `let name;`
            _ => {}
        }
        j += 1;
    }
    // Collect the initializer up to the statement's `;`.
    let init_start = j + 1;
    let mut k = init_start;
    let mut depth = 0i32;
    while k <= limit {
        match tokens[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if is_lock_chain(&tokens[init_start..k]) {
        Some((name_tok.text.clone(), name_tok.line, k))
    } else {
        None
    }
}

/// Does an initializer token sequence end in a lock acquisition? The chain
/// may close with `.unwrap()` / `.expect("…")`; anything else after the
/// acquisition (`.lock().…().pop_front()`) means the binding holds a
/// borrowed result, not the guard itself.
fn is_lock_chain(init: &[Token]) -> bool {
    let mut end = init.len();
    loop {
        // Strip one trailing `.method(args)` group and examine the method.
        if end == 0 || init[end - 1].text != ")" {
            return false;
        }
        let mut depth = 0i32;
        let mut open = None;
        for idx in (0..end).rev() {
            match init[idx].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(idx);
                        break;
                    }
                }
                _ => {}
            }
        }
        let open = match open {
            Some(open) if open >= 2 => open,
            _ => return false,
        };
        let method = &init[open - 1];
        if method.kind != TokenKind::Ident || init[open - 2].text != "." {
            return false;
        }
        match method.text.as_str() {
            "unwrap" | "expect" => end = open - 2, // keep stripping
            "lock" | "read" | "write" => return true,
            name if name.ends_with("guard") => return true,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(body: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/store/src/x.rs", body))
    }

    #[test]
    fn guard_across_build_is_flagged_and_drop_releases() {
        let bad = "fn f(&self) { let mut w = self.writer.lock().expect(\"p\"); w.rebuild_inline(64, true); }";
        assert_eq!(diags(bad).len(), 1);
        let dropped = "fn f(&self) { let w = self.writer.lock().unwrap(); drop(w); rebuild(64); }";
        assert!(diags(dropped).is_empty());
    }

    #[test]
    fn non_guard_bindings_and_off_lock_builds_pass() {
        // `.lock().…().pop_front()` binds the popped value, not the guard.
        let popped =
            "fn f(&self) { let step = queue.lock().unwrap().pop_front(); shard.begin_rebuild(step); }";
        assert!(diags(popped).is_empty());
        let off_lock = "fn f(&self) { let plan = snapshot(); plan.rebuild(); }";
        assert!(diags(off_lock).is_empty());
    }

    #[test]
    fn block_scope_ends_guard_liveness() {
        let scoped =
            "fn f(&self) { { let w = self.writer.lock().unwrap(); snapshot(&w); } rebuild(64); }";
        assert!(diags(scoped).is_empty());
    }

    #[test]
    fn waiver_at_the_call_site_is_honored() {
        let waived = "fn f(&self) {\n    let mut w = self.writer.lock().unwrap();\n    // pof-analyze: allow(lock-discipline): inline mode rebuilds under the writer lock by contract\n    w.rebuild_inline(64, true);\n}";
        assert!(diags(waived).is_empty());
    }
}
