//! Pass 2 — the atomics-ordering audit.
//!
//! Every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` use in
//! non-test code must match an `[[ordering]]` manifest entry naming the
//! atomic it is applied to and why that ordering suffices. A new use, a
//! changed ordering, or a use on a new atomic fails until it is justified;
//! manifest entries whose uses disappeared fail as stale.

use std::collections::BTreeMap;

use crate::ledger::Ledger;
use crate::lexer::TokenKind;
use crate::passes::atomic_receiver;
use crate::source::SourceFile;
use crate::{Diagnostic, Pass};

/// The atomic memory orderings (deliberately disjoint from
/// `cmp::Ordering`'s `Less`/`Equal`/`Greater`, so no path disambiguation is
/// needed).
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One discovered ordering use.
#[derive(Debug, Clone)]
pub struct OrderingUse {
    /// The atomic the ordering is applied to (receiver identifier).
    pub atomic: String,
    /// The ordering name.
    pub ordering: String,
    /// 1-based line of the use.
    pub line: usize,
}

/// Find every atomic-ordering use in `file`'s non-test code.
#[must_use]
pub fn scan(file: &SourceFile) -> Vec<OrderingUse> {
    let tokens = &file.lex.tokens;
    let mut uses = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "Ordering" {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("::") {
            continue;
        }
        let Some(variant) = tokens.get(i + 2) else {
            continue;
        };
        if !ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        if file.is_test_code(tokens[i].line) {
            continue;
        }
        uses.push(OrderingUse {
            atomic: atomic_receiver(tokens, i),
            ordering: variant.text.clone(),
            line: tokens[i].line,
        });
    }
    uses
}

/// Check all `files` against the ledger's `[[ordering]]` section.
/// Integration-test files are out of scope (orderings in tests exercise,
/// rather than implement, the concurrency contract).
#[must_use]
pub fn check(files: &[SourceFile], ledger: &Ledger) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    // (file, atomic, ordering) -> (count, first line)
    let mut groups: BTreeMap<(String, String, String), (usize, usize)> = BTreeMap::new();
    for file in files.iter().filter(|f| !f.is_test_file()) {
        for usage in scan(file) {
            if file.waived(Pass::Atomics, usage.line) {
                continue;
            }
            let entry = groups
                .entry((file.rel_path.clone(), usage.atomic, usage.ordering))
                .or_insert((0, usage.line));
            entry.0 += 1;
        }
    }
    for ((file, atomic, ordering), (count, line)) in &groups {
        match ledger
            .orderings
            .iter()
            .find(|e| &e.file == file && &e.atomic == atomic && &e.ordering == ordering)
        {
            None => diagnostics.push(Diagnostic {
                file: file.clone(),
                line: *line,
                pass: Pass::Atomics,
                message: format!(
                    "undeclared `Ordering::{ordering}` on `{atomic}` ({count} use(s)); \
                     add an [[ordering]] entry to UNSAFE_LEDGER.toml saying why it suffices"
                ),
            }),
            Some(entry) if entry.count != *count => diagnostics.push(Diagnostic {
                file: file.clone(),
                line: *line,
                pass: Pass::Atomics,
                message: format!(
                    "ordering count drift for `{atomic}` / `{ordering}`: manifest says {}, \
                     found {count}; re-justify and update the entry",
                    entry.count
                ),
            }),
            Some(entry) if entry.why.trim().is_empty() => diagnostics.push(Diagnostic {
                file: "UNSAFE_LEDGER.toml".to_owned(),
                line: entry.line,
                pass: Pass::Atomics,
                message: format!(
                    "[[ordering]] entry for `{file}` `{atomic}` `{ordering}` has no `why`"
                ),
            }),
            Some(_) => {}
        }
    }
    for entry in &ledger.orderings {
        let key = (
            entry.file.clone(),
            entry.atomic.clone(),
            entry.ordering.clone(),
        );
        if !groups.contains_key(&key) {
            diagnostics.push(Diagnostic {
                file: "UNSAFE_LEDGER.toml".to_owned(),
                line: entry.line,
                pass: Pass::Atomics,
                message: format!(
                    "stale [[ordering]] entry: no `Ordering::{}` use on `{}` in `{}` any more",
                    entry.ordering, entry.atomic, entry.file
                ),
            });
        }
    }
    diagnostics
}
