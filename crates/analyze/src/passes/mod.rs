//! The four invariant passes. Each pass takes parsed
//! [`SourceFile`](crate::SourceFile)s (plus the ledger where relevant) and
//! returns [`Diagnostic`](crate::Diagnostic)s; the driver in `lib.rs`
//! decides which files each pass sees.

pub mod atomics;
pub mod lock_discipline;
pub mod no_alloc;
pub mod unsafe_ledger;

use crate::lexer::{Token, TokenKind};

/// Scan backward from `index` for the open parenthesis of the innermost
/// enclosing call, returning the token index of that `(`, or `None` when
/// `index` is not inside any parenthesized group (stopping at `{`/`[`
/// boundaries and at statement separators).
#[must_use]
pub(crate) fn enclosing_open_paren(tokens: &[Token], index: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..index).rev() {
        match tokens[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" => {
                if depth == 0 {
                    return Some(j);
                }
                depth -= 1;
            }
            "[" | "{" => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// For an `Ordering::X` use at token `index` (the `Ordering` ident), name
/// the atomic it applies to: the receiver identifier of the enclosing
/// method call (`self.inserts.fetch_add(…)` → `inserts`), or the callee
/// itself for free functions (`fence(Ordering::SeqCst)` → `fence`).
/// Falls back to `"<static>"` when no enclosing call exists (const tables,
/// match arms).
#[must_use]
pub(crate) fn atomic_receiver(tokens: &[Token], index: usize) -> String {
    let mut at = index;
    // Walk outward through enclosing calls until one is a recognizable
    // method/function call; `(Ordering::Relaxed)` grouping parens have no
    // callee ident before them and we keep walking.
    while let Some(open) = enclosing_open_paren(tokens, at) {
        if open == 0 {
            break;
        }
        let callee = &tokens[open - 1];
        if callee.kind != TokenKind::Ident {
            at = open;
            continue;
        }
        // Method call: `receiver.method(…)` — name the receiver.
        if open >= 3 && tokens[open - 2].text == "." && tokens[open - 3].kind == TokenKind::Ident {
            return tokens[open - 3].text.clone();
        }
        // `path::func(…)` or bare `func(…)` — name the callee.
        return callee.text.clone();
    }
    "<static>".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn receiver_of(src: &str) -> String {
        let tokens = lex(src).tokens;
        let idx = tokens.iter().position(|t| t.text == "Ordering").unwrap();
        atomic_receiver(&tokens, idx)
    }

    #[test]
    fn receiver_extraction_handles_real_shapes() {
        assert_eq!(
            receiver_of("self.inserts.fetch_add(n as u64, Ordering::Relaxed);"),
            "inserts"
        );
        assert_eq!(
            receiver_of("self.stall.fetch_max(t.elapsed().as_nanos() as u64, Ordering::Relaxed);"),
            "stall"
        );
        assert_eq!(
            receiver_of("x: level.compacted_in.load(Ordering::Relaxed),"),
            "compacted_in"
        );
        assert_eq!(receiver_of("fence(Ordering::SeqCst);"), "fence");
        assert_eq!(
            receiver_of("const X: Ordering = Ordering::SeqCst;"),
            "<static>"
        );
    }
}
