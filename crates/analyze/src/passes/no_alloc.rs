//! Pass 4 — the hot-path allocation lint.
//!
//! Functions annotated with a `// pof-analyze: no-alloc` marker are the
//! store's steady-state read kernels (`contains_batch_with`, the staged
//! probe pipelines, the `ProbeScratch`/`ProbePlan` helpers): the
//! allocation-counting test proves them allocation-free *dynamically* on
//! one path; this pass keeps them that way *lexically* on every path. A
//! marked function must not contain `Vec::new`, `vec![`, `.to_vec()`,
//! `.collect::<Vec…>()`, `Box::new`, `String::…`, `.to_string()` or
//! `format!` — except inside `panic!`/`assert!`-style cold branches,
//! `#[cold]` items, or under an explicit waiver.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::{Diagnostic, Pass};

/// Macros/methods whose argument position is a cold or failure branch:
/// allocating while building a panic message is fine.
const COLD_CALLEES: [&str; 10] = [
    "panic",
    "unreachable",
    "todo",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "expect",
];

/// Describe the banned construct at token `index`, if any.
fn banned_at(tokens: &[Token], index: usize) -> Option<&'static str> {
    let text = tokens[index].text.as_str();
    let next = |k: usize| tokens.get(index + k).map(|t| t.text.as_str());
    match text {
        "Vec" if next(1) == Some("::") && next(2) == Some("new") => Some("Vec::new"),
        "Vec" if next(1) == Some("::") && next(2) == Some("with_capacity") => {
            Some("Vec::with_capacity")
        }
        "vec" if next(1) == Some("!") => Some("vec![…]"),
        "to_vec" if next(1) == Some("(") => Some(".to_vec()"),
        "to_string" if next(1) == Some("(") => Some(".to_string()"),
        "collect" if next(1) == Some("::") && next(2) == Some("<") && next(3) == Some("Vec") => {
            Some("collect::<Vec…>")
        }
        "Box" if next(1) == Some("::") && next(2) == Some("new") => Some("Box::new"),
        "String" if next(1) == Some("::") => Some("String::…"),
        "format" if next(1) == Some("!") => Some("format!"),
        _ => None,
    }
}

/// Is token `index` inside the argument list of a cold/failure callee
/// (scanning outward through enclosing parens within the function body)?
fn in_cold_branch(tokens: &[Token], body_open: usize, index: usize) -> bool {
    let mut at = index;
    while let Some(open) =
        crate::passes::enclosing_open_paren(&tokens[body_open..=index], at - body_open)
            .map(|rel| rel + body_open)
    {
        // The callee sits before the `(`, optionally with a `!` between.
        let mut callee = open.checked_sub(1);
        if callee.is_some_and(|c| tokens[c].text == "!") {
            callee = callee.and_then(|c| c.checked_sub(1));
        }
        if let Some(c) = callee {
            if tokens[c].kind == TokenKind::Ident && COLD_CALLEES.contains(&tokens[c].text.as_str())
            {
                return true;
            }
        }
        if open == body_open || open == at {
            break;
        }
        at = open;
    }
    false
}

/// Does an (attribute-adjacent) `#[cold]` annotate the item at `fn_token`?
fn is_cold_fn(file: &SourceFile, fn_line: usize) -> bool {
    let mut line = fn_line.saturating_sub(1);
    while line >= 1 && file.is_annotation_line(line) {
        if file
            .lines
            .get(line - 1)
            .is_some_and(|l| l.contains("#[cold]"))
        {
            return true;
        }
        line -= 1;
    }
    false
}

/// Check one file: resolve each `no-alloc` marker to the next function and
/// lint that function's body.
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let tokens = &file.lex.tokens;
    let mut diagnostics = Vec::new();
    for marker_line in file.no_alloc_marker_lines() {
        // The marked function: first fn starting after the marker with only
        // annotation lines (docs, attributes) in between.
        let target = file
            .fns
            .iter()
            .filter(|f| f.start_line > marker_line)
            .min_by_key(|f| f.start_line)
            .filter(|f| (marker_line + 1..f.start_line).all(|line| file.is_annotation_line(line)));
        let Some(target) = target else {
            diagnostics.push(Diagnostic {
                file: file.rel_path.clone(),
                line: marker_line,
                pass: Pass::NoAlloc,
                message: "dangling `pof-analyze: no-alloc` marker: no function follows it"
                    .to_owned(),
            });
            continue;
        };
        let Some((open, close)) = target.body else {
            continue;
        };
        for i in open..=close {
            let Some(what) = banned_at(tokens, i) else {
                continue;
            };
            let line = tokens[i].line;
            if file.waived(Pass::NoAlloc, line)
                || in_cold_branch(tokens, open, i)
                || enclosing_cold_item(file, target.fn_token, i)
            {
                continue;
            }
            diagnostics.push(Diagnostic {
                file: file.rel_path.clone(),
                line,
                pass: Pass::NoAlloc,
                message: format!(
                    "`{what}` in no-alloc fn `{}`; hot read paths must reuse scratch buffers \
                     (move the allocation out, or waive a cold branch with \
                     `// pof-analyze: allow(no-alloc): <why>`)",
                    target.name
                ),
            });
        }
    }
    diagnostics
}

/// Is token `index` inside a nested `#[cold]` function of the marked fn?
fn enclosing_cold_item(file: &SourceFile, marked_fn_token: usize, index: usize) -> bool {
    file.enclosing_fn(index).is_some_and(|inner| {
        inner.fn_token != marked_fn_token && is_cold_fn(file, inner.start_line)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/store/src/x.rs", src))
    }

    #[test]
    fn allocation_in_marked_fn_is_flagged() {
        let bad = "// pof-analyze: no-alloc\nfn hot() { let v = Vec::new(); use_it(v); }";
        assert_eq!(diags(bad).len(), 1);
        let clean = "// pof-analyze: no-alloc\nfn hot(buf: &mut Vec<u32>) { buf.clear(); buf.resize(8, 0); }";
        assert!(diags(clean).is_empty());
    }

    #[test]
    fn unmarked_fns_are_not_linted() {
        let src = "fn cold_setup() { let v = vec![1, 2, 3]; use_it(v); }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn panic_branches_are_cold() {
        let src = "// pof-analyze: no-alloc\nfn hot(n: usize) { assert!(n < 8, \"bad n: {}\", format!(\"{n}\")); work(n); }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn dangling_marker_is_reported() {
        let src = "// pof-analyze: no-alloc\nconst X: u32 = 3;";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("dangling"));
    }
}
