//! The committed invariant ledger (`UNSAFE_LEDGER.toml`): every `unsafe`
//! site and every atomic-ordering choice in the workspace, with its
//! justification.
//!
//! Parsed with a deliberately minimal hand-rolled reader (the build is
//! offline — no `toml` crate): `[[unsafe]]` / `[[ordering]]` array-of-table
//! headers followed by `key = "string"` or `key = integer` lines, `#`
//! comments allowed. That subset is all the ledger format uses.

/// One registered `unsafe` context: `count` unsafe tokens inside `context`
/// (a function name, or `impl Trait for Type`) in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeEntry {
    /// Repo-relative path of the file holding the site(s).
    pub file: String,
    /// The enclosing function (or `impl …` header) the sites live in.
    pub context: String,
    /// Number of `unsafe` tokens in that context.
    pub count: usize,
    /// Why the unsafety is sound — required, non-empty.
    pub justification: String,
    /// Ledger line the entry starts on (for diagnostics).
    pub line: usize,
}

/// One registered atomic-ordering choice: `count` uses of
/// `Ordering::<ordering>` on atomic `atomic` in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingEntry {
    /// Repo-relative path of the file holding the use(s).
    pub file: String,
    /// The atomic the ordering is applied to (receiver identifier).
    pub atomic: String,
    /// The ordering name (`Relaxed`, `Acquire`, …).
    pub ordering: String,
    /// Number of uses of that (file, atomic, ordering) triple.
    pub count: usize,
    /// Why this ordering suffices — required, non-empty.
    pub why: String,
    /// Ledger line the entry starts on (for diagnostics).
    pub line: usize,
}

/// The parsed ledger.
#[derive(Debug, Default)]
pub struct Ledger {
    /// `[[unsafe]]` entries.
    pub unsafes: Vec<UnsafeEntry>,
    /// `[[ordering]]` entries.
    pub orderings: Vec<OrderingEntry>,
}

impl Ledger {
    /// Parse the ledger text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        enum Section {
            None,
            Unsafe,
            Ordering,
        }
        let mut ledger = Ledger::default();
        let mut section = Section::None;
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[unsafe]]" {
                ledger.unsafes.push(UnsafeEntry {
                    file: String::new(),
                    context: String::new(),
                    count: 1,
                    justification: String::new(),
                    line: line_no,
                });
                section = Section::Unsafe;
                continue;
            }
            if line == "[[ordering]]" {
                ledger.orderings.push(OrderingEntry {
                    file: String::new(),
                    atomic: String::new(),
                    ordering: String::new(),
                    count: 1,
                    why: String::new(),
                    line: line_no,
                });
                section = Section::Ordering;
                continue;
            }
            if line.starts_with("[[") {
                return Err(format!("line {line_no}: unknown table `{line}`"));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {line_no}: expected `key = value`"));
            };
            let key = key.trim();
            let value = parse_value(value.trim())
                .ok_or_else(|| format!("line {line_no}: bad value for `{key}`"))?;
            match section {
                Section::None => {
                    return Err(format!(
                        "line {line_no}: `{key}` outside [[unsafe]]/[[ordering]]"
                    ))
                }
                Section::Unsafe => {
                    let entry = ledger.unsafes.last_mut().expect("section implies entry");
                    match (key, value) {
                        ("file", Value::Str(s)) => entry.file = s,
                        ("context", Value::Str(s)) => entry.context = s,
                        ("count", Value::Int(n)) => entry.count = n,
                        ("justification", Value::Str(s)) => entry.justification = s,
                        _ => {
                            return Err(format!(
                                "line {line_no}: unknown or mistyped [[unsafe]] key `{key}`"
                            ))
                        }
                    }
                }
                Section::Ordering => {
                    let entry = ledger.orderings.last_mut().expect("section implies entry");
                    match (key, value) {
                        ("file", Value::Str(s)) => entry.file = s,
                        ("atomic", Value::Str(s)) => entry.atomic = s,
                        ("ordering", Value::Str(s)) => entry.ordering = s,
                        ("count", Value::Int(n)) => entry.count = n,
                        ("why", Value::Str(s)) => entry.why = s,
                        _ => {
                            return Err(format!(
                                "line {line_no}: unknown or mistyped [[ordering]] key `{key}`"
                            ))
                        }
                    }
                }
            }
        }
        Ok(ledger)
    }
}

enum Value {
    Str(String),
    Int(usize),
}

/// Parse a `"string"` (with `\"`/`\\` escapes, trailing `# comment` allowed)
/// or a bare integer.
fn parse_value(text: &str) -> Option<Value> {
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next()? {
                '\\' => out.push(chars.next()?),
                '"' => break,
                c => out.push(c),
            }
        }
        let tail = chars.as_str().trim();
        if tail.is_empty() || tail.starts_with('#') {
            return Some(Value::Str(out));
        }
        return None;
    }
    let digits = text.split('#').next()?.trim();
    digits.parse::<usize>().ok().map(Value::Int)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_sections() {
        let text = r##"
# header comment
[[unsafe]]
file = "crates/bloom/src/simd.rs"
context = "dispatch"
count = 2   # two kernels
justification = "AVX2 checked at dispatch"

[[ordering]]
file = "crates/store/src/shard.rs"
atomic = "max_writer_stall_ns"
ordering = "Relaxed"
count = 2
why = "monotonic max, no ordering needed"
"##;
        let ledger = Ledger::parse(text).unwrap();
        assert_eq!(ledger.unsafes.len(), 1);
        assert_eq!(ledger.unsafes[0].count, 2);
        assert_eq!(ledger.unsafes[0].context, "dispatch");
        assert_eq!(ledger.orderings.len(), 1);
        assert_eq!(ledger.orderings[0].atomic, "max_writer_stall_ns");
    }

    #[test]
    fn rejects_stray_keys_and_bad_values() {
        assert!(Ledger::parse("file = \"x\"").is_err());
        assert!(Ledger::parse("[[unsafe]]\ncount = \"two\"").is_err());
        assert!(Ledger::parse("[[wat]]").is_err());
        assert!(Ledger::parse("[[unsafe]]\nfile = \"a\" trailing").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let ledger = Ledger::parse("[[unsafe]]\njustification = \"says \\\"hi\\\"\"").unwrap();
        assert_eq!(ledger.unsafes[0].justification, "says \"hi\"");
    }
}
