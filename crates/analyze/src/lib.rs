//! `pof-analyze` — the workspace invariant linter.
//!
//! The store's correctness story rests on invariants the test suite can
//! only witness dynamically: off-lock rebuilds published with a single
//! `Arc` swap, wait-free snapshot reads, allocation-free steady-state
//! probes, and atomic orderings that are each *individually* argued
//! correct. This crate checks those invariants structurally, on every
//! build, with four passes over `crates/*/src` (and `crates/*/tests` for
//! the unsafe ledger):
//!
//! 1. **unsafe ledger** ([`passes::unsafe_ledger`]) — every `unsafe` site
//!    carries a `// SAFETY:` comment and is registered (with a
//!    justification) in `UNSAFE_LEDGER.toml`; count drift and stale
//!    entries fail.
//! 2. **atomics audit** ([`passes::atomics`]) — every
//!    `Ordering::{Relaxed,…,SeqCst}` use in non-test code matches an
//!    `[[ordering]]` manifest entry naming the atomic and why that
//!    ordering suffices.
//! 3. **lock discipline** ([`passes::lock_discipline`]) — inside
//!    `crates/store/src`, no `Mutex`/`RwLock` guard may be live across a
//!    rebuild/build/peel-family call (the snapshot-under-brief-lock /
//!    build-off-lock contract).
//! 4. **hot-path allocations** ([`passes::no_alloc`]) — functions marked
//!    `// pof-analyze: no-alloc` contain no lexical allocation outside
//!    cold/failure branches.
//!
//! Everything is hand-rolled (lexer, light parser, TOML-subset reader):
//! the build is offline, so no `syn`/`toml`. The tool is a *lexical*
//! analyzer by design — it reads token streams, not types — which keeps it
//! fast and dependency-free at the price of narrow, documented heuristics;
//! escape hatches are explicit per-site waivers
//! (`// pof-analyze: allow(<pass>): <why>`), never silence.
//!
//! Run as `cargo run -p pof-analyze -- --check` (CI's `analyze` lane and
//! `scripts/gates.sh` both do), or `-- --dump` to print ledger skeletons
//! for unregistered sites.

pub mod ledger;
pub mod lexer;
pub mod passes;
pub mod source;

pub use ledger::Ledger;
pub use source::SourceFile;

/// The four analysis passes (plus the waiver-syntax check reported under
/// the pass a malformed waiver belongs to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Pass 1: the unsafe ledger.
    UnsafeLedger,
    /// Pass 2: the atomics-ordering audit.
    Atomics,
    /// Pass 3: the lock-discipline lint.
    LockDiscipline,
    /// Pass 4: the hot-path allocation lint.
    NoAlloc,
    /// Malformed `pof-analyze:` directives (not waivable).
    WaiverSyntax,
}

impl Pass {
    /// The name used in waivers and diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::UnsafeLedger => "unsafe-ledger",
            Self::Atomics => "atomics",
            Self::LockDiscipline => "lock-discipline",
            Self::NoAlloc => "no-alloc",
            Self::WaiverSyntax => "waiver-syntax",
        }
    }

    /// Parse a waiver's pass name. `WaiverSyntax` is deliberately not
    /// nameable: a malformed waiver cannot waive itself.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "unsafe-ledger" => Some(Self::UnsafeLedger),
            "atomics" => Some(Self::Atomics),
            "lock-discipline" => Some(Self::LockDiscipline),
            "no-alloc" => Some(Self::NoAlloc),
            _ => None,
        }
    }
}

/// One finding: file, line, pass, message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Repo-relative path (or `UNSAFE_LEDGER.toml` for ledger problems).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which pass found it.
    pub pass: Pass,
    /// What is wrong and how to fix (or narrowly waive) it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.pass.name(),
            self.message
        )
    }
}

/// Run every pass over `files` against `ledger`, returning diagnostics
/// sorted by `(file, line)`. Scoping mirrors the driver:
/// the unsafe pass sees all files; atomics and no-alloc skip
/// integration-test files; lock discipline runs only on
/// `crates/store/src`.
#[must_use]
pub fn analyze(files: &[SourceFile], ledger: &Ledger) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    diagnostics.extend(passes::unsafe_ledger::check(files, ledger));
    diagnostics.extend(passes::atomics::check(files, ledger));
    for file in files.iter().filter(|f| !f.is_test_file()) {
        diagnostics.extend(passes::no_alloc::check(file));
        if file.rel_path.starts_with("crates/store/src") {
            diagnostics.extend(passes::lock_discipline::check(file));
        }
    }
    for file in files {
        for (line, problem) in source::scan_waiver_syntax(file) {
            diagnostics.push(Diagnostic {
                file: file.rel_path.clone(),
                line,
                pass: Pass::WaiverSyntax,
                message: problem,
            });
        }
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diagnostics
}
