//! The performance-optimal filtering overhead model (§2 of the paper).
//!
//! The per-tuple work with a filter installed is
//!
//! ```text
//! t_w'(F) = (1 − σ')·t_l⁻(F) + σ'·(t_l⁺(F) + t_w)      with σ' = σ + f(F)
//! ```
//!
//! For all filters studied here except the classic Bloom filter the lookup
//! cost is symmetric (`t_l⁺ = t_l⁻ = t_l`), so the performance-optimal filter
//! is simply the one minimising the *overhead*
//!
//! ```text
//! ρ(F) = t_l(F) + f(F)·t_w                              (Eq. 1)
//! ```
//!
//! Filtering is beneficial at all only when `ρ(F_opt) < (1 − σ)·t_w`.

/// Cost/benefit figures of one filter configuration at one operating point,
/// all in the same time unit (CPU cycles throughout the harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overhead {
    /// Filter lookup cost `t_l`.
    pub lookup_cost: f64,
    /// False-positive rate `f`.
    pub fpr: f64,
    /// Work `t_w` saved for each tuple the filter rejects.
    pub work_saved: f64,
}

impl Overhead {
    /// The overhead `ρ(F) = t_l + f·t_w` (Eq. 1).
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.lookup_cost + self.fpr * self.work_saved
    }

    /// The full per-tuple work model `t_w'` for a workload with true-hit rate
    /// `sigma`, using symmetric lookup costs.
    #[must_use]
    pub fn per_tuple_work(&self, sigma: f64) -> f64 {
        let sigma_eff = (sigma + self.fpr).min(1.0);
        (1.0 - sigma_eff) * self.lookup_cost + sigma_eff * (self.lookup_cost + self.work_saved)
    }

    /// The asymmetric variant of the per-tuple work model used for classic
    /// Bloom filters, where negative lookups exit early (`t_l⁻ < t_l⁺`).
    #[must_use]
    pub fn per_tuple_work_asymmetric(&self, sigma: f64, negative_lookup_cost: f64) -> f64 {
        let sigma_eff = (sigma + self.fpr).min(1.0);
        (1.0 - sigma_eff) * negative_lookup_cost + sigma_eff * (self.lookup_cost + self.work_saved)
    }

    /// Whether installing this filter beats not filtering at all for a
    /// workload with true-hit rate `sigma`:
    /// `ρ(F) < (1 − σ)·t_w`.
    #[must_use]
    pub fn beneficial(&self, sigma: f64) -> bool {
        self.rho() < (1.0 - sigma) * self.work_saved
    }

    /// Per-tuple work *without* any filter: every tuple pays `t_w`.
    #[must_use]
    pub fn per_tuple_work_unfiltered(&self) -> f64 {
        self.work_saved
    }

    /// Speedup of the filtered pipeline over the unfiltered one at hit rate
    /// `sigma` (> 1 means the filter pays off).
    #[must_use]
    pub fn speedup(&self, sigma: f64) -> f64 {
        self.per_tuple_work_unfiltered() / self.per_tuple_work(sigma)
    }
}

/// Compare two filter configurations at the same operating point: a decrease
/// in false-positive rate `Δf` only pays off when `Δf·t_w` exceeds the
/// increase in lookup cost `Δt_l` (§1).
#[must_use]
pub fn precision_pays_off(delta_f: f64, delta_lookup: f64, work_saved: f64) -> bool {
    delta_f * work_saved > delta_lookup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_formula() {
        let o = Overhead {
            lookup_cost: 5.0,
            fpr: 0.01,
            work_saved: 300.0,
        };
        assert!((o.rho() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn high_throughput_favors_cheap_lookup() {
        // Bloom-ish: cheap lookup, higher f. Cuckoo-ish: pricier lookup, lower f.
        let bloom = Overhead {
            lookup_cost: 4.0,
            fpr: 0.01,
            work_saved: 200.0,
        };
        let cuckoo = Overhead {
            lookup_cost: 9.0,
            fpr: 0.001,
            work_saved: 200.0,
        };
        assert!(
            bloom.rho() < cuckoo.rho(),
            "cheap lookups must win at low t_w"
        );

        // At a large t_w (e.g. a disk seek) precision wins.
        let bloom_slow = Overhead {
            work_saved: 1_000_000.0,
            ..bloom
        };
        let cuckoo_slow = Overhead {
            work_saved: 1_000_000.0,
            ..cuckoo
        };
        assert!(
            cuckoo_slow.rho() < bloom_slow.rho(),
            "precision must win at high t_w"
        );
    }

    #[test]
    fn crossover_point_matches_delta_rule() {
        // ρ_bloom = ρ_cuckoo at t_w = Δt_l / Δf.
        let delta_l = 5.0;
        let delta_f = 0.009;
        let crossover = delta_l / delta_f;
        let bloom = |tw: f64| Overhead {
            lookup_cost: 4.0,
            fpr: 0.01,
            work_saved: tw,
        };
        let cuckoo = |tw: f64| Overhead {
            lookup_cost: 9.0,
            fpr: 0.001,
            work_saved: tw,
        };
        assert!(bloom(crossover * 0.9).rho() < cuckoo(crossover * 0.9).rho());
        assert!(bloom(crossover * 1.1).rho() > cuckoo(crossover * 1.1).rho());
        assert!(precision_pays_off(delta_f, delta_l, crossover * 1.1));
        assert!(!precision_pays_off(delta_f, delta_l, crossover * 0.9));
    }

    #[test]
    fn beneficial_requires_enough_negative_lookups() {
        let o = Overhead {
            lookup_cost: 5.0,
            fpr: 0.01,
            work_saved: 100.0,
        };
        // At σ = 1 no lookup is negative, filtering can never help.
        assert!(!o.beneficial(1.0));
        // At σ = 0 almost every tuple is filtered out.
        assert!(o.beneficial(0.0));
        // The break-even point is where ρ = (1 − σ)·t_w ⇒ σ = 1 − ρ/t_w = 0.94.
        assert!(o.beneficial(0.90));
        assert!(!o.beneficial(0.95));
    }

    #[test]
    fn per_tuple_work_interpolates_between_extremes() {
        let o = Overhead {
            lookup_cost: 5.0,
            fpr: 0.0,
            work_saved: 100.0,
        };
        assert!((o.per_tuple_work(0.0) - 5.0).abs() < 1e-12);
        assert!((o.per_tuple_work(1.0) - 105.0).abs() < 1e-12);
        let mid = o.per_tuple_work(0.5);
        assert!(mid > 5.0 && mid < 105.0);
        assert!(o.speedup(0.0) > 10.0);
        assert!(o.speedup(1.0) < 1.0);
    }

    #[test]
    fn asymmetric_model_rewards_early_exit_on_negative_lookups() {
        let o = Overhead {
            lookup_cost: 20.0,
            fpr: 0.01,
            work_saved: 100.0,
        };
        let symmetric = o.per_tuple_work(0.1);
        let asymmetric = o.per_tuple_work_asymmetric(0.1, 4.0);
        assert!(asymmetric < symmetric);
    }
}
