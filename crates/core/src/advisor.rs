//! The filter advisor: the user-facing entry point of performance-optimal
//! filtering.
//!
//! Given a workload description — problem size `n`, per-tuple work `t_w`
//! saved by a negative lookup, and the true hit rate σ — the advisor searches
//! the configuration space for the configuration minimising the overhead
//! `ρ = t_l + f·t_w` (Eq. 1), decides whether filtering is beneficial at all
//! (`ρ < (1 − σ)·t_w`), and can build the chosen filter directly from the
//! build-side keys. This is the runtime "install a filter after observing the
//! join hit rate" strategy the paper advocates in §2.

use crate::anyfilter::AnyFilter;
use crate::calibration::CalibrationSet;
use crate::configspace::{ConfigSpace, FilterConfig};
use crate::overhead::Overhead;
use crate::skyline::Skyline;

/// A workload the advisor optimises for.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of build-side keys (the paper's `n`).
    pub n: u64,
    /// Work (CPU cycles) saved for every probe-side tuple a filter rejects.
    pub work_saved_cycles: f64,
    /// Fraction of probe-side tuples that truly match (the join hit rate σ).
    pub sigma: f64,
}

/// The advisor's recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Whether installing a filter is predicted to pay off at all.
    pub use_filter: bool,
    /// The chosen configuration (also populated when `use_filter` is false,
    /// so callers can inspect what the best rejected candidate was).
    pub config: FilterConfig,
    /// Bits-per-key budget of the chosen configuration.
    pub bits_per_key: f64,
    /// Predicted overhead ρ in cycles per probe tuple.
    pub rho_cycles: f64,
    /// Predicted false-positive rate.
    pub fpr: f64,
    /// Predicted lookup cost in cycles.
    pub lookup_cycles: f64,
    /// Predicted speedup of the probe pipeline versus not filtering.
    pub predicted_speedup: f64,
}

/// The filter advisor.
#[derive(Debug)]
pub struct FilterAdvisor {
    space: ConfigSpace,
    calibration: CalibrationSet,
}

impl FilterAdvisor {
    /// Create an advisor from a configuration space and a calibration set
    /// (measured via [`crate::calibration::Calibrator`] or synthesised via
    /// [`crate::skyline::synthetic_calibration`]).
    #[must_use]
    pub fn new(space: ConfigSpace, calibration: CalibrationSet) -> Self {
        Self { space, calibration }
    }

    /// Create an advisor backed by the synthetic (model-based) calibration.
    /// Useful when no measurement pass has been run yet.
    #[must_use]
    pub fn with_synthetic_calibration(space: ConfigSpace) -> Self {
        let calibration = crate::skyline::synthetic_calibration(
            &space,
            &crate::skyline::default_cache_cost_model(),
        );
        Self { space, calibration }
    }

    /// Recommend the performance-optimal configuration for a workload.
    #[must_use]
    pub fn recommend(&self, workload: &WorkloadSpec) -> Recommendation {
        let skyline = Skyline::new(self.space, &self.calibration);
        let mut best: Option<(FilterConfig, f64, f64, f64, f64)> = None;
        for config in self.space.all_configs() {
            if let Some((bpk, rho, fpr, lookup)) =
                skyline.best_operating_point(&config, workload.n, workload.work_saved_cycles)
            {
                if best.as_ref().is_none_or(|(_, _, r, _, _)| rho < *r) {
                    best = Some((config, bpk, rho, fpr, lookup));
                }
            }
        }
        let (config, bits_per_key, rho, fpr, lookup) =
            best.expect("configuration space must not be empty");
        let overhead = Overhead {
            lookup_cost: lookup,
            fpr,
            work_saved: workload.work_saved_cycles,
        };
        Recommendation {
            use_filter: overhead.beneficial(workload.sigma),
            config,
            bits_per_key,
            rho_cycles: rho,
            fpr,
            lookup_cycles: lookup,
            predicted_speedup: overhead.speedup(workload.sigma),
        }
    }

    /// Recommend and, when beneficial, build the filter over the build-side
    /// keys. Returns `None` when filtering is not predicted to pay off or the
    /// chosen filter could not be constructed (Cuckoo insert failure).
    #[must_use]
    pub fn build_filter(&self, workload: &WorkloadSpec, build_keys: &[u32]) -> Option<AnyFilter> {
        let recommendation = self.recommend(workload);
        if !recommendation.use_filter {
            return None;
        }
        AnyFilter::build_with_keys(
            &recommendation.config,
            build_keys,
            recommendation.bits_per_key,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_filter::{Filter, FilterKind, KeyGen};

    fn advisor() -> FilterAdvisor {
        FilterAdvisor::with_synthetic_calibration(ConfigSpace::default())
    }

    #[test]
    fn high_throughput_recommends_bloom() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 20,
            work_saved_cycles: 50.0,
            sigma: 0.1,
        });
        assert_eq!(rec.config.kind(), FilterKind::Bloom);
        assert!(rec.use_filter);
        assert!(rec.predicted_speedup > 1.0);
    }

    #[test]
    fn low_throughput_recommends_cuckoo() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 16,
            work_saved_cycles: 50_000_000.0,
            sigma: 0.1,
        });
        assert_eq!(rec.config.kind(), FilterKind::Cuckoo);
        assert!(rec.use_filter);
    }

    #[test]
    fn full_selectivity_disables_filtering() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 20,
            work_saved_cycles: 500.0,
            sigma: 1.0,
        });
        assert!(
            !rec.use_filter,
            "no negative lookups ⇒ filtering cannot help"
        );
    }

    #[test]
    fn build_filter_returns_populated_filter_when_beneficial() {
        let mut gen = KeyGen::new(51);
        let keys = gen.distinct_keys(50_000);
        let workload = WorkloadSpec {
            n: keys.len() as u64,
            work_saved_cycles: 400.0,
            sigma: 0.2,
        };
        let filter = advisor()
            .build_filter(&workload, &keys)
            .expect("filter expected");
        for &key in keys.iter().take(1_000) {
            assert!(filter.contains(key));
        }
        assert!(advisor()
            .build_filter(
                &WorkloadSpec {
                    sigma: 1.0,
                    ..workload
                },
                &keys
            )
            .is_none());
    }

    #[test]
    fn recommendation_reports_consistent_overhead() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 18,
            work_saved_cycles: 1_000.0,
            sigma: 0.3,
        });
        let expected_rho = rec.lookup_cycles + rec.fpr * 1_000.0;
        assert!((rec.rho_cycles - expected_rho).abs() < 1e-9);
        assert!(rec.bits_per_key >= 4.0 && rec.bits_per_key <= 20.0);
    }
}
