//! The filter advisor: the user-facing entry point of performance-optimal
//! filtering.
//!
//! Given a workload description — problem size `n`, per-tuple work `t_w`
//! saved by a negative lookup, and the true hit rate σ — the advisor searches
//! the configuration space for the configuration minimising the overhead
//! `ρ = t_l + f·t_w` (Eq. 1), decides whether filtering is beneficial at all
//! (`ρ < (1 − σ)·t_w`), and can build the chosen filter directly from the
//! build-side keys. This is the runtime "install a filter after observing the
//! join hit rate" strategy the paper advocates in §2.

use crate::anyfilter::AnyFilter;
use crate::calibration::CalibrationSet;
use crate::configspace::{ConfigSpace, FilterConfig};
use crate::overhead::Overhead;
use crate::skyline::Skyline;

/// A workload the advisor optimises for.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of build-side keys (the paper's `n`).
    pub n: u64,
    /// Work (CPU cycles) saved for every probe-side tuple a filter rejects.
    pub work_saved_cycles: f64,
    /// Fraction of probe-side tuples that truly match (the join hit rate σ).
    pub sigma: f64,
}

/// One level of a tiered (LSM-style) store, as the advisor sees it.
///
/// The paper's skyline already varies with the per-tuple work `t_w` and the
/// problem size `n` — exactly the quantities that differ per LSM level (hot
/// levels: small, high churn, cheap misses; cold levels: large, immutable,
/// expensive I/O per miss). A level additionally has a *delete rate*, which
/// the plain [`WorkloadSpec`] has no slot for: deletes are where the families
/// diverge structurally (Cuckoo removes signatures in place for free, a Bloom
/// filter needs a counting sidecar or rebuild churn), so
/// [`FilterAdvisor::recommend_for_level`] folds it into the family choice.
#[derive(Debug, Clone, Copy)]
pub struct LevelSpec {
    /// Keys this level is expected to hold (the level's `n`).
    pub expected_keys: u64,
    /// Work (CPU cycles) a negative filter probe saves at this level — the
    /// paper's `t_w`. Hot levels sit in the tens of cycles (a skipped memtable
    /// or cache probe), cold levels in the millions (a skipped disk read).
    pub work_saved_cycles: f64,
    /// Fraction of lookups that truly hit this level (the level's σ).
    pub sigma: f64,
    /// Fraction of write operations against this level that are deletes
    /// (`0.0` = append-only, `0.5` = steady-state churn).
    pub delete_rate: f64,
    /// Expected number of probes served by one build of this level's filter —
    /// the amortisation horizon for construction cost. An immutable family
    /// (Xor/fuse) pays its whole build every time the level's contents
    /// change, so its per-probe surcharge is `build_cycles_per_key / this`.
    /// Hot levels turn over after few probes (small values keep immutable
    /// families out); cold compacted levels serve probes for ages (large
    /// values amortise the build to nothing). Defaults to `1024.0`.
    pub expected_probes_per_key: f64,
}

impl Default for LevelSpec {
    fn default() -> Self {
        Self {
            expected_keys: 0,
            work_saved_cycles: 0.0,
            sigma: 0.1,
            delete_rate: 0.0,
            expected_probes_per_key: 1024.0,
        }
    }
}

/// Delete-rate above which a Bloom level should delete in place through a
/// counting sidecar rather than tombstone-and-purge: below it, the occasional
/// purge rebuild amortises fine and the sidecar's write-side memory (4 bits
/// per filter bit) is wasted; above it, tombstone mode rebuilds continuously.
pub const COUNTING_DELETE_THRESHOLD: f64 = 0.05;

/// Modeled cost of one delete, as a multiple of the family's own lookup cost.
///
/// A counting-Bloom delete re-probes the block to confirm membership, then
/// read-modify-writes `k` nibble counters in a sidecar 4x the filter's size —
/// its own cache-line working set on top of the filter's — so it costs
/// several lookup-equivalents. A Cuckoo delete touches the same two buckets a
/// lookup does and clears the signature in line.
const BLOOM_DELETE_LOOKUP_MULTIPLE: f64 = 3.0;
const CUCKOO_DELETE_LOOKUP_MULTIPLE: f64 = 1.5;
/// An immutable (fuse) filter has no delete path at all: deletes route
/// through a whole-level rebuild, charged through the build-cost surcharge
/// below rather than a per-delete lookup multiple.
const FUSE_DELETE_LOOKUP_MULTIPLE: f64 = 0.0;

/// Rebuild amplification for immutable families under churn: one delete
/// against an immutable level does not rewrite one key, it re-peels the whole
/// shard once the batched rebuild triggers. Modeled as each delete carrying
/// this many keys' worth of reconstruction on average (batching spreads a
/// full `n`-key rebuild over the deletes that accumulated before it fired).
const IMMUTABLE_REBUILD_AMPLIFICATION: f64 = 64.0;

/// The advisor's recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Whether installing a filter is predicted to pay off at all.
    pub use_filter: bool,
    /// The chosen configuration (also populated when `use_filter` is false,
    /// so callers can inspect what the best rejected candidate was).
    pub config: FilterConfig,
    /// Bits-per-key budget of the chosen configuration.
    pub bits_per_key: f64,
    /// Predicted overhead ρ in cycles per probe tuple.
    pub rho_cycles: f64,
    /// Predicted false-positive rate.
    pub fpr: f64,
    /// Predicted lookup cost in cycles.
    pub lookup_cycles: f64,
    /// Predicted speedup of the probe pipeline versus not filtering.
    pub predicted_speedup: f64,
}

/// One re-advising evaluation: how the advisor's current per-level verdict
/// compares against the configuration a store is *already running*.
///
/// Produced by [`FilterAdvisor::readvise_level`] from observed (rather than
/// declared) workload stats. The interesting field is `improvement`: the
/// relative reduction in the full maintenance-weighted objective the best
/// candidate offers over the incumbent's own best operating point. A store
/// feeds it into a [`FamilyHysteresis`] so the family only migrates once the
/// improvement has cleared a threshold for several consecutive evaluations.
#[derive(Debug, Clone)]
pub struct Readvice {
    /// The fresh per-level recommendation under the observed workload.
    pub recommendation: LevelRecommendation,
    /// Best achievable objective (cycles/op) for the *incumbent*
    /// configuration under the observed workload — infinite when the
    /// incumbent cannot be modeled (e.g. a pinned config outside the
    /// calibrated space), in which case any candidate is an improvement.
    pub incumbent_objective: f64,
    /// Objective (cycles/op) of the recommended candidate.
    pub candidate_objective: f64,
    /// Relative objective reduction `(incumbent − candidate) / incumbent`,
    /// clamped to `[0, 1]`; `1.0` when the incumbent is unmodelable.
    pub improvement: f64,
    /// `true` when the recommended family differs from the incumbent's.
    pub flips_family: bool,
}

/// Hysteresis for online family migration: a flip proposal must clear the
/// improvement threshold for `required_streak` *consecutive* evaluations
/// (all agreeing on the same target family) before [`observe`] confirms it.
/// Anything else — an evaluation with no proposal, a below-threshold
/// improvement, or a change of target — resets the streak, so a borderline
/// workload oscillating around the crossover never flaps.
///
/// [`observe`]: FamilyHysteresis::observe
#[derive(Debug, Clone)]
pub struct FamilyHysteresis {
    min_improvement: f64,
    required_streak: u32,
    streak: u32,
    pending: Option<pof_filter::FilterKind>,
}

impl FamilyHysteresis {
    /// Create a hysteresis gate: confirm a migration only after the modeled
    /// relative improvement has been at least `min_improvement` for
    /// `required_streak` consecutive evaluations (clamped to ≥ 1) that all
    /// propose the same target family.
    #[must_use]
    pub fn new(min_improvement: f64, required_streak: u32) -> Self {
        Self {
            min_improvement,
            required_streak: required_streak.max(1),
            streak: 0,
            pending: None,
        }
    }

    /// Feed one evaluation: `proposal` is the target family when the advisor
    /// wants a migration (`None` when the incumbent is still the right
    /// choice), `improvement` the modeled relative objective reduction.
    /// Returns `true` exactly when the streak completes — the caller should
    /// migrate now. A confirmed flip resets the gate for the next drift.
    pub fn observe(&mut self, proposal: Option<pof_filter::FilterKind>, improvement: f64) -> bool {
        let Some(target) = proposal else {
            self.reset();
            return false;
        };
        if improvement < self.min_improvement {
            self.reset();
            return false;
        }
        if self.pending != Some(target) {
            self.pending = Some(target);
            self.streak = 0;
        }
        self.streak += 1;
        if self.streak >= self.required_streak {
            self.reset();
            true
        } else {
            false
        }
    }

    /// Drop any in-progress streak (e.g. after a migration completed through
    /// another path).
    pub fn reset(&mut self) {
        self.streak = 0;
        self.pending = None;
    }

    /// Consecutive above-threshold evaluations accumulated toward the
    /// current pending target.
    #[must_use]
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// The improvement threshold this gate was built with.
    #[must_use]
    pub fn min_improvement(&self) -> f64 {
        self.min_improvement
    }

    /// The consecutive-evaluation requirement this gate was built with.
    #[must_use]
    pub fn required_streak(&self) -> u32 {
        self.required_streak
    }
}

/// The advisor's per-level recommendation: the base [`Recommendation`] plus
/// the delete-handling verdict a tiered store needs to configure the level.
#[derive(Debug, Clone)]
pub struct LevelRecommendation {
    /// The family/configuration choice, with the usual overhead breakdown.
    /// `rho_cycles` keeps the paper's pure lookup-side definition
    /// (`t_l + f·t_w`); the delete surcharge is reported separately below.
    pub recommendation: Recommendation,
    /// `true` when the chosen family is Bloom and the level's delete rate
    /// clears [`COUNTING_DELETE_THRESHOLD`]: the level should carry a
    /// counting sidecar so deletes land in place instead of tombstoning.
    pub counting_deletes: bool,
    /// Modeled maintenance surcharge in cycles per operation — the terms
    /// added to ρ when ranking the families for this level: the delete
    /// surcharge `delete_rate · delete_cost(family)` plus, for immutable
    /// families, the amortised construction cost (see
    /// [`LevelSpec::expected_probes_per_key`]).
    pub delete_overhead_cycles: f64,
}

/// The filter advisor.
#[derive(Debug)]
pub struct FilterAdvisor {
    space: ConfigSpace,
    calibration: CalibrationSet,
}

impl FilterAdvisor {
    /// Create an advisor from a configuration space and a calibration set
    /// (measured via [`crate::calibration::Calibrator`] or synthesised via
    /// [`crate::skyline::synthetic_calibration`]).
    #[must_use]
    pub fn new(space: ConfigSpace, calibration: CalibrationSet) -> Self {
        Self { space, calibration }
    }

    /// Create an advisor backed by the synthetic (model-based) calibration.
    /// Useful when no measurement pass has been run yet.
    #[must_use]
    pub fn with_synthetic_calibration(space: ConfigSpace) -> Self {
        let calibration = crate::skyline::synthetic_calibration(
            &space,
            &crate::skyline::default_cache_cost_model(),
        );
        Self { space, calibration }
    }

    /// Recommend the performance-optimal configuration for a workload.
    ///
    /// A [`WorkloadSpec`] is a [`LevelSpec`] with no deletes: the search is
    /// shared with [`Self::recommend_for_level`], where a zero delete rate
    /// makes every surcharge vanish and the ranking reduce to the paper's
    /// pure `ρ = t_l + f·t_w`.
    #[must_use]
    pub fn recommend(&self, workload: &WorkloadSpec) -> Recommendation {
        self.recommend_for_level(&LevelSpec {
            expected_keys: workload.n,
            work_saved_cycles: workload.work_saved_cycles,
            sigma: workload.sigma,
            ..LevelSpec::default()
        })
        .recommendation
    }

    /// Recommend the performance-optimal configuration for one level of a
    /// tiered (LSM-style) store, folding the level's delete rate into the
    /// family choice.
    ///
    /// The ranking extends the paper's overhead `ρ = t_l + f·t_w` with a
    /// delete surcharge `delete_rate · t_d(family)`, where `t_d` models what
    /// a delete structurally costs each family: a Cuckoo delete is roughly a
    /// lookup and a half (same two buckets, clear the signature in line),
    /// while a Bloom delete needs the counting sidecar's `k` read-modify-
    /// writes over a working set 4x the filter — several lookup-equivalents.
    /// A rising delete rate therefore pulls the Bloom→Cuckoo crossover
    /// toward smaller `t_w`, and a delete-heavy level that *still* favors
    /// Bloom on throughput is told to run its deletes through a counting
    /// sidecar ([`LevelRecommendation::counting_deletes`]) rather than
    /// tombstone-and-purge.
    ///
    /// When the space includes immutable families
    /// ([`ConfigSpace::with_fuse`]), the objective additionally charges them
    /// their construction cost, amortised over the level's expected probe
    /// lifetime and amplified by churn — so a fuse filter only wins a level
    /// that is big, cold, and static, which is exactly where its space
    /// advantage has time to pay for the build.
    #[must_use]
    pub fn recommend_for_level(&self, level: &LevelSpec) -> LevelRecommendation {
        let skyline = Skyline::new(self.space, &self.calibration);
        // (config, bits_per_key, weighted rho, fpr, lookup) of the candidate
        // minimising the full objective. The surcharge weights the lookup
        // term *inside* each configuration's bits-per-key sweep too (via
        // `best_operating_point_weighted`), so a delete-heavy level's
        // operating point may legitimately trade a little FPR for cheaper
        // probes — not just re-rank points chosen under the plain ρ.
        let mut best: Option<(FilterConfig, f64, f64, f64, f64)> = None;
        for config in self.space.all_configs() {
            if let Some((bpk, objective, fpr, lookup)) =
                Self::level_objective(&skyline, &config, level)
            {
                if best.as_ref().is_none_or(|(_, _, w, _, _)| objective < *w) {
                    best = Some((config, bpk, objective, fpr, lookup));
                }
            }
        }
        let (config, bits_per_key, weighted, fpr, lookup) =
            best.expect("configuration space must not be empty");
        // Report the paper's plain ρ and the maintenance surcharge (delete
        // weighting plus any amortised build cost) separately; they sum to
        // the objective the winner minimised.
        let rho = lookup + fpr * level.work_saved_cycles;
        let delete_overhead_cycles = weighted - rho;
        let overhead = Overhead {
            lookup_cost: lookup,
            fpr,
            work_saved: level.work_saved_cycles,
        };
        let counting_deletes = config.kind() == pof_filter::FilterKind::Bloom
            && level.delete_rate > COUNTING_DELETE_THRESHOLD;
        LevelRecommendation {
            recommendation: Recommendation {
                use_filter: overhead.beneficial(level.sigma),
                config,
                bits_per_key,
                rho_cycles: rho,
                fpr,
                lookup_cycles: lookup,
                predicted_speedup: overhead.speedup(level.sigma),
            },
            counting_deletes,
            delete_overhead_cycles,
        }
    }

    /// Full maintenance-weighted objective of one configuration's best
    /// operating point at this level: the delete-weighted ρ plus, for
    /// immutable configurations, the amortised construction surcharge.
    /// Returns `(bits_per_key, objective, fpr, lookup)`, or `None` when the
    /// configuration has no feasible operating point under the calibration.
    fn level_objective(
        skyline: &Skyline<'_>,
        config: &FilterConfig,
        level: &LevelSpec,
    ) -> Option<(f64, f64, f64, f64)> {
        let delete_multiple = match config.kind() {
            pof_filter::FilterKind::Bloom => BLOOM_DELETE_LOOKUP_MULTIPLE,
            pof_filter::FilterKind::Cuckoo => CUCKOO_DELETE_LOOKUP_MULTIPLE,
            pof_filter::FilterKind::Fuse => FUSE_DELETE_LOOKUP_MULTIPLE,
        };
        let lookup_weight = 1.0 + level.delete_rate * delete_multiple;
        // Construction cost, amortised per probe. Mutable families build
        // on the write path (their construction is the insert stream the
        // level pays anyway), so only immutable configurations — which
        // re-peel the complete key set whenever the level changes — carry
        // a surcharge: the base build spread over the level's probe
        // lifetime, plus a churn term for the rebuilds deletes force.
        let build_surcharge = if config.immutable() {
            config.build_cycles_per_key() / level.expected_probes_per_key.max(1.0)
                + level.delete_rate
                    * config.build_cycles_per_key()
                    * IMMUTABLE_REBUILD_AMPLIFICATION
        } else {
            0.0
        };
        skyline
            .best_operating_point_weighted(
                config,
                level.expected_keys,
                level.work_saved_cycles,
                lookup_weight,
            )
            .map(|(bpk, weighted, fpr, lookup)| (bpk, weighted + build_surcharge, fpr, lookup))
    }

    /// Re-run the per-level search against *observed* workload stats and
    /// compare the winner against the configuration the store is already
    /// running — the online re-advising entry point.
    ///
    /// The returned [`Readvice`] reports the relative objective improvement
    /// the best candidate offers over the incumbent's own best operating
    /// point under the same observed stats (so the comparison is
    /// like-for-like: both sides get to re-tune bits-per-key). Callers gate
    /// the actual migration through a [`FamilyHysteresis`] so a borderline
    /// workload sitting on a crossover never flaps between families.
    #[must_use]
    pub fn readvise_level(&self, level: &LevelSpec, incumbent: &FilterConfig) -> Readvice {
        let skyline = Skyline::new(self.space, &self.calibration);
        let recommendation = self.recommend_for_level(level);
        // The objective the winner minimised: the paper's ρ plus the
        // reported maintenance surcharge (they sum by construction).
        let candidate_objective =
            recommendation.recommendation.rho_cycles + recommendation.delete_overhead_cycles;
        let incumbent_objective = Self::level_objective(&skyline, incumbent, level)
            .map_or(f64::INFINITY, |(_, objective, _, _)| objective);
        let improvement = if incumbent_objective.is_finite() && incumbent_objective > 0.0 {
            ((incumbent_objective - candidate_objective) / incumbent_objective).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let flips_family = recommendation.recommendation.config.kind() != incumbent.kind();
        Readvice {
            recommendation,
            incumbent_objective,
            candidate_objective,
            improvement,
            flips_family,
        }
    }

    /// Recommend and, when beneficial, build the filter over the build-side
    /// keys. Returns `None` when filtering is not predicted to pay off or the
    /// chosen filter could not be constructed (Cuckoo insert failure).
    #[must_use]
    pub fn build_filter(&self, workload: &WorkloadSpec, build_keys: &[u32]) -> Option<AnyFilter> {
        let recommendation = self.recommend(workload);
        if !recommendation.use_filter {
            return None;
        }
        AnyFilter::build_with_keys(
            &recommendation.config,
            build_keys,
            recommendation.bits_per_key,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_filter::{Filter, FilterKind, KeyGen};

    fn advisor() -> FilterAdvisor {
        FilterAdvisor::with_synthetic_calibration(ConfigSpace::default())
    }

    #[test]
    fn high_throughput_recommends_bloom() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 20,
            work_saved_cycles: 50.0,
            sigma: 0.1,
        });
        assert_eq!(rec.config.kind(), FilterKind::Bloom);
        assert!(rec.use_filter);
        assert!(rec.predicted_speedup > 1.0);
    }

    #[test]
    fn low_throughput_recommends_cuckoo() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 16,
            work_saved_cycles: 50_000_000.0,
            sigma: 0.1,
        });
        assert_eq!(rec.config.kind(), FilterKind::Cuckoo);
        assert!(rec.use_filter);
    }

    #[test]
    fn full_selectivity_disables_filtering() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 20,
            work_saved_cycles: 500.0,
            sigma: 1.0,
        });
        assert!(
            !rec.use_filter,
            "no negative lookups ⇒ filtering cannot help"
        );
    }

    #[test]
    fn build_filter_returns_populated_filter_when_beneficial() {
        let mut gen = KeyGen::new(51);
        let keys = gen.distinct_keys(50_000);
        let workload = WorkloadSpec {
            n: keys.len() as u64,
            work_saved_cycles: 400.0,
            sigma: 0.2,
        };
        let filter = advisor()
            .build_filter(&workload, &keys)
            .expect("filter expected");
        for &key in keys.iter().take(1_000) {
            assert!(filter.contains(key));
        }
        assert!(advisor()
            .build_filter(
                &WorkloadSpec {
                    sigma: 1.0,
                    ..workload
                },
                &keys
            )
            .is_none());
    }

    /// First `t_w` on a power-of-two ladder where the advisor's per-level
    /// family choice flips to Cuckoo — the level-workload Bloom→Cuckoo
    /// crossover the skyline predicts.
    fn level_crossover_tw(n: u64, delete_rate: f64) -> f64 {
        let advisor = advisor();
        for exp in 4u32..=26 {
            let tw = f64::from(1u32 << exp);
            let rec = advisor.recommend_for_level(&LevelSpec {
                expected_keys: n,
                work_saved_cycles: tw,
                delete_rate,
                ..LevelSpec::default()
            });
            if rec.recommendation.config.kind() == FilterKind::Cuckoo {
                return tw;
            }
        }
        f64::INFINITY
    }

    #[test]
    fn level_family_flips_from_bloom_to_cuckoo_across_the_tw_sweep() {
        // The paper's headline result, restated per level: a hot level
        // (cheap misses) gets a Bloom filter, a cold level (simulated-disk
        // misses) gets a Cuckoo filter — and in between there is exactly one
        // crossover, which moves right with the problem size like the
        // skyline's (Figure 10).
        let advisor = advisor();
        let mut seen_cuckoo = false;
        for exp in 4u32..=26 {
            let rec = advisor.recommend_for_level(&LevelSpec {
                expected_keys: 1 << 16,
                work_saved_cycles: f64::from(1u32 << exp),
                ..LevelSpec::default()
            });
            match rec.recommendation.config.kind() {
                FilterKind::Cuckoo => seen_cuckoo = true,
                FilterKind::Bloom => {
                    assert!(!seen_cuckoo, "family flipped back to Bloom at tw=2^{exp}");
                }
                FilterKind::Fuse => unreachable!("the default space carries no fuse configs"),
            }
        }
        assert!(seen_cuckoo, "cuckoo never won anywhere on the sweep");
        let small = level_crossover_tw(1 << 12, 0.0);
        let large = level_crossover_tw(1 << 24, 0.0);
        assert!(
            large >= small,
            "crossover for large n ({large}) left of small n ({small})"
        );
    }

    #[test]
    fn level_crossover_fixture_is_pinned() {
        // Fixture: the known crossover for a 64k-key level at zero deletes
        // (synthetic calibration, default quick config space). Moving this
        // value is a deliberate model change, not drift.
        assert_eq!(level_crossover_tw(1 << 16, 0.0), 8_192.0);
    }

    #[test]
    fn delete_rate_pulls_the_crossover_toward_cuckoo() {
        // Deletes are structurally cheaper for Cuckoo (in-place signature
        // removal) than for Bloom (counting-sidecar read-modify-writes), so
        // a rising delete rate must never move the crossover *up*, and a
        // heavy churn rate moves it strictly down for the fixture level.
        for n in [1u64 << 12, 1 << 16, 1 << 24] {
            let clean = level_crossover_tw(n, 0.0);
            let churning = level_crossover_tw(n, 0.5);
            assert!(
                churning <= clean,
                "n={n}: delete churn moved the crossover up ({clean} -> {churning})"
            );
        }
        assert!(
            level_crossover_tw(1 << 16, 0.9) < level_crossover_tw(1 << 16, 0.0),
            "a delete-dominated level should flip to Cuckoo strictly earlier"
        );
    }

    #[test]
    fn delete_heavy_bloom_levels_get_counting_deletes() {
        let advisor = advisor();
        // Hot level: tiny t_w keeps Bloom optimal; heavy churn demands the
        // counting sidecar.
        let hot = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 16,
            work_saved_cycles: 32.0,
            delete_rate: 0.5,
            ..LevelSpec::default()
        });
        assert_eq!(hot.recommendation.config.kind(), FilterKind::Bloom);
        assert!(hot.counting_deletes);
        assert!(hot.delete_overhead_cycles > 0.0);
        // Same level, append-only: Bloom again, but tombstones are fine.
        let append_only = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 16,
            work_saved_cycles: 32.0,
            ..LevelSpec::default()
        });
        assert!(!append_only.counting_deletes);
        assert_eq!(append_only.delete_overhead_cycles, 0.0);
        // Cold level: Cuckoo deletes in place by construction — the counting
        // hint never fires regardless of churn.
        let cold = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 16,
            work_saved_cycles: f64::from(1u32 << 24),
            delete_rate: 0.5,
            ..LevelSpec::default()
        });
        assert_eq!(cold.recommendation.config.kind(), FilterKind::Cuckoo);
        assert!(!cold.counting_deletes);
    }

    #[test]
    fn fuse_enabled_advisor_splits_hot_bloom_cold_fuse() {
        // With the fuse family opted in, the advisor's per-level verdicts
        // split the way a tiered store wants: a hot, churny level keeps a
        // mutable family (fuse can't absorb the writes), while a big, cold,
        // static level flips to fuse — lowest bits-per-key at the target FPR
        // and nothing to amortise the build against except aeons of probes.
        let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default().with_fuse());
        let hot = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 15,
            work_saved_cycles: 32.0,
            delete_rate: 0.5,
            expected_probes_per_key: 4.0,
            ..LevelSpec::default()
        });
        assert_eq!(hot.recommendation.config.kind(), FilterKind::Bloom);
        assert!(!hot.recommendation.config.immutable());
        let cold = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 16,
            work_saved_cycles: 16_000_000.0,
            delete_rate: 0.0,
            expected_probes_per_key: 1_048_576.0,
            ..LevelSpec::default()
        });
        assert_eq!(cold.recommendation.config.kind(), FilterKind::Fuse);
        assert!(cold.recommendation.use_filter);
        assert!(cold.recommendation.predicted_speedup > 1.0);
        // The same cold level under heavy churn pays the rebuild
        // amplification and falls back to a mutable family.
        let churny_cold = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 16,
            work_saved_cycles: 16_000_000.0,
            delete_rate: 0.5,
            ..LevelSpec::default()
        });
        assert_eq!(churny_cold.recommendation.config.kind(), FilterKind::Cuckoo);
    }

    #[test]
    fn level_recommendation_keeps_the_overhead_identity() {
        // rho stays the paper's lookup-side definition; the delete surcharge
        // is reported separately, not folded into rho.
        let rec = advisor().recommend_for_level(&LevelSpec {
            expected_keys: 1 << 18,
            work_saved_cycles: 1_000.0,
            sigma: 0.3,
            delete_rate: 0.25,
            ..LevelSpec::default()
        });
        let expected_rho = rec.recommendation.lookup_cycles + rec.recommendation.fpr * 1_000.0;
        assert!((rec.recommendation.rho_cycles - expected_rho).abs() < 1e-9);
    }

    #[test]
    fn readvise_flags_a_cooled_level_for_fuse() {
        // A level built hot-churny on Bloom, observed later as big, cold and
        // static: the re-advice must flip to fuse with a solid improvement,
        // and the improvement must be computed against the incumbent's own
        // best operating point (finite, larger than the candidate's).
        let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default().with_fuse());
        let hot = advisor.recommend_for_level(&LevelSpec {
            expected_keys: 1 << 15,
            work_saved_cycles: 32.0,
            delete_rate: 0.5,
            expected_probes_per_key: 4.0,
            ..LevelSpec::default()
        });
        assert_eq!(hot.recommendation.config.kind(), FilterKind::Bloom);
        let cooled = LevelSpec {
            expected_keys: 1 << 16,
            work_saved_cycles: 16_000_000.0,
            delete_rate: 0.0,
            expected_probes_per_key: 1_048_576.0,
            ..LevelSpec::default()
        };
        let readvice = advisor.readvise_level(&cooled, &hot.recommendation.config);
        assert_eq!(
            readvice.recommendation.recommendation.config.kind(),
            FilterKind::Fuse
        );
        assert!(readvice.flips_family);
        assert!(readvice.incumbent_objective.is_finite());
        assert!(readvice.candidate_objective < readvice.incumbent_objective);
        assert!(readvice.improvement > 0.0 && readvice.improvement <= 1.0);
    }

    #[test]
    fn readvise_of_a_stable_workload_reports_no_flip() {
        // The incumbent *is* the winner: no family flip, and the improvement
        // collapses to (near) zero — the signal hysteresis resets on.
        let advisor = advisor();
        let spec = LevelSpec {
            expected_keys: 1 << 18,
            work_saved_cycles: 50.0,
            ..LevelSpec::default()
        };
        let rec = advisor.recommend_for_level(&spec);
        let readvice = advisor.readvise_level(&spec, &rec.recommendation.config);
        assert!(!readvice.flips_family);
        assert!(readvice.improvement < 1e-9);
    }

    #[test]
    fn hysteresis_confirms_only_a_sustained_streak() {
        let mut gate = FamilyHysteresis::new(0.2, 3);
        assert!(!gate.observe(Some(FilterKind::Fuse), 0.5));
        assert!(!gate.observe(Some(FilterKind::Fuse), 0.5));
        assert_eq!(gate.streak(), 2);
        assert!(gate.observe(Some(FilterKind::Fuse), 0.5));
        // Confirmed flips reset the gate for the next drift.
        assert_eq!(gate.streak(), 0);
        assert!(!gate.observe(Some(FilterKind::Fuse), 0.5));
    }

    #[test]
    fn hysteresis_never_flaps_on_a_borderline_workload() {
        // Oscillating evaluations that keep dipping below the threshold (or
        // withdraw the proposal entirely) must never confirm a migration —
        // the store-level "0 migrations under oscillating stats" pin.
        let mut gate = FamilyHysteresis::new(0.2, 2);
        for _ in 0..16 {
            assert!(!gate.observe(Some(FilterKind::Cuckoo), 0.3));
            assert!(!gate.observe(Some(FilterKind::Cuckoo), 0.1));
            assert!(!gate.observe(None, 0.9));
        }
        assert_eq!(gate.streak(), 0);
    }

    #[test]
    fn hysteresis_restarts_the_streak_when_the_target_changes() {
        let mut gate = FamilyHysteresis::new(0.1, 3);
        assert!(!gate.observe(Some(FilterKind::Cuckoo), 0.4));
        assert!(!gate.observe(Some(FilterKind::Cuckoo), 0.4));
        // Target swaps mid-streak: the two Cuckoo votes must not count
        // toward a fuse migration.
        assert!(!gate.observe(Some(FilterKind::Fuse), 0.4));
        assert!(!gate.observe(Some(FilterKind::Fuse), 0.4));
        assert!(gate.observe(Some(FilterKind::Fuse), 0.4));
    }

    #[test]
    fn recommendation_reports_consistent_overhead() {
        let rec = advisor().recommend(&WorkloadSpec {
            n: 1 << 18,
            work_saved_cycles: 1_000.0,
            sigma: 0.3,
        });
        let expected_rho = rec.lookup_cycles + rec.fpr * 1_000.0;
        assert!((rec.rho_cycles - expected_rho).abs() < 1e-9);
        assert!(rec.bits_per_key >= 4.0 && rec.bits_per_key <= 20.0);
    }
}
