//! Performance-optimal filtering (the paper's primary contribution, §2 and §6).
//!
//! The question this crate answers is the paper's central one: *given a
//! workload — `n` build-side keys, `t_w` cycles of work saved per filtered
//! tuple, and a true hit rate σ — which filter structure and configuration
//! accelerates it most, and is filtering worth it at all?*
//!
//! The pieces:
//!
//! * [`overhead`] — the overhead model `ρ(F) = t_l(F) + f(F)·t_w` (Eq. 1) and
//!   the benefit criterion `ρ < (1 − σ)·t_w`,
//! * [`configspace`] — the grid of candidate Bloom and Cuckoo configurations
//!   the paper sweeps in §6, plus an opt-in immutable Xor/fuse family
//!   ([`configspace::ConfigSpace::with_fuse`]) for cold static tiers,
//! * [`anyfilter`] — a dynamically configured filter that can be built from
//!   any point of that grid,
//! * [`calibration`] — the one-time microbenchmark phase measuring the lookup
//!   cost `t_l` on the target platform,
//! * [`skyline`] — the `(n, t_w)` skylines of performance-optimal
//!   configurations (Figures 1 and 10–13),
//! * [`advisor`] — the user-facing [`advisor::FilterAdvisor`] that recommends
//!   and builds the performance-optimal filter for a workload,
//! * [`platform`] — host description for the Table-1 style report.
//!
//! # Example
//!
//! ```
//! use pof_core::advisor::{FilterAdvisor, WorkloadSpec};
//! use pof_core::configspace::ConfigSpace;
//! use pof_filter::{Filter, FilterKind};
//!
//! let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
//! // A selective join probe: hash-table lookup costs ~200 cycles, 10 % hit rate.
//! let workload = WorkloadSpec { n: 1 << 20, work_saved_cycles: 200.0, sigma: 0.1 };
//! let recommendation = advisor.recommend(&workload);
//! assert!(recommendation.use_filter);
//! assert_eq!(recommendation.config.kind(), FilterKind::Bloom);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod advisor;
pub mod anyfilter;
pub mod calibration;
pub mod configspace;
pub mod overhead;
pub mod platform;
pub mod skyline;
pub mod snapshot;

pub use advisor::{
    FamilyHysteresis, FilterAdvisor, LevelRecommendation, LevelSpec, Readvice, Recommendation,
    WorkloadSpec, COUNTING_DELETE_THRESHOLD,
};
pub use anyfilter::AnyFilter;
pub use calibration::{CalibrationRecord, CalibrationSet, Calibrator};
pub use configspace::{ConfigSpace, FilterConfig};
pub use overhead::Overhead;
pub use platform::Platform;
pub use pof_xorfuse::{FuseConfig, FuseFilter, FuseMutation};
pub use skyline::{Skyline, SkylineGrid, SkylinePoint};
pub use snapshot::{decode_config, decode_filter, encode_config, encode_filter};
