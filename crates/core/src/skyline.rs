//! Skylines of performance-optimal filter configurations (§6, Figures 10–13).
//!
//! For every point of a grid over the problem size `n` and the work saved per
//! negative lookup `t_w`, the skyline picks the configuration (filter type,
//! parameters and bits-per-key budget) with the smallest overhead
//! `ρ = t_l + f·t_w`, using measured lookup costs from a [`CalibrationSet`]
//! and the analytical false-positive models.

use crate::calibration::CalibrationSet;
use crate::configspace::{ConfigSpace, FilterConfig};
use pof_filter::FilterKind;
use serde::{Deserialize, Serialize};

/// The grid of `(n, t_w)` operating points a skyline is evaluated on.
#[derive(Debug, Clone)]
pub struct SkylineGrid {
    /// Problem sizes (number of build-side keys).
    pub n_values: Vec<u64>,
    /// Work saved per filtered tuple, in CPU cycles.
    pub tw_values: Vec<f64>,
}

impl SkylineGrid {
    /// The paper's full grid: `n = 2^10 … 2^28`, `t_w = 2^4 … 2^31` cycles.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            n_values: (10..=28).map(|i| 1u64 << i).collect(),
            tw_values: (4..=31)
                .map(|i| f64::from(1u32 << i.min(30)) * if i == 31 { 2.0 } else { 1.0 })
                .collect(),
        }
    }

    /// A reduced grid that keeps the qualitative shape but runs in seconds.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            n_values: vec![1 << 12, 1 << 16, 1 << 20, 1 << 24],
            tw_values: vec![
                16.0,
                64.0,
                256.0,
                1024.0,
                4096.0,
                65536.0,
                1_048_576.0,
                16_777_216.0,
            ],
        }
    }
}

/// The winning configuration at one `(n, t_w)` grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkylinePoint {
    /// Problem size (number of keys).
    pub n: u64,
    /// Work saved per filtered tuple (cycles).
    pub tw: f64,
    /// Winning filter type.
    pub best_kind: FilterKind,
    /// Winning configuration label.
    pub best_label: String,
    /// Winning bits-per-key budget.
    pub best_bits_per_key: f64,
    /// Overhead ρ of the winner (cycles per probe-side tuple).
    pub best_rho: f64,
    /// False-positive rate of the winner.
    pub best_fpr: f64,
    /// Lookup cost of the winner (cycles).
    pub best_lookup_cycles: f64,
    /// Overhead of the best configuration of the *other* filter type, used for
    /// the speedup comparison of Figure 11a.
    pub other_kind_rho: f64,
}

impl SkylinePoint {
    /// Speedup of the winning type over the best configuration of the other
    /// type (Figure 11a), in terms of filtering overhead.
    #[must_use]
    pub fn speedup_over_other_kind(&self) -> f64 {
        if self.best_rho <= 0.0 {
            return 1.0;
        }
        self.other_kind_rho / self.best_rho
    }
}

/// Skyline computation driver.
#[derive(Debug)]
pub struct Skyline<'a> {
    space: ConfigSpace,
    calibration: &'a CalibrationSet,
}

impl<'a> Skyline<'a> {
    /// Create a skyline evaluator over a configuration space, using measured
    /// lookup costs from `calibration`.
    #[must_use]
    pub fn new(space: ConfigSpace, calibration: &'a CalibrationSet) -> Self {
        Self { space, calibration }
    }

    /// Evaluate the overhead of one configuration at one operating point,
    /// scanning the bits-per-key sweep and returning the best
    /// `(bits_per_key, rho, fpr, lookup_cycles)`.
    ///
    /// Returns `None` when the configuration is infeasible at every budget
    /// (e.g. a Cuckoo filter whose minimum load factor exceeds the maximum)
    /// or has no calibration data.
    #[must_use]
    pub fn best_operating_point(
        &self,
        config: &FilterConfig,
        n: u64,
        tw: f64,
    ) -> Option<(f64, f64, f64, f64)> {
        self.best_operating_point_weighted(config, n, tw, 1.0)
    }

    /// [`Self::best_operating_point`] with the lookup term weighted: the
    /// sweep minimises `lookup_weight·t_l + f·t_w` and returns that weighted
    /// objective in the `rho` slot. A weight of `1.0` is the paper's plain
    /// ρ; the per-level advisor passes `1 + delete_rate·t_d_multiple`, so a
    /// delete-heavy level's operating point is chosen under the *full*
    /// objective (trading a little FPR for cheaper probes where deletes make
    /// every touch of the structure count double) rather than re-ranked
    /// after the fact.
    #[must_use]
    pub fn best_operating_point_weighted(
        &self,
        config: &FilterConfig,
        n: u64,
        tw: f64,
        lookup_weight: f64,
    ) -> Option<(f64, f64, f64, f64)> {
        let label = config.label();
        let mut best: Option<(f64, f64, f64, f64)> = None;
        for &bits_per_key in &self.space.bits_per_key_sweep() {
            let Some(fpr) = config.modeled_fpr(n as f64, bits_per_key) else {
                continue;
            };
            let filter_bits = bits_per_key * n as f64;
            let Some(lookup) = self.calibration.lookup_cycles(&label, filter_bits) else {
                continue;
            };
            let rho = lookup_weight * lookup + fpr * tw;
            if best.is_none_or(|(_, best_rho, _, _)| rho < best_rho) {
                best = Some((bits_per_key, rho, fpr, lookup));
            }
        }
        best
    }

    /// Compute the skyline over a grid.
    #[must_use]
    pub fn compute(&self, grid: &SkylineGrid) -> Vec<SkylinePoint> {
        let configs = self.space.all_configs();
        let mut points = Vec::with_capacity(grid.n_values.len() * grid.tw_values.len());
        for &n in &grid.n_values {
            for &tw in &grid.tw_values {
                let mut best: Option<(FilterConfig, f64, f64, f64, f64)> = None;
                let mut best_other: Option<f64> = None;
                let mut best_per_kind: [Option<f64>; 3] = [None, None, None];
                let kind_index = |kind: FilterKind| match kind {
                    FilterKind::Bloom => 0usize,
                    FilterKind::Cuckoo => 1,
                    FilterKind::Fuse => 2,
                };
                for config in &configs {
                    let Some((bpk, rho, fpr, lookup)) = self.best_operating_point(config, n, tw)
                    else {
                        continue;
                    };
                    let kind_idx = kind_index(config.kind());
                    if best_per_kind[kind_idx].is_none_or(|r| rho < r) {
                        best_per_kind[kind_idx] = Some(rho);
                    }
                    if best.as_ref().is_none_or(|(_, _, r, _, _)| rho < *r) {
                        best = Some((*config, bpk, rho, fpr, lookup));
                    }
                }
                let Some((config, bpk, rho, fpr, lookup)) = best else {
                    continue;
                };
                // The Figure-11a comparison: the best rho among all *other*
                // families present in the space.
                let winner_idx = kind_index(config.kind());
                let other = best_per_kind
                    .iter()
                    .enumerate()
                    .filter(|&(idx, _)| idx != winner_idx)
                    .filter_map(|(_, rho)| *rho)
                    .fold(f64::INFINITY, f64::min);
                if other.is_finite() {
                    best_other = Some(other);
                }
                points.push(SkylinePoint {
                    n,
                    tw,
                    best_kind: config.kind(),
                    best_label: config.label(),
                    best_bits_per_key: bpk,
                    best_rho: rho,
                    best_fpr: fpr,
                    best_lookup_cycles: lookup,
                    other_kind_rho: best_other.unwrap_or(f64::INFINITY),
                });
            }
        }
        points
    }
}

/// Build a synthetic calibration set from the structural cost model (cache
/// lines touched, SIMD friendliness) instead of measurements. Used by tests
/// and by quick runs of the figure harness where measuring every
/// configuration would dominate the runtime; the measured calibration is
/// always preferred when available.
#[must_use]
pub fn synthetic_calibration(
    space: &ConfigSpace,
    cache_line_cycles: &[(u64, f64)],
) -> CalibrationSet {
    use crate::calibration::CalibrationRecord;
    let mut records = Vec::new();
    for config in space.all_configs() {
        let label = config.label();
        for &(bits, per_line) in cache_line_cycles {
            // Base computational cost: a few cycles, more for multi-access variants.
            let accesses = match &config {
                FilterConfig::Bloom(c) => c.accesses_per_lookup() as f64,
                FilterConfig::ClassicBloom { k } => f64::from(*k),
                FilterConfig::Cuckoo(_) => 2.0,
                FilterConfig::Fuse(_) => 3.0,
            };
            let compute = 2.0 + 0.75 * accesses;
            let memory = config.cache_lines_per_lookup() as f64 * per_line;
            records.push(CalibrationRecord {
                config_label: label.clone(),
                filter_bits: bits,
                keys: bits / 10,
                ns_per_lookup: (compute + memory) / 3.0,
                cycles_per_lookup: compute + memory,
                kernel: "synthetic".to_string(),
            });
        }
    }
    CalibrationSet {
        cpu_ghz: 3.0,
        records,
    }
}

/// The default synthetic cache-hierarchy cost model: (filter size in bits,
/// cycles per cache line touched) pairs from L1-resident to DRAM-resident.
#[must_use]
pub fn default_cache_cost_model() -> Vec<(u64, f64)> {
    vec![
        (1 << 17, 1.0),  // 16 KiB: L1
        (1 << 21, 3.0),  // 256 KiB: L2
        (1 << 25, 8.0),  // 4 MiB: L3
        (1 << 29, 40.0), // 64 MiB: DRAM
        (1 << 32, 55.0), // 512 MiB: DRAM + TLB misses
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_skyline() -> Vec<SkylinePoint> {
        let space = ConfigSpace::default();
        let calibration = synthetic_calibration(&space, &default_cache_cost_model());
        let skyline = Skyline::new(space, &calibration);
        skyline.compute(&SkylineGrid::quick())
    }

    #[test]
    fn skyline_covers_the_grid() {
        let points = quick_skyline();
        let grid = SkylineGrid::quick();
        assert_eq!(points.len(), grid.n_values.len() * grid.tw_values.len());
    }

    #[test]
    fn bloom_wins_high_throughput_cuckoo_wins_low_throughput() {
        // The paper's headline result (Figures 1 and 10): at small t_w the
        // performance-optimal filter is a Bloom filter, at large t_w a Cuckoo
        // filter.
        let points = quick_skyline();
        for point in &points {
            if point.tw <= 64.0 {
                assert_eq!(
                    point.best_kind,
                    FilterKind::Bloom,
                    "n={} tw={}: expected Bloom, got {} ({})",
                    point.n,
                    point.tw,
                    point.best_kind,
                    point.best_label
                );
            }
            if point.tw >= 16_000_000.0 {
                assert_eq!(
                    point.best_kind,
                    FilterKind::Cuckoo,
                    "n={} tw={}: expected Cuckoo, got {} ({})",
                    point.n,
                    point.tw,
                    point.best_kind,
                    point.best_label
                );
            }
        }
    }

    #[test]
    fn crossover_moves_right_with_problem_size() {
        // Figure 10: "the t_w-range in which the Bloom filters dominate
        // increases with the problem size" (the Cuckoo filter's second cache
        // line costs more once the filter spills out of cache).
        let points = quick_skyline();
        let crossover = |n: u64| -> f64 {
            points
                .iter()
                .filter(|p| p.n == n && p.best_kind == FilterKind::Cuckoo)
                .map(|p| p.tw)
                .fold(f64::INFINITY, f64::min)
        };
        let small = crossover(1 << 12);
        let large = crossover(1 << 24);
        assert!(
            large >= small,
            "crossover for large n ({large}) should not be left of small n ({small})"
        );
    }

    #[test]
    fn speedups_are_at_least_one_and_bounded_in_practice() {
        let points = quick_skyline();
        for p in &points {
            let speedup = p.speedup_over_other_kind();
            assert!(speedup >= 1.0 - 1e-9, "speedup {speedup} below 1");
        }
        // Figure 11a: somewhere in the high-throughput region Bloom beats
        // Cuckoo by a noticeable factor.
        let max_bloom_speedup = points
            .iter()
            .filter(|p| p.best_kind == FilterKind::Bloom)
            .map(|p| p.speedup_over_other_kind())
            .fold(0.0, f64::max);
        assert!(
            max_bloom_speedup > 1.2,
            "max Bloom speedup {max_bloom_speedup}"
        );
    }

    #[test]
    fn winning_fpr_decreases_with_tw() {
        // Figure 11b: faster-moving workloads tolerate higher f; precision
        // wins as t_w grows.
        let points = quick_skyline();
        let n = 1 << 20;
        let fpr_at = |tw: f64| -> f64 {
            points
                .iter()
                .find(|p| p.n == n && (p.tw - tw).abs() < 1e-9)
                .map(|p| p.best_fpr)
                .unwrap()
        };
        assert!(fpr_at(16.0) >= fpr_at(1_048_576.0));
    }

    #[test]
    fn fuse_enabled_space_takes_the_cold_static_end() {
        // With the immutable family opted in, the skyline's cold (huge t_w)
        // region flips from Cuckoo to fuse wherever the budget sweep covers
        // the structural fuse16 layout (~19 bits/key): its 2^-16 rate at
        // ~18 bits beats every Cuckoo cell's f·t_w by an order of magnitude,
        // and at tiny t_w Bloom's single cache line still wins.
        let space = ConfigSpace::default().with_fuse();
        let calibration = synthetic_calibration(&space, &default_cache_cost_model());
        let skyline = Skyline::new(space, &calibration);
        let points = skyline.compute(&SkylineGrid::quick());
        for point in &points {
            if point.tw <= 64.0 {
                assert_eq!(
                    point.best_kind,
                    FilterKind::Bloom,
                    "n={} tw={}: hot end lost to {}",
                    point.n,
                    point.tw,
                    point.best_label
                );
            }
            if point.tw >= 16_000_000.0 && point.n >= 1 << 16 {
                assert_eq!(
                    point.best_kind,
                    FilterKind::Fuse,
                    "n={} tw={}: cold end lost to {}",
                    point.n,
                    point.tw,
                    point.best_label
                );
                assert!(point.speedup_over_other_kind() > 1.0);
            }
        }
    }

    #[test]
    fn best_operating_point_respects_cuckoo_feasibility() {
        let space = ConfigSpace::default();
        let calibration = synthetic_calibration(&space, &default_cache_cost_model());
        let skyline = Skyline::new(space, &calibration);
        // 16-bit signatures with b = 1 need > 20 bits/key, which the sweep
        // does not offer ⇒ infeasible.
        let infeasible = FilterConfig::Cuckoo(pof_cuckoo::CuckooConfig::new(
            16,
            1,
            pof_cuckoo::CuckooAddressing::PowerOfTwo,
        ));
        assert!(skyline
            .best_operating_point(&infeasible, 1 << 20, 100.0)
            .is_none());
    }
}
