//! A dynamically configured filter: any Bloom variant, Cuckoo filter, or
//! immutable Xor/fuse filter behind one enum, buildable from a
//! [`FilterConfig`].
//!
//! The hot paths of the individual filters stay statically dispatched inside
//! their crates; this enum only adds one match per (batched) call, which is
//! negligible for the batch sizes the advisor and the benchmark harness use.

use crate::configspace::FilterConfig;
use pof_bloom::{BlockedBloom, ClassicBloom};
use pof_cuckoo::CuckooFilter;
use pof_filter::probe::{self, ProbePlan};
use pof_filter::{DeleteOutcome, Filter, FilterKind, SelectionVector};
use pof_xorfuse::FuseFilter;

/// A filter of any supported configuration.
#[derive(Debug, Clone)]
pub enum AnyFilter {
    /// A blocked/register-blocked/sectorized/cache-sectorized Bloom filter.
    Bloom(BlockedBloom),
    /// A classic (unblocked) Bloom filter.
    ClassicBloom(ClassicBloom),
    /// A Cuckoo filter.
    Cuckoo(CuckooFilter),
    /// An immutable Xor/binary-fuse filter. Built from a complete key set
    /// (via [`AnyFilter::build_with_keys`]); in-place mutation is refused, so
    /// stores route changes through snapshot-and-rebuild machinery.
    Fuse(FuseFilter),
}

impl AnyFilter {
    /// Build a filter for `n` keys with a total budget of `bits_per_key · n`
    /// bits, according to `config`.
    ///
    /// For Cuckoo configurations the budget is raised to the configuration's
    /// minimum feasible bits-per-key when necessary (a Cuckoo table cannot be
    /// filled beyond its maximum load factor, §4); callers that must respect
    /// an exact budget should check `FilterConfig::modeled_fpr`, which
    /// reports infeasible budgets as `None`, before building.
    #[must_use]
    pub fn build(config: &FilterConfig, n: usize, bits_per_key: f64) -> Self {
        match config {
            FilterConfig::Bloom(c) => {
                Self::Bloom(BlockedBloom::with_bits_per_key(*c, n, bits_per_key))
            }
            FilterConfig::ClassicBloom { k } => {
                Self::ClassicBloom(ClassicBloom::with_bits_per_key(n, bits_per_key, *k))
            }
            FilterConfig::Cuckoo(c) => {
                // Target at most 98 % of the maximum load factor so that
                // construction reliably succeeds.
                let min_bits =
                    pof_model::cuckoo::min_bits_per_key(c.signature_bits, c.bucket_size) / 0.98;
                Self::Cuckoo(CuckooFilter::with_bits_per_key(
                    *c,
                    n,
                    bits_per_key.max(min_bits),
                ))
            }
            // A fuse filter's size follows from its key set alone; the
            // bits-per-key budget only gated feasibility at recommendation
            // time (`FilterConfig::modeled_fpr`). Built here over the empty
            // set — population goes through `build_with_keys`.
            FilterConfig::Fuse(c) => Self::Fuse(FuseFilter::build(*c, &[])),
        }
    }

    /// Build a filter and populate it with `keys`, returning `None` if any
    /// insert failed (possible for Cuckoo filters at tight budgets).
    ///
    /// This is the *only* way to obtain a populated fuse filter: the family
    /// is constructed by peeling the complete key set in one shot, so the
    /// incremental insert loop the mutable families use does not apply.
    #[must_use]
    pub fn build_with_keys(config: &FilterConfig, keys: &[u32], bits_per_key: f64) -> Option<Self> {
        if let FilterConfig::Fuse(c) = config {
            return Some(Self::Fuse(FuseFilter::build(*c, keys)));
        }
        let mut filter = Self::build(config, keys.len(), bits_per_key);
        for &key in keys {
            if !filter.insert(key) {
                return None;
            }
        }
        Some(filter)
    }

    /// The configuration this filter was built from.
    #[must_use]
    pub fn config(&self) -> FilterConfig {
        match self {
            Self::Bloom(f) => FilterConfig::Bloom(*f.config()),
            Self::ClassicBloom(f) => FilterConfig::ClassicBloom { k: f.k() },
            Self::Cuckoo(f) => FilterConfig::Cuckoo(*f.config()),
            Self::Fuse(f) => FilterConfig::Fuse(f.fuse_config()),
        }
    }

    /// Construction retries the filter needed (seeded re-peels for fuse
    /// filters; always 0 for the mutable families, which never retry).
    #[must_use]
    pub fn construction_retries(&self) -> u64 {
        match self {
            Self::Bloom(_) | Self::ClassicBloom(_) | Self::Cuckoo(_) => 0,
            Self::Fuse(f) => u64::from(f.construction_retries()),
        }
    }

    /// Analytical false-positive rate of this instance given the keys
    /// inserted so far.
    #[must_use]
    pub fn modeled_fpr(&self) -> f64 {
        match self {
            Self::Bloom(f) => f.modeled_fpr(),
            Self::ClassicBloom(f) => f.modeled_fpr(),
            Self::Cuckoo(f) => f.modeled_fpr(),
            Self::Fuse(f) => f.fuse_config().modeled_fpr(),
        }
    }

    /// Name of the batch-lookup kernel in use (`scalar`, `avx2-…`).
    #[must_use]
    pub fn kernel_name(&self) -> &'static str {
        match self {
            Self::Bloom(f) => f.kernel_name(),
            Self::ClassicBloom(_) => "scalar",
            Self::Cuckoo(f) => f.kernel_name(),
            Self::Fuse(_) => "scalar",
        }
    }

    /// Force the scalar batch-lookup path (for SIMD- and staged-speedup
    /// comparisons): disables both the SIMD kernels and the automatic
    /// staged-kernel routing in [`Filter::contains_batch`].
    pub fn force_scalar(&mut self) {
        match self {
            Self::Bloom(f) => f.force_scalar(),
            Self::ClassicBloom(_) => {}
            Self::Cuckoo(f) => f.force_scalar(),
            Self::Fuse(f) => f.force_scalar(),
        }
    }

    /// Batched lookup through the scalar kernel regardless of batch size or
    /// filter footprint (the reference path the staged kernels are pinned
    /// against).
    pub fn contains_batch_scalar(&self, keys: &[u32], sel: &mut SelectionVector) {
        match self {
            Self::Bloom(f) => f.contains_batch_scalar(keys, sel),
            Self::ClassicBloom(f) => f.contains_batch(keys, sel),
            Self::Cuckoo(f) => f.contains_batch_scalar(keys, sel),
            Self::Fuse(f) => f.contains_batch_scalar(keys, sel),
        }
    }

    /// Batched lookup through the staged (hash → prefetch → probe) kernel of
    /// the underlying family, using a caller-owned [`ProbePlan`] for scratch.
    /// The classic Bloom filter has no staged kernel (its probes scatter over
    /// the whole array with data-dependent early exits) and answers through
    /// its ordinary batch path. Selections are identical to
    /// [`Self::contains_batch_scalar`] for every family.
    pub fn contains_batch_staged(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        plan: &mut ProbePlan,
    ) {
        match self {
            Self::Bloom(f) => f.contains_batch_staged(keys, sel, plan),
            Self::ClassicBloom(f) => f.contains_batch(keys, sel),
            Self::Cuckoo(f) => f.contains_batch_staged(keys, sel, plan),
            Self::Fuse(f) => f.contains_batch_staged(keys, sel, plan),
        }
    }

    /// Batched lookup that applies the staged-routing policy with a
    /// caller-owned plan instead of the thread-local one: large batches
    /// against filters past the cache-footprint floor go staged, everything
    /// else takes the ordinary [`Filter::contains_batch`] path. The sharded
    /// store calls this with the plan embedded in its probe scratch so the
    /// serving path stays allocation-free.
    pub fn contains_batch_planned(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        plan: &mut ProbePlan,
    ) {
        if probe::staged_worthwhile_for(self.kind(), keys.len(), self.size_bits() / 8) {
            self.contains_batch_staged(keys, sel, plan);
        } else {
            self.contains_batch(keys, sel);
        }
    }

    /// Prefetch the leading cache lines of the filter's probe storage. The
    /// sharded store uses this to stream the next shard's filter in while
    /// the current shard's key slice is being probed.
    #[inline]
    pub fn prefetch_storage(&self) {
        match self {
            Self::Bloom(f) => f.prefetch_storage(),
            Self::ClassicBloom(f) => f.prefetch_storage(),
            Self::Cuckoo(f) => f.prefetch_storage(),
            Self::Fuse(f) => f.prefetch_storage(),
        }
    }

    /// Attach a counting sidecar to a Bloom-family filter, making
    /// [`Filter::try_delete`] clear bits in place (see
    /// [`pof_bloom::CountingSidecar`]). A no-op for Cuckoo filters, which
    /// delete natively — after this call `supports_delete()` holds for every
    /// *mutable* family (fuse filters stay immutable: no sidecar can carve a
    /// key out of XOR-shared fingerprint slots). Must be called before the
    /// first insert (Bloom counters have to witness every insertion).
    pub fn enable_counting(&mut self) {
        match self {
            Self::Bloom(f) => f.enable_counting(),
            Self::ClassicBloom(f) => f.enable_counting(),
            Self::Cuckoo(_) | Self::Fuse(_) => {}
        }
    }

    /// Heap bytes held by a Bloom counting sidecar (0 without one, and 0 for
    /// Cuckoo filters, whose fingerprints delete without auxiliary state).
    #[must_use]
    pub fn counting_bytes(&self) -> usize {
        match self {
            Self::Bloom(f) => f.counting_bytes(),
            Self::ClassicBloom(f) => f.counting_bytes(),
            Self::Cuckoo(_) | Self::Fuse(_) => 0,
        }
    }

    /// Clone the probe side only: identical lookup answers, but any Bloom
    /// counting sidecar is dropped (the clone reports
    /// `supports_delete() == false` for Bloom variants). The right shape for
    /// published snapshots, which are never deleted from.
    #[must_use]
    pub fn read_only_clone(&self) -> Self {
        match self {
            Self::Bloom(f) => Self::Bloom(f.read_only_clone()),
            Self::ClassicBloom(f) => Self::ClassicBloom(f.read_only_clone()),
            Self::Cuckoo(f) => Self::Cuckoo(f.clone()),
            Self::Fuse(f) => Self::Fuse(f.clone()),
        }
    }
}

impl Filter for AnyFilter {
    fn insert(&mut self, key: u32) -> bool {
        match self {
            Self::Bloom(f) => f.insert(key),
            Self::ClassicBloom(f) => f.insert(key),
            Self::Cuckoo(f) => f.insert(key),
            // Immutable: a no-op `true` for keys already present, `false`
            // (could not accommodate) otherwise — callers rebuild from keys.
            Self::Fuse(f) => f.insert(key),
        }
    }

    fn contains(&self, key: u32) -> bool {
        match self {
            Self::Bloom(f) => f.contains(key),
            Self::ClassicBloom(f) => f.contains(key),
            Self::Cuckoo(f) => f.contains(key),
            Self::Fuse(f) => f.contains(key),
        }
    }

    /// Deletability, exposed uniformly across families: Cuckoo filters delete
    /// one stored signature in place; the Bloom variants report
    /// [`DeleteOutcome::Unsupported`] (their bits are shared between keys) —
    /// so callers can fall back to tombstoning plus a later rebuild — unless
    /// a counting sidecar is attached ([`AnyFilter::enable_counting`]), in
    /// which case they too delete in place.
    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        match self {
            Self::Bloom(f) => f.try_delete(key),
            Self::ClassicBloom(f) => f.try_delete(key),
            Self::Cuckoo(f) => f.try_delete(key),
            // `Unsupported` for present keys (immutable), `NotFound` for
            // absent ones — no-false-negatives proves absence, so stores can
            // skip tombstoning a key that was never there.
            Self::Fuse(f) => f.try_delete(key),
        }
    }

    fn supports_delete(&self) -> bool {
        match self {
            Self::Bloom(f) => f.supports_delete(),
            Self::ClassicBloom(f) => f.supports_delete(),
            Self::Cuckoo(f) => f.supports_delete(),
            Self::Fuse(f) => f.supports_delete(),
        }
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        match self {
            Self::Bloom(f) => f.contains_batch(keys, sel),
            Self::ClassicBloom(f) => f.contains_batch(keys, sel),
            Self::Cuckoo(f) => f.contains_batch(keys, sel),
            Self::Fuse(f) => f.contains_batch(keys, sel),
        }
    }

    fn size_bits(&self) -> u64 {
        match self {
            Self::Bloom(f) => f.size_bits(),
            Self::ClassicBloom(f) => f.size_bits(),
            Self::Cuckoo(f) => f.size_bits(),
            Self::Fuse(f) => f.size_bits(),
        }
    }

    fn kind(&self) -> FilterKind {
        match self {
            Self::Bloom(_) | Self::ClassicBloom(_) => FilterKind::Bloom,
            Self::Cuckoo(_) => FilterKind::Cuckoo,
            Self::Fuse(_) => FilterKind::Fuse,
        }
    }

    fn config_label(&self) -> String {
        match self {
            Self::Bloom(f) => f.config_label(),
            Self::ClassicBloom(f) => f.config_label(),
            Self::Cuckoo(f) => f.config_label(),
            Self::Fuse(f) => f.config_label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configspace::FilterConfig;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    use pof_filter::KeyGen;

    fn sample_configs() -> Vec<FilterConfig> {
        vec![
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::Magic)),
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
            FilterConfig::ClassicBloom { k: 7 },
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
            FilterConfig::Cuckoo(CuckooConfig::new(8, 4, CuckooAddressing::PowerOfTwo)),
        ]
    }

    #[test]
    fn build_insert_lookup_roundtrip() {
        let mut gen = KeyGen::new(41);
        let keys = gen.distinct_keys(10_000);
        for config in sample_configs() {
            // 20 bits/key keeps every configuration feasible (a Cuckoo filter
            // with l = 16, b = 2 needs at least l / 0.84 ≈ 19 bits per key).
            let filter = AnyFilter::build_with_keys(&config, &keys, 20.0)
                .unwrap_or_else(|| panic!("construction failed for {}", config.label()));
            for &key in keys.iter().take(1000) {
                assert!(filter.contains(key), "{}", config.label());
            }
            assert_eq!(filter.config(), config);
            assert!(filter.size_bits() > 0);
            assert!(filter.modeled_fpr() > 0.0 && filter.modeled_fpr() < 1.0);
        }
    }

    #[test]
    fn kind_classification() {
        let bloom = AnyFilter::build(&sample_configs()[0], 100, 10.0);
        assert_eq!(bloom.kind(), FilterKind::Bloom);
        let cuckoo = AnyFilter::build(&sample_configs()[3], 100, 20.0);
        assert_eq!(cuckoo.kind(), FilterKind::Cuckoo);
    }

    #[test]
    fn batch_lookup_dispatches() {
        let mut gen = KeyGen::new(42);
        let keys = gen.distinct_keys(5_000);
        let probes = gen.keys(10_000);
        for config in sample_configs() {
            let filter = AnyFilter::build_with_keys(&config, &keys, 20.0).unwrap();
            let mut sel = SelectionVector::new();
            filter.contains_batch(&probes, &mut sel);
            let expected = probes.iter().filter(|k| filter.contains(**k)).count();
            assert_eq!(sel.len(), expected, "{}", config.label());
        }
    }

    #[test]
    fn deletability_follows_the_family() {
        let mut gen = KeyGen::new(43);
        let keys = gen.distinct_keys(500);
        for config in sample_configs() {
            let mut filter = AnyFilter::build_with_keys(&config, &keys, 24.0).unwrap();
            match filter.kind() {
                FilterKind::Cuckoo => {
                    assert!(filter.supports_delete(), "{}", config.label());
                    assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::Removed);
                    // Deleting a key twice finds nothing the second time.
                    assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::NotFound);
                }
                FilterKind::Bloom => {
                    assert!(!filter.supports_delete(), "{}", config.label());
                    assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::Unsupported);
                    assert!(filter.contains(keys[0]), "{}", config.label());
                }
                FilterKind::Fuse => unreachable!("sample_configs carries no fuse entries"),
            }
        }
    }

    #[test]
    fn counting_gives_every_family_in_place_deletes() {
        let mut gen = KeyGen::new(44);
        let keys = gen.distinct_keys(500);
        for config in sample_configs() {
            let mut filter = AnyFilter::build(&config, keys.len(), 24.0);
            filter.enable_counting();
            assert!(filter.supports_delete(), "{}", config.label());
            for &key in &keys {
                assert!(filter.insert(key));
            }
            assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::Removed);
            assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::NotFound);
            for &key in &keys[1..] {
                assert!(filter.contains(key), "{}", config.label());
            }
            match filter.kind() {
                FilterKind::Bloom => assert!(filter.counting_bytes() > 0),
                FilterKind::Cuckoo => assert_eq!(filter.counting_bytes(), 0),
                FilterKind::Fuse => unreachable!("sample_configs carries no fuse entries"),
            }
            // The read-only clone answers identically; Bloom clones drop the
            // sidecar (and with it deletability), Cuckoo clones keep theirs.
            let clone = filter.read_only_clone();
            assert_eq!(clone.counting_bytes(), 0);
            assert_eq!(
                clone.supports_delete(),
                filter.kind() == FilterKind::Cuckoo,
                "{}",
                config.label()
            );
            for &key in &keys[1..] {
                assert!(clone.contains(key), "{}", config.label());
            }
        }
    }

    #[test]
    fn fuse_dispatches_as_an_immutable_family() {
        let mut gen = KeyGen::new(45);
        let keys = gen.distinct_keys(5_000);
        let config = FilterConfig::Fuse(pof_xorfuse::FuseConfig::fuse8());
        let mut filter = AnyFilter::build_with_keys(&config, &keys, 10.0).expect("fuse builds");
        assert_eq!(filter.kind(), FilterKind::Fuse);
        assert_eq!(filter.config(), config);
        assert_eq!(filter.kernel_name(), "scalar");
        assert!((filter.modeled_fpr() - 1.0 / 256.0).abs() < 1e-12);
        for &key in &keys {
            assert!(filter.contains(key), "fuse lost an inserted key");
        }
        // Batch lookups agree with point lookups through the enum dispatch.
        let probes = gen.keys(10_000);
        let mut sel = SelectionVector::new();
        filter.contains_batch(&probes, &mut sel);
        let expected = probes.iter().filter(|k| filter.contains(**k)).count();
        assert_eq!(sel.len(), expected);
        // Immutability surfaces uniformly: present keys refuse deletion, a
        // provably absent key reports NotFound, inserts of new keys refuse.
        assert!(!filter.supports_delete());
        assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::Unsupported);
        assert!(filter.contains(keys[0]));
        let absent = (0..u32::MAX)
            .find(|k| !filter.contains(*k))
            .expect("fpr < 1 leaves a negative");
        assert_eq!(filter.try_delete(absent), DeleteOutcome::NotFound);
        assert!(!filter.insert(absent));
        assert!(filter.insert(keys[0]), "present-key insert is a no-op true");
        // Counting sidecars don't apply; clones stay cheap and read-only.
        filter.enable_counting();
        assert!(!filter.supports_delete());
        assert_eq!(filter.counting_bytes(), 0);
        let clone = filter.read_only_clone();
        assert!(clone.contains(keys[0]));
        assert_eq!(clone.construction_retries(), filter.construction_retries());
        // Mutable families report zero construction retries.
        let bloom = AnyFilter::build(&sample_configs()[0], 100, 10.0);
        assert_eq!(bloom.construction_retries(), 0);
    }

    #[test]
    fn force_scalar_switches_kernel() {
        let mut filter = AnyFilter::build(&sample_configs()[0], 1000, 10.0);
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_ne!(filter.kernel_name(), "scalar");
        }
        filter.force_scalar();
        assert_eq!(filter.kernel_name(), "scalar");
    }
}
