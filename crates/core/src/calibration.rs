//! Per-platform calibration of filter lookup costs (§2, §5.1).
//!
//! The false-positive rate `f` has an analytical model, but the lookup cost
//! `t_l` is "a physical cost metric … harder to predict, as it depends on the
//! hardware" (§2). The paper therefore proposes a one-time calibration phase
//! of microbenchmarks on the target platform. [`Calibrator`] implements that
//! phase: it builds each candidate configuration at a set of filter sizes
//! spanning L1 through DRAM, measures the batched lookup throughput, and
//! records nanoseconds and (estimated) CPU cycles per lookup. The resulting
//! [`CalibrationSet`] interpolates `t_l` for any filter size and is the
//! measured input of the skyline computation.

use crate::anyfilter::AnyFilter;
use crate::configspace::FilterConfig;
use pof_filter::{Filter, KeyGen, SelectionVector};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured point: a configuration at a concrete filter size.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CalibrationRecord {
    /// Label of the configuration (see `FilterConfig::label`).
    pub config_label: String,
    /// Actual filter size in bits.
    pub filter_bits: u64,
    /// Number of keys the filter was built with.
    pub keys: u64,
    /// Measured nanoseconds per lookup (batched path).
    pub ns_per_lookup: f64,
    /// Measured cost converted to CPU cycles per lookup.
    pub cycles_per_lookup: f64,
    /// Which kernel was active (`scalar`, `avx2-…`).
    pub kernel: String,
}

/// Calibration results for a set of configurations over a size sweep.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CalibrationSet {
    /// Estimated CPU frequency in GHz used for the cycle conversion.
    pub cpu_ghz: f64,
    /// All measured points.
    pub records: Vec<CalibrationRecord>,
}

impl CalibrationSet {
    /// Interpolated lookup cost (cycles) of `config_label` for a filter of
    /// `filter_bits` bits; piecewise-linear in `log2(size)` between measured
    /// points, clamped at the ends. Returns `None` if the configuration was
    /// never calibrated.
    #[must_use]
    pub fn lookup_cycles(&self, config_label: &str, filter_bits: f64) -> Option<f64> {
        let mut points: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter(|r| r.config_label == config_label)
            .map(|r| ((r.filter_bits as f64).log2(), r.cycles_per_lookup))
            .collect();
        if points.is_empty() {
            return None;
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let x = filter_bits.max(1.0).log2();
        if x <= points[0].0 {
            return Some(points[0].1);
        }
        if x >= points[points.len() - 1].0 {
            return Some(points[points.len() - 1].1);
        }
        for window in points.windows(2) {
            let (x0, y0) = window[0];
            let (x1, y1) = window[1];
            if x >= x0 && x <= x1 {
                let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
                return Some(y0 + t * (y1 - y0));
            }
        }
        Some(points[points.len() - 1].1)
    }

    /// Serialize to JSON (used to persist the one-time calibration).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("calibration serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Microbenchmark driver for filter lookup costs.
#[derive(Debug, Clone, Copy)]
pub struct Calibrator {
    /// Number of probe keys per measurement.
    pub probe_count: usize,
    /// Number of timed repetitions (the minimum is reported).
    pub repetitions: usize,
    /// Number of keys inserted into each measured filter, as a fraction that
    /// determines `n` from the filter size and a 10 bits/key budget.
    pub bits_per_key: f64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Self {
            probe_count: 64 * 1024,
            repetitions: 3,
            bits_per_key: 12.0,
        }
    }
}

impl Calibrator {
    /// Estimate the CPU frequency (GHz) with a short spin of known work.
    ///
    /// The estimate only affects the ns→cycles conversion, not any relative
    /// comparison; it is deliberately cheap rather than precise.
    #[must_use]
    pub fn estimate_cpu_ghz() -> f64 {
        // Time a fixed number of dependent multiply-adds. On modern cores the
        // dependent chain retires ~1 imul per 3 cycles; calibrate with that.
        const ITERS: u64 = 20_000_000;
        let start = Instant::now();
        let mut acc: u64 = 0x9E37_79B9;
        for i in 0..ITERS {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        let cycles = ITERS as f64 * 3.0;
        (cycles / elapsed / 1e9).clamp(0.5, 6.0)
    }

    /// Measure one configuration at one target filter size.
    #[must_use]
    pub fn measure(
        &self,
        config: &FilterConfig,
        filter_bits: u64,
        cpu_ghz: f64,
    ) -> CalibrationRecord {
        let n = ((filter_bits as f64 / self.bits_per_key) as usize).max(64);
        let mut gen = KeyGen::new(0xC0FFEE);
        let build_keys = gen.distinct_keys(n);
        let mut filter = AnyFilter::build(config, n, self.bits_per_key);
        for &key in &build_keys {
            filter.insert(key);
        }
        let probes = gen.keys(self.probe_count);
        let mut sel = SelectionVector::with_capacity(self.probe_count);

        // Warm up caches and the branch predictor once.
        sel.clear();
        filter.contains_batch(&probes, &mut sel);

        let mut best_ns = f64::INFINITY;
        for _ in 0..self.repetitions {
            sel.clear();
            let start = Instant::now();
            filter.contains_batch(&probes, &mut sel);
            let elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(sel.len());
            best_ns = best_ns.min(elapsed * 1e9 / self.probe_count as f64);
        }

        CalibrationRecord {
            config_label: config.label(),
            filter_bits: filter.size_bits(),
            keys: n as u64,
            ns_per_lookup: best_ns,
            cycles_per_lookup: best_ns * cpu_ghz,
            kernel: filter.kernel_name().to_string(),
        }
    }

    /// Calibrate a set of configurations over a sweep of filter sizes.
    #[must_use]
    pub fn calibrate(&self, configs: &[FilterConfig], filter_sizes_bits: &[u64]) -> CalibrationSet {
        let cpu_ghz = Self::estimate_cpu_ghz();
        let mut records = Vec::with_capacity(configs.len() * filter_sizes_bits.len());
        for config in configs {
            for &bits in filter_sizes_bits {
                records.push(self.measure(config, bits, cpu_ghz));
            }
        }
        CalibrationSet { cpu_ghz, records }
    }

    /// The default size sweep: L1-resident through DRAM-resident filters.
    #[must_use]
    pub fn default_size_sweep() -> Vec<u64> {
        // 16 KiB, 256 KiB, 4 MiB, 64 MiB (in bits).
        vec![16 << 13, 256 << 13, 4 << 23, 64 << 23]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_cuckoo::CuckooConfig;

    fn small_calibrator() -> Calibrator {
        Calibrator {
            probe_count: 4_096,
            repetitions: 1,
            bits_per_key: 12.0,
        }
    }

    #[test]
    fn cpu_frequency_estimate_is_plausible() {
        let ghz = Calibrator::estimate_cpu_ghz();
        assert!((0.5..=6.0).contains(&ghz), "estimated {ghz} GHz");
    }

    #[test]
    fn measurement_produces_positive_costs() {
        let calibrator = small_calibrator();
        let config =
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo));
        let record = calibrator.measure(&config, 1 << 17, 3.0);
        assert!(record.ns_per_lookup > 0.0);
        assert!(record.cycles_per_lookup > 0.0);
        assert!(record.filter_bits >= 1 << 17);
        assert_eq!(record.config_label, config.label());
    }

    #[test]
    fn calibration_set_interpolates_between_sizes() {
        let label = "synthetic";
        let set = CalibrationSet {
            cpu_ghz: 3.0,
            records: vec![
                CalibrationRecord {
                    config_label: label.to_string(),
                    filter_bits: 1 << 10,
                    keys: 100,
                    ns_per_lookup: 1.0,
                    cycles_per_lookup: 4.0,
                    kernel: "scalar".to_string(),
                },
                CalibrationRecord {
                    config_label: label.to_string(),
                    filter_bits: 1 << 20,
                    keys: 100_000,
                    ns_per_lookup: 10.0,
                    cycles_per_lookup: 40.0,
                    kernel: "scalar".to_string(),
                },
            ],
        };
        // Clamped below and above.
        assert_eq!(set.lookup_cycles(label, 512.0), Some(4.0));
        assert_eq!(set.lookup_cycles(label, (1u64 << 25) as f64), Some(40.0));
        // Halfway in log space.
        let mid = set.lookup_cycles(label, (1u64 << 15) as f64).unwrap();
        assert!((mid - 22.0).abs() < 1e-9, "mid {mid}");
        // Unknown labels yield None.
        assert_eq!(set.lookup_cycles("unknown", 1e6), None);
    }

    #[test]
    fn calibration_roundtrips_through_json() {
        let calibrator = small_calibrator();
        let configs = vec![
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
            FilterConfig::Cuckoo(CuckooConfig::representative()),
        ];
        let set = calibrator.calibrate(&configs, &[1 << 16, 1 << 18]);
        assert_eq!(set.records.len(), 4);
        let json = set.to_json();
        let restored = CalibrationSet::from_json(&json).unwrap();
        assert_eq!(restored.records.len(), set.records.len());
        for (a, b) in restored.records.iter().zip(&set.records) {
            assert_eq!(a.config_label, b.config_label);
            assert_eq!(a.filter_bits, b.filter_bits);
            assert_eq!(a.kernel, b.kernel);
            // Floating-point timings survive the round trip up to printing precision.
            assert!((a.ns_per_lookup - b.ns_per_lookup).abs() < 1e-6);
            assert!((a.cycles_per_lookup - b.cycles_per_lookup).abs() < 1e-6);
        }
        assert!(restored.cpu_ghz > 0.0);
    }

    #[test]
    fn larger_filters_are_not_cheaper_to_probe() {
        // Sanity check of the measurement machinery: a DRAM-sized filter must
        // not measure (meaningfully) faster than an L1-resident one.
        let calibrator = Calibrator {
            probe_count: 32 * 1024,
            repetitions: 2,
            bits_per_key: 12.0,
        };
        let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::PowerOfTwo,
        ));
        let small = calibrator.measure(&config, 1 << 17, 3.0);
        let large = calibrator.measure(&config, 1 << 28, 3.0);
        assert!(
            large.ns_per_lookup > small.ns_per_lookup * 0.8,
            "large {} vs small {}",
            large.ns_per_lookup,
            small.ns_per_lookup
        );
    }
}
