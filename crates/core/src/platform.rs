//! Host platform description (Table 1 of the paper).
//!
//! The paper's Table 1 lists the hardware platforms the evaluation ran on
//! (model, core count, SIMD capabilities, cache sizes). This module gathers
//! the same facts for the machine running the reproduction so EXPERIMENTS.md
//! can record the substitution explicitly.

use serde::{Deserialize, Serialize};

/// Description of the host platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// CPU model name as reported by the operating system.
    pub model_name: String,
    /// Number of logical CPUs available to the process.
    pub logical_cpus: usize,
    /// Detected SIMD instruction-set extensions relevant to the kernels.
    pub simd_features: Vec<String>,
    /// Cache sizes in bytes, per level, where the OS exposes them.
    pub cache_bytes: Vec<(String, u64)>,
}

impl Platform {
    /// Detect the current host.
    #[must_use]
    pub fn detect() -> Self {
        Self {
            model_name: read_model_name(),
            logical_cpus: std::thread::available_parallelism().map_or(1, usize::from),
            simd_features: detect_simd(),
            cache_bytes: read_caches(),
        }
    }

    /// Render the platform as the rows of a Table-1-style listing.
    #[must_use]
    pub fn table_rows(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            ("model".to_string(), self.model_name.clone()),
            ("logical CPUs".to_string(), self.logical_cpus.to_string()),
            ("SIMD".to_string(), self.simd_features.join(", ")),
        ];
        for (name, bytes) in &self.cache_bytes {
            rows.push((name.clone(), format!("{} KiB", bytes / 1024)));
        }
        rows
    }
}

fn read_model_name() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|content| {
            content.lines().find_map(|line| {
                line.strip_prefix("model name")
                    .and_then(|rest| rest.split(':').nth(1))
                    .map(|name| name.trim().to_string())
            })
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn detect_simd() -> Vec<String> {
    let mut features = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, detected) in [
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx512bw", std::arch::is_x86_feature_detected!("avx512bw")),
            ("bmi2", std::arch::is_x86_feature_detected!("bmi2")),
        ] {
            if detected {
                features.push(name.to_string());
            }
        }
    }
    if features.is_empty() {
        features.push("scalar only".to_string());
    }
    features
}

fn read_caches() -> Vec<(String, u64)> {
    let mut caches = Vec::new();
    for index in 0..6 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let Ok(level) = std::fs::read_to_string(format!("{base}/level")) else {
            break;
        };
        let cache_type = std::fs::read_to_string(format!("{base}/type")).unwrap_or_default();
        if cache_type.trim() == "Instruction" {
            continue;
        }
        let Ok(size) = std::fs::read_to_string(format!("{base}/size")) else {
            continue;
        };
        let size = size.trim();
        let bytes = if let Some(kib) = size.strip_suffix('K') {
            kib.parse::<u64>().unwrap_or(0) * 1024
        } else if let Some(mib) = size.strip_suffix('M') {
            mib.parse::<u64>().unwrap_or(0) * 1024 * 1024
        } else {
            size.parse::<u64>().unwrap_or(0)
        };
        caches.push((format!("L{} cache", level.trim()), bytes));
    }
    caches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_produces_nonempty_description() {
        let platform = Platform::detect();
        assert!(!platform.model_name.is_empty());
        assert!(platform.logical_cpus >= 1);
        assert!(!platform.simd_features.is_empty());
        let rows = platform.table_rows();
        assert!(rows.len() >= 3);
        assert!(rows.iter().any(|(k, _)| k == "model"));
    }

    #[test]
    fn platform_serializes_to_json() {
        let platform = Platform::detect();
        let json = serde_json::to_string(&platform).unwrap();
        let restored: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.model_name, platform.model_name);
    }
}
