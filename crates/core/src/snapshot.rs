//! Snapshot codec for [`AnyFilter`]: every family serialized to plain
//! little-endian pages and rebuilt from them via the family crates'
//! raw-parts `restore` constructors.
//!
//! The wire format mirrors the in-memory layout one-to-one — a Bloom bit
//! array, a Cuckoo packed-signature array or a fuse fingerprint array is
//! written as its backing words, little-endian — so a persisted shard
//! snapshot "deserializes" as a straight page-cache copy, and the scalar
//! state around it (configuration, key counts, the Cuckoo victim RNG, a
//! counting sidecar) is a handful of fixed-width fields. Layout geometry
//! (block counts, bucket counts, fuse segments) is *re-derived* from the
//! persisted logical size through the same constructors a live build uses;
//! the restore constructors reject any disagreement with the persisted array
//! lengths, so a snapshot written by a different configuration can never be
//! silently misinterpreted.

use crate::anyfilter::AnyFilter;
use crate::configspace::FilterConfig;
use pof_bloom::{Addressing, BlockedBloom, BloomConfig, ClassicBloom, CountingSidecar};
use pof_cuckoo::{CuckooAddressing, CuckooConfig, CuckooFilter};
use pof_filter::Filter;
use pof_persist::codec::{put_bytes, put_u32, put_u64, put_u64_words, put_u8, CodecError, Cursor};
use pof_xorfuse::{Fuse16, Fuse8, FuseFilter};

const TAG_BLOOM: u8 = 1;
const TAG_CLASSIC: u8 = 2;
const TAG_CUCKOO: u8 = 3;
const TAG_FUSE: u8 = 4;

fn invalid(what: &'static str) -> CodecError {
    CodecError::Invalid(what)
}

fn encode_sidecar(out: &mut Vec<u8>, sidecar: Option<&CountingSidecar>) {
    match sidecar {
        None => put_u8(out, 0),
        Some(sidecar) => {
            let (promoted, counters, stuck) = sidecar.snapshot_parts();
            put_u8(out, 1);
            put_u8(out, u8::from(promoted));
            put_bytes(out, counters);
            put_u64_words(out, &stuck);
        }
    }
}

fn decode_sidecar(cur: &mut Cursor<'_>, bits: u64) -> Result<Option<CountingSidecar>, CodecError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => {
            let promoted = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(invalid("sidecar promotion flag")),
            };
            let counters = cur.byte_slice()?;
            let stuck = cur.u64_words()?;
            CountingSidecar::restore(bits, promoted, counters, stuck)
                .map(Some)
                .map_err(CodecError::Invalid)
        }
        _ => Err(invalid("sidecar presence flag")),
    }
}

fn encode_bloom_addressing(out: &mut Vec<u8>, addressing: Addressing) {
    put_u8(
        out,
        match addressing {
            Addressing::PowerOfTwo => 0,
            Addressing::Magic => 1,
        },
    );
}

fn decode_bloom_addressing(cur: &mut Cursor<'_>) -> Result<Addressing, CodecError> {
    match cur.u8()? {
        0 => Ok(Addressing::PowerOfTwo),
        1 => Ok(Addressing::Magic),
        _ => Err(invalid("Bloom addressing tag")),
    }
}

/// Serialize `filter` — configuration, scalar state and raw storage words —
/// onto `out`. The inverse of [`decode_filter`].
pub fn encode_filter(filter: &AnyFilter, out: &mut Vec<u8>) {
    match filter {
        AnyFilter::Bloom(f) => {
            let config = *f.config();
            put_u8(out, TAG_BLOOM);
            put_u32(out, config.block_bits);
            put_u32(out, config.sector_bits);
            put_u32(out, config.groups);
            put_u32(out, config.k);
            encode_bloom_addressing(out, config.addressing);
            put_u64(out, f.size_bits());
            put_u64(out, f.keys_inserted());
            put_u64_words(out, f.snapshot_words());
            encode_sidecar(out, f.counting_sidecar());
        }
        AnyFilter::ClassicBloom(f) => {
            put_u8(out, TAG_CLASSIC);
            put_u32(out, f.k());
            put_u64(out, f.size_bits());
            put_u64(out, f.keys_inserted());
            put_u64_words(out, f.snapshot_words());
            encode_sidecar(out, f.counting_sidecar());
        }
        AnyFilter::Cuckoo(f) => {
            let config = *f.config();
            let (occupied, keys_inserted, victim_rng, stash) = f.snapshot_parts();
            put_u8(out, TAG_CUCKOO);
            put_u32(out, config.signature_bits);
            put_u32(out, config.bucket_size);
            put_u8(
                out,
                match config.addressing {
                    CuckooAddressing::PowerOfTwo => 0,
                    CuckooAddressing::Magic => 1,
                },
            );
            put_u32(out, f.num_buckets());
            put_u64(out, occupied);
            put_u64(out, keys_inserted);
            put_u32(out, victim_rng);
            match stash {
                None => put_u8(out, 0),
                Some((bucket, signature)) => {
                    put_u8(out, 1);
                    put_u32(out, bucket);
                    put_u32(out, signature);
                }
            }
            put_u64_words(out, f.snapshot_words());
        }
        AnyFilter::Fuse(f) => {
            put_u8(out, TAG_FUSE);
            put_u32(out, f.fingerprint_bits());
            match f {
                FuseFilter::Fp8(f) => {
                    let (seed, keys, retries) = f.snapshot_parts();
                    put_u64(out, seed);
                    put_u64(out, keys as u64);
                    put_u32(out, retries);
                    put_bytes(out, f.snapshot_fingerprints());
                }
                FuseFilter::Fp16(f) => {
                    let (seed, keys, retries) = f.snapshot_parts();
                    put_u64(out, seed);
                    put_u64(out, keys as u64);
                    put_u32(out, retries);
                    let fingerprints = f.snapshot_fingerprints();
                    put_u64(out, fingerprints.len() as u64 * 2);
                    out.reserve(fingerprints.len() * 2);
                    for &fp in fingerprints {
                        out.extend_from_slice(&fp.to_le_bytes());
                    }
                }
            }
        }
    }
}

fn decode_usize(v: u64, what: &'static str) -> Result<usize, CodecError> {
    usize::try_from(v).map_err(|_| invalid(what))
}

/// Rebuild a filter from the bytes [`encode_filter`] wrote, advancing `cur`
/// past them. Every geometry and length claim in the payload is re-derived
/// and cross-checked before any array is trusted.
pub fn decode_filter(cur: &mut Cursor<'_>) -> Result<AnyFilter, CodecError> {
    match cur.u8()? {
        TAG_BLOOM => {
            let config = BloomConfig {
                block_bits: cur.u32()?,
                sector_bits: cur.u32()?,
                groups: cur.u32()?,
                k: cur.u32()?,
                addressing: decode_bloom_addressing(cur)?,
            };
            config
                .validate()
                .map_err(|_| invalid("Bloom configuration"))?;
            let m_bits = cur.u64()?;
            let keys_inserted = cur.u64()?;
            let words = cur.u64_words()?;
            let counting = decode_sidecar(cur, m_bits)?;
            BlockedBloom::restore(config, m_bits, keys_inserted, words, counting)
                .map(AnyFilter::Bloom)
                .map_err(CodecError::Invalid)
        }
        TAG_CLASSIC => {
            let k = cur.u32()?;
            if !(1..=32).contains(&k) {
                return Err(invalid("classic Bloom hash count"));
            }
            let m_bits = cur.u64()?;
            if m_bits == 0 {
                return Err(invalid("classic Bloom size"));
            }
            let keys_inserted = cur.u64()?;
            let words = cur.u64_words()?;
            let counting = decode_sidecar(cur, m_bits)?;
            ClassicBloom::restore(m_bits, k, keys_inserted, words, counting)
                .map(AnyFilter::ClassicBloom)
                .map_err(CodecError::Invalid)
        }
        TAG_CUCKOO => {
            let signature_bits = cur.u32()?;
            let bucket_size = cur.u32()?;
            let addressing = match cur.u8()? {
                0 => CuckooAddressing::PowerOfTwo,
                1 => CuckooAddressing::Magic,
                _ => return Err(invalid("Cuckoo addressing tag")),
            };
            let config = CuckooConfig::new(signature_bits, bucket_size, addressing);
            config
                .validate()
                .map_err(|_| invalid("Cuckoo configuration"))?;
            let num_buckets = cur.u32()?;
            if num_buckets == 0 {
                return Err(invalid("Cuckoo bucket count"));
            }
            let occupied = cur.u64()?;
            let keys_inserted = cur.u64()?;
            let victim_rng = cur.u32()?;
            let stash = match cur.u8()? {
                0 => None,
                1 => Some((cur.u32()?, cur.u32()?)),
                _ => return Err(invalid("Cuckoo stash flag")),
            };
            let words = cur.u64_words()?;
            CuckooFilter::restore(
                config,
                num_buckets,
                words,
                (occupied, keys_inserted, victim_rng, stash),
            )
            .map(AnyFilter::Cuckoo)
            .map_err(CodecError::Invalid)
        }
        TAG_FUSE => {
            let bits = cur.u32()?;
            let seed = cur.u64()?;
            let keys = decode_usize(cur.u64()?, "fuse key count")?;
            let retries = cur.u32()?;
            let raw = cur.byte_slice()?;
            match bits {
                8 => Fuse8::restore(seed, keys, retries, raw.into_boxed_slice())
                    .map(|f| AnyFilter::Fuse(FuseFilter::Fp8(f)))
                    .map_err(CodecError::Invalid),
                16 => {
                    if raw.len() % 2 != 0 {
                        return Err(invalid("fuse16 fingerprint byte count"));
                    }
                    let fingerprints: Box<[u16]> = raw
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
                        .collect();
                    Fuse16::restore(seed, keys, retries, fingerprints)
                        .map(|f| AnyFilter::Fuse(FuseFilter::Fp16(f)))
                        .map_err(CodecError::Invalid)
                }
                _ => Err(invalid("fuse fingerprint width")),
            }
        }
        _ => Err(invalid("filter family tag")),
    }
}

/// Serialize just a [`FilterConfig`] (used where a persisted store must
/// remember the configuration of a shard that currently has no snapshot).
pub fn encode_config(config: &FilterConfig, out: &mut Vec<u8>) {
    match config {
        FilterConfig::Bloom(c) => {
            put_u8(out, TAG_BLOOM);
            put_u32(out, c.block_bits);
            put_u32(out, c.sector_bits);
            put_u32(out, c.groups);
            put_u32(out, c.k);
            encode_bloom_addressing(out, c.addressing);
        }
        FilterConfig::ClassicBloom { k } => {
            put_u8(out, TAG_CLASSIC);
            put_u32(out, *k);
        }
        FilterConfig::Cuckoo(c) => {
            put_u8(out, TAG_CUCKOO);
            put_u32(out, c.signature_bits);
            put_u32(out, c.bucket_size);
            put_u8(
                out,
                match c.addressing {
                    CuckooAddressing::PowerOfTwo => 0,
                    CuckooAddressing::Magic => 1,
                },
            );
        }
        FilterConfig::Fuse(c) => {
            put_u8(out, TAG_FUSE);
            put_u32(out, c.fingerprint_bits());
        }
    }
}

/// Inverse of [`encode_config`].
pub fn decode_config(cur: &mut Cursor<'_>) -> Result<FilterConfig, CodecError> {
    match cur.u8()? {
        TAG_BLOOM => {
            let config = BloomConfig {
                block_bits: cur.u32()?,
                sector_bits: cur.u32()?,
                groups: cur.u32()?,
                k: cur.u32()?,
                addressing: decode_bloom_addressing(cur)?,
            };
            config
                .validate()
                .map_err(|_| invalid("Bloom configuration"))?;
            Ok(FilterConfig::Bloom(config))
        }
        TAG_CLASSIC => {
            let k = cur.u32()?;
            if !(1..=32).contains(&k) {
                return Err(invalid("classic Bloom hash count"));
            }
            Ok(FilterConfig::ClassicBloom { k })
        }
        TAG_CUCKOO => {
            let signature_bits = cur.u32()?;
            let bucket_size = cur.u32()?;
            let addressing = match cur.u8()? {
                0 => CuckooAddressing::PowerOfTwo,
                1 => CuckooAddressing::Magic,
                _ => return Err(invalid("Cuckoo addressing tag")),
            };
            let config = CuckooConfig::new(signature_bits, bucket_size, addressing);
            config
                .validate()
                .map_err(|_| invalid("Cuckoo configuration"))?;
            Ok(FilterConfig::Cuckoo(config))
        }
        TAG_FUSE => {
            let bits = cur.u32()?;
            if bits != 8 && bits != 16 {
                return Err(invalid("fuse fingerprint width"));
            }
            Ok(FilterConfig::Fuse(pof_xorfuse::FuseConfig::new(bits)))
        }
        _ => Err(invalid("filter family tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_filter::{DeleteOutcome, KeyGen, SelectionVector};

    fn sample_configs() -> Vec<FilterConfig> {
        vec![
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::Magic)),
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
            FilterConfig::ClassicBloom { k: 7 },
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
            FilterConfig::Cuckoo(CuckooConfig::new(8, 4, CuckooAddressing::PowerOfTwo)),
            FilterConfig::Fuse(pof_xorfuse::FuseConfig::fuse8()),
            FilterConfig::Fuse(pof_xorfuse::FuseConfig::fuse16()),
        ]
    }

    fn roundtrip(filter: &AnyFilter) -> AnyFilter {
        let mut bytes = Vec::new();
        encode_filter(filter, &mut bytes);
        let mut cur = Cursor::new(&bytes);
        let restored = decode_filter(&mut cur).expect("decode");
        cur.finish().expect("codec consumed exactly its bytes");
        restored
    }

    #[test]
    fn every_family_roundtrips_probe_identically() {
        let mut gen = KeyGen::new(7);
        let keys = gen.distinct_keys(4_000);
        let probes = gen.keys(20_000);
        for config in sample_configs() {
            let filter =
                AnyFilter::build_with_keys(&config, &keys, 24.0).expect("construction succeeds");
            let restored = roundtrip(&filter);
            assert_eq!(restored.config(), filter.config(), "{}", config.label());
            assert_eq!(restored.size_bits(), filter.size_bits());
            let mut sel_a = SelectionVector::new();
            let mut sel_b = SelectionVector::new();
            filter.contains_batch_scalar(&probes, &mut sel_a);
            restored.contains_batch_scalar(&probes, &mut sel_b);
            assert_eq!(
                sel_a.as_slice(),
                sel_b.as_slice(),
                "restored filter must answer bit-for-bit identically ({})",
                config.label()
            );
        }
    }

    #[test]
    fn counting_sidecar_survives_the_roundtrip() {
        let mut gen = KeyGen::new(8);
        let keys = gen.distinct_keys(2_000);
        let config = FilterConfig::Bloom(BloomConfig::register_blocked(64, 5, Addressing::Magic));
        let mut filter = AnyFilter::build(&config, keys.len(), 16.0);
        filter.enable_counting();
        for &key in &keys {
            assert!(filter.insert(key));
        }
        let mut restored = roundtrip(&filter);
        assert!(restored.supports_delete(), "sidecar must survive");
        // Deletes keep working after restore, with no false negatives.
        for &key in &keys[..500] {
            assert_eq!(restored.try_delete(key), DeleteOutcome::Removed);
        }
        for &key in &keys[500..] {
            assert!(restored.contains(key));
        }
    }

    #[test]
    fn cuckoo_deletes_and_eviction_state_survive() {
        let mut gen = KeyGen::new(9);
        let keys = gen.distinct_keys(3_000);
        let config = FilterConfig::Cuckoo(CuckooConfig::representative());
        let mut filter = AnyFilter::build_with_keys(&config, &keys, 24.0).unwrap();
        for &key in &keys[..100] {
            assert_eq!(filter.try_delete(key), DeleteOutcome::Removed);
        }
        let mut restored = roundtrip(&filter);
        for &key in &keys[100..] {
            assert!(restored.contains(key));
        }
        for &key in &keys[100..200] {
            assert_eq!(restored.try_delete(key), DeleteOutcome::Removed);
        }
        // Restored filters accept further inserts.
        for &key in &keys[..100] {
            assert!(restored.insert(key));
        }
        for &key in keys[..100].iter().chain(&keys[200..]) {
            assert!(restored.contains(key));
        }
    }

    #[test]
    fn config_codec_roundtrips() {
        for config in sample_configs() {
            let mut bytes = Vec::new();
            encode_config(&config, &mut bytes);
            let mut cur = Cursor::new(&bytes);
            assert_eq!(decode_config(&mut cur).unwrap(), config);
            cur.finish().unwrap();
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_misread() {
        let mut gen = KeyGen::new(10);
        let keys = gen.distinct_keys(1_000);
        let filter = AnyFilter::build_with_keys(
            &FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::Magic)),
            &keys,
            16.0,
        )
        .unwrap();
        let mut bytes = Vec::new();
        encode_filter(&filter, &mut bytes);

        // Unknown family tag.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(decode_filter(&mut Cursor::new(&bad)).is_err());
        // Truncation anywhere must surface as an error.
        for cut in [1usize, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_filter(&mut Cursor::new(&bytes[..cut])).is_err());
        }
    }
}
