//! The filter configuration space swept by the performance-optimal skylines.
//!
//! §6 of the paper enumerates, per filter type, the parameters considered:
//! Bloom filters with `k ∈ [1, 16]`, block sizes of 4–64 bytes, sector sizes
//! of 1–64 bytes, word sizes of 32/64 bits and group counts `z ∈ {2, 4, 8}`;
//! Cuckoo filters with signature lengths `l ∈ {4, 8, 12, 16}` and bucket
//! sizes `b ∈ {1, 2, 4}`. [`ConfigSpace`] generates that grid (full or a
//! reduced "quick" version for laptop-scale runs), filtering out the invalid
//! combinations the paper also excludes.

use pof_bloom::{Addressing, BloomConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::FilterKind;

/// A point in the configuration space: the filter type plus its parameters
/// (excluding the size `m`, which the skyline sweeps separately).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterConfig {
    /// Any blocked Bloom filter variant.
    Bloom(BloomConfig),
    /// The classic (unblocked) Bloom filter baseline.
    ClassicBloom {
        /// Number of hash functions.
        k: u32,
    },
    /// A Cuckoo filter.
    Cuckoo(CuckooConfig),
}

impl FilterConfig {
    /// Which family the configuration belongs to.
    #[must_use]
    pub fn kind(&self) -> FilterKind {
        match self {
            Self::Bloom(_) | Self::ClassicBloom { .. } => FilterKind::Bloom,
            Self::Cuckoo(_) => FilterKind::Cuckoo,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Bloom(c) => c.label(),
            Self::ClassicBloom { k } => format!("classic-bloom(k={k})"),
            Self::Cuckoo(c) => c.label(),
        }
    }

    /// Analytical false-positive rate of the configuration at a bits-per-key
    /// budget, or `None` when the configuration cannot represent `n` keys in
    /// that budget (Cuckoo load factor above its maximum).
    #[must_use]
    pub fn modeled_fpr(&self, n: f64, bits_per_key: f64) -> Option<f64> {
        let m = n * bits_per_key;
        match self {
            Self::Bloom(c) => Some(c.modeled_fpr(m, n)),
            Self::ClassicBloom { k } => Some(pof_model::f_std(m, n, *k)),
            Self::Cuckoo(c) => pof_model::cuckoo::f_cuckoo_for_budget(
                bits_per_key,
                c.signature_bits,
                c.bucket_size,
            ),
        }
    }

    /// Number of cache lines a lookup touches (1 for every blocked Bloom
    /// variant, 2 for Cuckoo, `k` for the classic filter). This is the main
    /// driver of the out-of-cache lookup cost difference (Figure 14).
    #[must_use]
    pub fn cache_lines_per_lookup(&self) -> u32 {
        match self {
            Self::Bloom(_) => 1,
            Self::ClassicBloom { k } => *k,
            Self::Cuckoo(_) => 2,
        }
    }
}

/// Generator of the candidate configuration grid.
#[derive(Debug, Clone, Copy)]
pub struct ConfigSpace {
    /// Include magic-modulo variants in addition to power-of-two addressing.
    pub include_magic: bool,
    /// Include the classic Bloom filter baseline.
    pub include_classic: bool,
    /// Reduce the grid to the configurations that ever win in the paper's
    /// skylines (for quick laptop-scale runs).
    pub quick: bool,
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self {
            include_magic: true,
            include_classic: false,
            quick: true,
        }
    }
}

impl ConfigSpace {
    /// The full grid as described in §6 (minus invalid combinations).
    #[must_use]
    pub fn full() -> Self {
        Self {
            include_magic: true,
            include_classic: true,
            quick: false,
        }
    }

    /// All candidate Bloom configurations.
    #[must_use]
    pub fn bloom_configs(&self) -> Vec<BloomConfig> {
        let addressings: &[Addressing] = if self.include_magic {
            &[Addressing::PowerOfTwo, Addressing::Magic]
        } else {
            &[Addressing::PowerOfTwo]
        };
        let ks: Vec<u32> = if self.quick {
            vec![3, 4, 5, 6, 8, 11, 16]
        } else {
            (1..=16).collect()
        };
        let mut configs = Vec::new();
        for &addressing in addressings {
            for &k in &ks {
                // Register-blocked: one 32- or 64-bit word per block.
                for block in [32u32, 64] {
                    if k <= block {
                        configs.push(BloomConfig::register_blocked(block, k, addressing));
                    }
                }
                // Plain blocked: 128–512-bit blocks.
                for block in [128u32, 256, 512] {
                    if !self.quick || block == 512 {
                        configs.push(BloomConfig::blocked(block, k, addressing));
                    }
                }
                // Sectorized: word-sized sectors.
                for block in [128u32, 256, 512] {
                    if self.quick && block != 512 {
                        continue;
                    }
                    for sector in [32u32, 64] {
                        let sectors = block / sector;
                        if k % sectors == 0 && k / sectors >= 1 {
                            configs.push(BloomConfig::sectorized(block, sector, k, addressing));
                        }
                    }
                }
                // Cache-sectorized: 256/512-bit blocks, 64-bit sectors, z ∈ {2,4,8}.
                for block in [256u32, 512] {
                    if self.quick && block != 512 {
                        continue;
                    }
                    for z in [2u32, 4, 8] {
                        let sectors = block / 64;
                        if z <= sectors && sectors % z == 0 && k % z == 0 {
                            configs
                                .push(BloomConfig::cache_sectorized(block, 64, z, k, addressing));
                        }
                    }
                }
            }
        }
        configs.retain(|c| c.validate().is_ok());
        configs.dedup();
        configs
    }

    /// All candidate Cuckoo configurations.
    #[must_use]
    pub fn cuckoo_configs(&self) -> Vec<CuckooConfig> {
        let addressings: &[CuckooAddressing] = if self.include_magic {
            &[CuckooAddressing::PowerOfTwo, CuckooAddressing::Magic]
        } else {
            &[CuckooAddressing::PowerOfTwo]
        };
        let mut configs = Vec::new();
        for &addressing in addressings {
            for &l in &[4u32, 8, 12, 16] {
                for &b in &[1u32, 2, 4] {
                    if self.quick && (l < 8 || b == 1) {
                        // Rarely performance-optimal (Figure 13a/13b).
                        continue;
                    }
                    configs.push(CuckooConfig::new(l, b, addressing));
                }
            }
        }
        configs.retain(|c| c.validate().is_ok());
        configs
    }

    /// The combined candidate set.
    #[must_use]
    pub fn all_configs(&self) -> Vec<FilterConfig> {
        let mut all: Vec<FilterConfig> = self
            .bloom_configs()
            .into_iter()
            .map(FilterConfig::Bloom)
            .collect();
        all.extend(self.cuckoo_configs().into_iter().map(FilterConfig::Cuckoo));
        if self.include_classic {
            for k in [4u32, 6, 8, 10, 12, 14, 16] {
                all.push(FilterConfig::ClassicBloom { k });
            }
        }
        all
    }

    /// The bits-per-key sweep the skyline evaluates for every configuration
    /// (the paper scales `m` between 4·n and 20·n).
    #[must_use]
    pub fn bits_per_key_sweep(&self) -> Vec<f64> {
        if self.quick {
            vec![6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
        } else {
            (4..=20).map(f64::from).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_is_large_and_valid() {
        let space = ConfigSpace::full();
        let configs = space.all_configs();
        assert!(configs.len() > 200, "only {} configurations", configs.len());
        for config in &configs {
            match config {
                FilterConfig::Bloom(c) => assert!(c.validate().is_ok(), "{}", c.label()),
                FilterConfig::Cuckoo(c) => assert!(c.validate().is_ok(), "{}", c.label()),
                FilterConfig::ClassicBloom { k } => assert!(*k >= 1),
            }
        }
    }

    #[test]
    fn quick_space_is_much_smaller_but_covers_both_kinds() {
        let quick = ConfigSpace::default().all_configs();
        let full = ConfigSpace::full().all_configs();
        assert!(quick.len() * 2 < full.len());
        assert!(quick.iter().any(|c| c.kind() == FilterKind::Bloom));
        assert!(quick.iter().any(|c| c.kind() == FilterKind::Cuckoo));
    }

    #[test]
    fn paper_representative_configs_are_in_the_grid() {
        let configs = ConfigSpace::full().bloom_configs();
        assert!(configs.contains(&BloomConfig::register_blocked(
            32,
            4,
            Addressing::PowerOfTwo
        )));
        assert!(configs.contains(&BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic
        )));
        let cuckoos = ConfigSpace::full().cuckoo_configs();
        assert!(cuckoos.contains(&CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)));
        assert!(cuckoos.contains(&CuckooConfig::new(8, 4, CuckooAddressing::Magic)));
    }

    #[test]
    fn modeled_fpr_rejects_infeasible_cuckoo_budgets() {
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 1, CuckooAddressing::PowerOfTwo));
        assert!(config.modeled_fpr(1e6, 20.0).is_none());
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo));
        assert!(config.modeled_fpr(1e6, 20.0).is_some());
    }

    #[test]
    fn cache_line_model() {
        assert_eq!(
            FilterConfig::Bloom(BloomConfig::blocked(512, 8, Addressing::Magic))
                .cache_lines_per_lookup(),
            1
        );
        assert_eq!(
            FilterConfig::Cuckoo(CuckooConfig::representative()).cache_lines_per_lookup(),
            2
        );
        assert_eq!(
            FilterConfig::ClassicBloom { k: 7 }.cache_lines_per_lookup(),
            7
        );
    }
}
