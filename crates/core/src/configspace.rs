//! The filter configuration space swept by the performance-optimal skylines.
//!
//! §6 of the paper enumerates, per filter type, the parameters considered:
//! Bloom filters with `k ∈ [1, 16]`, block sizes of 4–64 bytes, sector sizes
//! of 1–64 bytes, word sizes of 32/64 bits and group counts `z ∈ {2, 4, 8}`;
//! Cuckoo filters with signature lengths `l ∈ {4, 8, 12, 16}` and bucket
//! sizes `b ∈ {1, 2, 4}`. [`ConfigSpace`] generates that grid (full or a
//! reduced "quick" version for laptop-scale runs), filtering out the invalid
//! combinations the paper also excludes.

use pof_bloom::{Addressing, BloomConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::FilterKind;
use pof_xorfuse::FuseConfig;

/// A point in the configuration space: the filter type plus its parameters
/// (excluding the size `m`, which the skyline sweeps separately).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterConfig {
    /// Any blocked Bloom filter variant.
    Bloom(BloomConfig),
    /// The classic (unblocked) Bloom filter baseline.
    ClassicBloom {
        /// Number of hash functions.
        k: u32,
    },
    /// A Cuckoo filter.
    Cuckoo(CuckooConfig),
    /// An immutable binary-fuse filter (Graf & Lemire), constructed from a
    /// complete key set and rebuilt wholesale on every mutation.
    Fuse(FuseConfig),
}

impl FilterConfig {
    /// Which family the configuration belongs to.
    #[must_use]
    pub fn kind(&self) -> FilterKind {
        match self {
            Self::Bloom(_) | Self::ClassicBloom { .. } => FilterKind::Bloom,
            Self::Cuckoo(_) => FilterKind::Cuckoo,
            Self::Fuse(_) => FilterKind::Fuse,
        }
    }

    /// True for families that cannot be mutated in place: every insert or
    /// delete must be applied by reconstructing the filter from the
    /// authoritative key set (the sharded store routes such shards through
    /// its rebuild machinery unconditionally).
    #[must_use]
    pub fn immutable(&self) -> bool {
        matches!(self, Self::Fuse(_))
    }

    /// Fingerprint width in bits for families that store discrete
    /// fingerprints per key (fuse: 8/16, Cuckoo: the signature length);
    /// 0 for Bloom variants, whose bits are shared between keys.
    #[must_use]
    pub fn fingerprint_bits(&self) -> u32 {
        match self {
            Self::Bloom(_) | Self::ClassicBloom { .. } => 0,
            Self::Cuckoo(c) => c.signature_bits,
            Self::Fuse(c) => c.fingerprint_bits(),
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Bloom(c) => c.label(),
            Self::ClassicBloom { k } => format!("classic-bloom(k={k})"),
            Self::Cuckoo(c) => c.label(),
            Self::Fuse(c) => c.label(),
        }
    }

    /// Analytical false-positive rate of the configuration at a bits-per-key
    /// budget, or `None` when the configuration cannot represent `n` keys in
    /// that budget (Cuckoo load factor above its maximum; fuse structural
    /// size above the budget).
    #[must_use]
    pub fn modeled_fpr(&self, n: f64, bits_per_key: f64) -> Option<f64> {
        let m = n * bits_per_key;
        match self {
            Self::Bloom(c) => Some(c.modeled_fpr(m, n)),
            Self::ClassicBloom { k } => Some(pof_model::f_std(m, n, *k)),
            Self::Cuckoo(c) => pof_model::cuckoo::f_cuckoo_for_budget(
                bits_per_key,
                c.signature_bits,
                c.bucket_size,
            ),
            // A fuse filter's size is structural, not budgeted: the rate is
            // 2^-bits whenever the budget covers the real layout, and the
            // configuration is infeasible below that floor.
            Self::Fuse(c) => (bits_per_key >= c.structural_bits_per_key(n.max(1.0) as u64))
                .then(|| c.modeled_fpr()),
        }
    }

    /// Number of cache lines a lookup touches (1 for every blocked Bloom
    /// variant, 2 for Cuckoo, 3 for fuse, `k` for the classic filter). This
    /// is the main driver of the out-of-cache lookup cost difference
    /// (Figure 14).
    #[must_use]
    pub fn cache_lines_per_lookup(&self) -> u32 {
        match self {
            Self::Bloom(_) => 1,
            Self::ClassicBloom { k } => *k,
            Self::Cuckoo(_) => 2,
            Self::Fuse(_) => 3,
        }
    }

    /// Modeled construction cost in cycles per key, the input to the
    /// advisor's build-cost term. Mutable families absorb construction
    /// incrementally on their write path (a couple of hashes and stores per
    /// insert; Cuckoo adds expected relocation work), while a fuse filter
    /// pays a whole-set peeling pass — hash all keys, build the degree
    /// graph, peel, assign — every time it is (re)constructed.
    #[must_use]
    pub fn build_cycles_per_key(&self) -> f64 {
        match self {
            Self::Bloom(_) => 8.0,
            Self::ClassicBloom { k } => 4.0 + f64::from(*k),
            Self::Cuckoo(_) => 32.0,
            Self::Fuse(_) => 150.0,
        }
    }
}

/// Generator of the candidate configuration grid.
#[derive(Debug, Clone, Copy)]
pub struct ConfigSpace {
    /// Include magic-modulo variants in addition to power-of-two addressing.
    pub include_magic: bool,
    /// Include the classic Bloom filter baseline.
    pub include_classic: bool,
    /// Include the immutable binary-fuse family. Off by default — and off
    /// even in [`ConfigSpace::full`] — because fuse filters only fit serving
    /// paths that rebuild wholesale (tiered cold levels); flat stores and
    /// the paper's original two-family skylines opt in explicitly via
    /// [`ConfigSpace::with_fuse`].
    pub include_fuse: bool,
    /// Reduce the grid to the configurations that ever win in the paper's
    /// skylines (for quick laptop-scale runs).
    pub quick: bool,
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self {
            include_magic: true,
            include_classic: false,
            include_fuse: false,
            quick: true,
        }
    }
}

impl ConfigSpace {
    /// The full grid as described in §6 (minus invalid combinations).
    #[must_use]
    pub fn full() -> Self {
        Self {
            include_magic: true,
            include_classic: true,
            include_fuse: false,
            quick: false,
        }
    }

    /// The same grid with the immutable binary-fuse family added — the
    /// space rebuild-wholesale serving paths (tiered levels) advise over.
    #[must_use]
    pub fn with_fuse(mut self) -> Self {
        self.include_fuse = true;
        self
    }

    /// The candidate fuse configurations (both fingerprint widths), empty
    /// unless [`ConfigSpace::include_fuse`] is set.
    #[must_use]
    pub fn fuse_configs(&self) -> Vec<FuseConfig> {
        if self.include_fuse {
            vec![FuseConfig::fuse8(), FuseConfig::fuse16()]
        } else {
            Vec::new()
        }
    }

    /// All candidate Bloom configurations.
    #[must_use]
    pub fn bloom_configs(&self) -> Vec<BloomConfig> {
        let addressings: &[Addressing] = if self.include_magic {
            &[Addressing::PowerOfTwo, Addressing::Magic]
        } else {
            &[Addressing::PowerOfTwo]
        };
        let ks: Vec<u32> = if self.quick {
            vec![3, 4, 5, 6, 8, 11, 16]
        } else {
            (1..=16).collect()
        };
        let mut configs = Vec::new();
        for &addressing in addressings {
            for &k in &ks {
                // Register-blocked: one 32- or 64-bit word per block.
                for block in [32u32, 64] {
                    if k <= block {
                        configs.push(BloomConfig::register_blocked(block, k, addressing));
                    }
                }
                // Plain blocked: 128–512-bit blocks.
                for block in [128u32, 256, 512] {
                    if !self.quick || block == 512 {
                        configs.push(BloomConfig::blocked(block, k, addressing));
                    }
                }
                // Sectorized: word-sized sectors.
                for block in [128u32, 256, 512] {
                    if self.quick && block != 512 {
                        continue;
                    }
                    for sector in [32u32, 64] {
                        let sectors = block / sector;
                        if k % sectors == 0 && k / sectors >= 1 {
                            configs.push(BloomConfig::sectorized(block, sector, k, addressing));
                        }
                    }
                }
                // Cache-sectorized: 256/512-bit blocks, 64-bit sectors, z ∈ {2,4,8}.
                for block in [256u32, 512] {
                    if self.quick && block != 512 {
                        continue;
                    }
                    for z in [2u32, 4, 8] {
                        let sectors = block / 64;
                        if z <= sectors && sectors % z == 0 && k % z == 0 {
                            configs
                                .push(BloomConfig::cache_sectorized(block, 64, z, k, addressing));
                        }
                    }
                }
            }
        }
        configs.retain(|c| c.validate().is_ok());
        configs.dedup();
        configs
    }

    /// All candidate Cuckoo configurations.
    #[must_use]
    pub fn cuckoo_configs(&self) -> Vec<CuckooConfig> {
        let addressings: &[CuckooAddressing] = if self.include_magic {
            &[CuckooAddressing::PowerOfTwo, CuckooAddressing::Magic]
        } else {
            &[CuckooAddressing::PowerOfTwo]
        };
        let mut configs = Vec::new();
        for &addressing in addressings {
            for &l in &[4u32, 8, 12, 16] {
                for &b in &[1u32, 2, 4] {
                    if self.quick && (l < 8 || b == 1) {
                        // Rarely performance-optimal (Figure 13a/13b).
                        continue;
                    }
                    configs.push(CuckooConfig::new(l, b, addressing));
                }
            }
        }
        configs.retain(|c| c.validate().is_ok());
        configs
    }

    /// The combined candidate set.
    #[must_use]
    pub fn all_configs(&self) -> Vec<FilterConfig> {
        let mut all: Vec<FilterConfig> = self
            .bloom_configs()
            .into_iter()
            .map(FilterConfig::Bloom)
            .collect();
        all.extend(self.cuckoo_configs().into_iter().map(FilterConfig::Cuckoo));
        if self.include_classic {
            for k in [4u32, 6, 8, 10, 12, 14, 16] {
                all.push(FilterConfig::ClassicBloom { k });
            }
        }
        all.extend(self.fuse_configs().into_iter().map(FilterConfig::Fuse));
        all
    }

    /// The bits-per-key sweep the skyline evaluates for every configuration
    /// (the paper scales `m` between 4·n and 20·n).
    #[must_use]
    pub fn bits_per_key_sweep(&self) -> Vec<f64> {
        if self.quick {
            vec![6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0]
        } else {
            (4..=20).map(f64::from).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_is_large_and_valid() {
        let space = ConfigSpace::full();
        let configs = space.all_configs();
        assert!(configs.len() > 200, "only {} configurations", configs.len());
        for config in &configs {
            match config {
                FilterConfig::Bloom(c) => assert!(c.validate().is_ok(), "{}", c.label()),
                FilterConfig::Cuckoo(c) => assert!(c.validate().is_ok(), "{}", c.label()),
                FilterConfig::ClassicBloom { k } => assert!(*k >= 1),
                FilterConfig::Fuse(c) => {
                    assert!(c.fingerprint_bits() == 8 || c.fingerprint_bits() == 16)
                }
            }
        }
    }

    #[test]
    fn quick_space_is_much_smaller_but_covers_both_kinds() {
        let quick = ConfigSpace::default().all_configs();
        let full = ConfigSpace::full().all_configs();
        assert!(quick.len() * 2 < full.len());
        assert!(quick.iter().any(|c| c.kind() == FilterKind::Bloom));
        assert!(quick.iter().any(|c| c.kind() == FilterKind::Cuckoo));
    }

    #[test]
    fn paper_representative_configs_are_in_the_grid() {
        let configs = ConfigSpace::full().bloom_configs();
        assert!(configs.contains(&BloomConfig::register_blocked(
            32,
            4,
            Addressing::PowerOfTwo
        )));
        assert!(configs.contains(&BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic
        )));
        let cuckoos = ConfigSpace::full().cuckoo_configs();
        assert!(cuckoos.contains(&CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)));
        assert!(cuckoos.contains(&CuckooConfig::new(8, 4, CuckooAddressing::Magic)));
    }

    #[test]
    fn modeled_fpr_rejects_infeasible_cuckoo_budgets() {
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 1, CuckooAddressing::PowerOfTwo));
        assert!(config.modeled_fpr(1e6, 20.0).is_none());
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo));
        assert!(config.modeled_fpr(1e6, 20.0).is_some());
    }

    #[test]
    fn fuse_space_is_opt_in_and_gated_by_structural_size() {
        // Absent from the default, full and quick grids; present with the
        // explicit toggle.
        assert!(ConfigSpace::default()
            .all_configs()
            .iter()
            .all(|c| c.kind() != FilterKind::Fuse));
        assert!(ConfigSpace::full()
            .all_configs()
            .iter()
            .all(|c| c.kind() != FilterKind::Fuse));
        let fused = ConfigSpace::default().with_fuse().all_configs();
        assert_eq!(
            fused
                .iter()
                .filter(|c| c.kind() == FilterKind::Fuse)
                .count(),
            2
        );
        // Feasibility: the 2^-bits rate appears only once the budget clears
        // the structural layout (~9.1 bits/key for fuse8, ~18.2 for fuse16
        // at 10^6 keys) — below it the configuration is rejected outright.
        let fuse8 = FilterConfig::Fuse(FuseConfig::fuse8());
        assert!(fuse8.modeled_fpr(1e6, 8.0).is_none());
        let rate = fuse8.modeled_fpr(1e6, 10.0).expect("10 bits covers fuse8");
        assert!((rate - (2f64).powi(-8)).abs() < 1e-12);
        let fuse16 = FilterConfig::Fuse(FuseConfig::fuse16());
        assert!(fuse16.modeled_fpr(1e6, 16.0).is_none());
        assert!(fuse16.modeled_fpr(1e6, 20.0).is_some());
        // Occupancy-independent: same rate at any feasible budget.
        assert_eq!(fuse8.modeled_fpr(1e6, 12.0), fuse8.modeled_fpr(1e6, 20.0));
    }

    #[test]
    fn immutability_and_fingerprint_metadata() {
        assert!(FilterConfig::Fuse(FuseConfig::fuse8()).immutable());
        assert!(!FilterConfig::Cuckoo(CuckooConfig::representative()).immutable());
        assert!(!FilterConfig::ClassicBloom { k: 4 }.immutable());
        assert_eq!(
            FilterConfig::Fuse(FuseConfig::fuse16()).fingerprint_bits(),
            16
        );
        assert_eq!(
            FilterConfig::Cuckoo(CuckooConfig::new(12, 2, CuckooAddressing::PowerOfTwo))
                .fingerprint_bits(),
            12
        );
        assert_eq!(
            FilterConfig::Bloom(BloomConfig::blocked(512, 8, Addressing::Magic)).fingerprint_bits(),
            0
        );
    }

    #[test]
    fn cache_line_model() {
        assert_eq!(
            FilterConfig::Bloom(BloomConfig::blocked(512, 8, Addressing::Magic))
                .cache_lines_per_lookup(),
            1
        );
        assert_eq!(
            FilterConfig::Cuckoo(CuckooConfig::representative()).cache_lines_per_lookup(),
            2
        );
        assert_eq!(
            FilterConfig::ClassicBloom { k: 7 }.cache_lines_per_lookup(),
            7
        );
        assert_eq!(
            FilterConfig::Fuse(FuseConfig::fuse8()).cache_lines_per_lookup(),
            3
        );
    }
}
