//! Agreement suite for the staged (hash → prefetch → probe) mass-probe
//! kernels: for every family the staged kernel's selections must be
//! bit-for-bit identical to the scalar reference path, at every batch size
//! (including the chunking edge cases around the prefetch distance), for
//! duplicate-heavy and all-miss probe streams, and through the automatic
//! routing in `Filter::contains_batch`.

use pof_core::{AnyFilter, FilterConfig};
use pof_filter::probe::{ProbePlan, MAX_PREFETCH_DISTANCE, MIN_PREFETCH_DISTANCE};
use pof_filter::{Filter, KeyGen, SelectionVector};
use proptest::prelude::*;

/// Every family with a staged kernel, plus the classic Bloom filter (whose
/// "staged" entry point documents falling back to the ordinary batch path —
/// agreement must hold there too).
fn sample_configs() -> Vec<FilterConfig> {
    use pof_bloom::{Addressing, BloomConfig};
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    vec![
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        )),
        FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        FilterConfig::ClassicBloom { k: 7 },
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        FilterConfig::Cuckoo(CuckooConfig::new(12, 4, CuckooAddressing::Magic)),
        FilterConfig::Fuse(pof_core::FuseConfig::fuse8()),
        FilterConfig::Fuse(pof_core::FuseConfig::fuse16()),
    ]
}

fn build(config: &FilterConfig, keys: &[u32]) -> AnyFilter {
    // 24 bits/key keeps every Cuckoo configuration feasible.
    AnyFilter::build_with_keys(config, keys, 24.0)
        .unwrap_or_else(|| panic!("construction failed for {}", config.label()))
}

/// Assert the staged kernel, the scalar kernel, and the auto-routing batch
/// path all select exactly the same positions for `probes`.
fn assert_agreement(filter: &AnyFilter, probes: &[u32], plan: &mut ProbePlan, label: &str) {
    let mut scalar = SelectionVector::new();
    filter.contains_batch_scalar(probes, &mut scalar);
    let mut staged = SelectionVector::new();
    filter.contains_batch_staged(probes, &mut staged, plan);
    assert_eq!(
        staged.as_slice(),
        scalar.as_slice(),
        "staged vs scalar diverge: {label}"
    );
    let mut routed = SelectionVector::new();
    filter.contains_batch(probes, &mut routed);
    assert_eq!(
        routed.as_slice(),
        scalar.as_slice(),
        "auto-routed vs scalar diverge: {label}"
    );
}

/// The chunking edge cases: empty batch, single key, one below / at / one
/// above the default prefetch distance, and a batch large enough to engage
/// the automatic staged routing's size threshold.
const BATCH_SIZES: [usize; 6] = [0, 1, 63, 64, 65, 10_000];

#[test]
fn staged_matches_scalar_across_batch_sizes() {
    let mut gen = KeyGen::new(0x57A6ED);
    let members = gen.distinct_keys(20_000);
    let mixed = gen.keys(10_000);
    for config in sample_configs() {
        let filter = build(&config, &members);
        let mut plan = ProbePlan::new();
        for batch in BATCH_SIZES {
            // Mixed stream: uniform probes (mostly misses, some members).
            let probes = &mixed[..batch];
            assert_agreement(
                &filter,
                probes,
                &mut plan,
                &format!("{} mixed batch {batch}", config.label()),
            );
            // Member-only stream: every probe hits.
            let hits: Vec<u32> = members.iter().copied().cycle().take(batch).collect();
            assert_agreement(
                &filter,
                &hits,
                &mut plan,
                &format!("{} member batch {batch}", config.label()),
            );
        }
    }
}

#[test]
fn staged_matches_scalar_on_duplicate_heavy_streams() {
    let mut gen = KeyGen::new(0xD0_9E7);
    let members = gen.distinct_keys(20_000);
    for config in sample_configs() {
        let filter = build(&config, &members);
        let mut plan = ProbePlan::new();
        // Eight distinct values (half members, half not) repeated across a
        // large batch: positions must still come back exactly once each, in
        // ascending order, for both kernels.
        let pool = [
            members[0],
            members[1],
            members[2],
            members[3],
            0xDEAD_0001,
            0xDEAD_0002,
            0xDEAD_0003,
            0xDEAD_0004,
        ];
        let probes: Vec<u32> = (0..10_000).map(|i| pool[i % pool.len()]).collect();
        assert_agreement(
            &filter,
            &probes,
            &mut plan,
            &format!("{} duplicate-heavy", config.label()),
        );
    }
}

#[test]
fn staged_matches_scalar_on_all_miss_streams() {
    let mut gen = KeyGen::new(0xA11_0155);
    // Members confined to the low half of the key space; probes drawn from
    // the high half, so only false positives can select.
    let members: Vec<u32> = gen
        .distinct_keys(20_000)
        .into_iter()
        .map(|k| k & 0x7FFF_FFFF)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let probes: Vec<u32> = gen.keys(10_000).iter().map(|k| k | 0x8000_0000).collect();
    for config in sample_configs() {
        let filter = build(&config, &members);
        let mut plan = ProbePlan::new();
        assert_agreement(
            &filter,
            &probes,
            &mut plan,
            &format!("{} all-miss", config.label()),
        );
    }
}

#[test]
fn staged_agrees_at_every_prefetch_distance_extreme() {
    let mut gen = KeyGen::new(0xD157);
    let members = gen.distinct_keys(10_000);
    let probes = gen.keys(5_000);
    for config in sample_configs() {
        let filter = build(&config, &members);
        for distance in [MIN_PREFETCH_DISTANCE, 7, 64, MAX_PREFETCH_DISTANCE] {
            let mut plan = ProbePlan::with_distance(distance);
            assert_agreement(
                &filter,
                &probes,
                &mut plan,
                &format!("{} distance {distance}", config.label()),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary member sets and probe streams (duplicates and all): the
    /// three batch paths agree for every family.
    #[test]
    fn staged_scalar_and_routed_agree(
        members in prop::collection::hash_set(any::<u32>(), 1..3_000),
        probes in prop::collection::vec(any::<u32>(), 0..4_000),
        distance in MIN_PREFETCH_DISTANCE..=256usize,
    ) {
        let members: Vec<u32> = members.into_iter().collect();
        for config in sample_configs() {
            let filter = build(&config, &members);
            let mut plan = ProbePlan::with_distance(distance);
            assert_agreement(
                &filter,
                &probes,
                &mut plan,
                &format!("{} proptest", config.label()),
            );
        }
    }
}
