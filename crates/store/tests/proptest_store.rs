//! Property-based equivalence of the sharded store against unsharded
//! `AnyFilter` oracles.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::{AnyFilter, FilterConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{Filter, SelectionVector};
use pof_store::ShardedFilterStore;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = FilterConfig> {
    prop_oneof![
        Just(FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic
        ))),
        Just(FilterConfig::Bloom(BloomConfig::register_blocked(
            32,
            4,
            Addressing::PowerOfTwo
        ))),
        Just(FilterConfig::Bloom(BloomConfig::blocked(
            512,
            6,
            Addressing::PowerOfTwo
        ))),
        Just(FilterConfig::Cuckoo(CuckooConfig::new(
            16,
            2,
            CuckooAddressing::PowerOfTwo
        ))),
        Just(FilterConfig::Cuckoo(CuckooConfig::new(
            8,
            4,
            CuckooAddressing::Magic
        ))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single-shard store built like a bare `AnyFilter` must return
    /// *identical* batch results: same filter, same sizing, no routing — the
    /// store layer adds nothing but plumbing, and the plumbing must be
    /// invisible.
    #[test]
    fn single_shard_store_equals_bare_filter(
        config in config_strategy(),
        keys in prop::collection::hash_set(any::<u32>(), 1..2_000),
        probes in prop::collection::vec(any::<u32>(), 1..4_000),
        capacity in 64usize..4_096,
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let store = ShardedFilterStore::new(config, 1, capacity, 20.0);
        store.insert_batch(&keys);

        // The oracle replays the exact same build: same capacity-based
        // sizing, same growth schedule (the store doubles from `capacity`
        // whenever the key count passes it or a Cuckoo insert fails).
        let oracle = oracle_for(&config, &keys, capacity);

        let mut store_sel = SelectionVector::new();
        store.contains_batch(&probes, &mut store_sel);
        let mut oracle_sel = SelectionVector::new();
        oracle.contains_batch(&probes, &mut oracle_sel);
        prop_assert_eq!(
            store_sel.as_slice(),
            oracle_sel.as_slice(),
            "config {}",
            config.label()
        );
    }

    /// A multi-shard store must agree with a bank of per-shard oracles, each
    /// built by replaying exactly the keys routed to that shard: the store's
    /// batch path (route → per-shard batch kernel → offset merge) may not
    /// change a single membership answer.
    #[test]
    fn sharded_store_equals_per_shard_oracles(
        config in config_strategy(),
        shard_pow in 0u32..4,
        keys in prop::collection::hash_set(any::<u32>(), 1..2_000),
        probes in prop::collection::vec(any::<u32>(), 1..4_000),
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let shard_count = 1usize << shard_pow;
        let capacity = (keys.len() / shard_count).max(64);
        let store = ShardedFilterStore::new(config, shard_count, capacity, 20.0);
        store.insert_batch(&keys);

        // Reconstruct each shard independently through the same growth rules.
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for &key in &keys {
            routed[store.shard_of(key)].push(key);
        }
        let oracles: Vec<AnyFilter> = routed
            .iter()
            .map(|shard_keys| oracle_for(&config, shard_keys, capacity))
            .collect();

        let mut store_sel = SelectionVector::new();
        store.contains_batch(&probes, &mut store_sel);

        let oracle_hits: Vec<u32> = probes
            .iter()
            .enumerate()
            .filter(|(_, &key)| oracles[store.shard_of(key)].contains(key))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(
            store_sel.as_slice(),
            oracle_hits.as_slice(),
            "config {} shards {}",
            config.label(),
            shard_count
        );

        // And the semantic floor regardless of oracles: no false negatives.
        let mut member_sel = SelectionVector::new();
        store.contains_batch(&keys, &mut member_sel);
        prop_assert_eq!(member_sel.len(), keys.len());
    }
}

/// Replay the store's shard-growth schedule on a bare `AnyFilter`: start at
/// `capacity`, double whenever the key count outgrows it or an insert fails,
/// rebuilding from scratch each time (mirrors `pof-store`'s shard writer).
fn oracle_for(config: &FilterConfig, keys: &[u32], capacity: usize) -> AnyFilter {
    let mut capacity = capacity.max(64);
    'retry: loop {
        let mut filter = AnyFilter::build(config, capacity, 20.0);
        for (inserted, &key) in keys.iter().enumerate() {
            if inserted + 1 > capacity || !filter.insert(key) {
                capacity *= 2;
                continue 'retry;
            }
        }
        return filter;
    }
}
