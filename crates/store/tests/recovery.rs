//! Crash-recovery oracle matrix: kill the store at every [`FaultPoint`], for
//! every delete family, in both the flat and the tiered shape, then reopen
//! the directory and compare against an exact in-memory oracle.
//!
//! The acceptance bar is strict: zero false negatives (every key the oracle
//! says is live must test positive after recovery) and *exact* key counts —
//! the durable story each fault point leaves behind is deterministic, so the
//! oracle can be too:
//!
//! * `MidWalAppend` — the victim batch tore mid-append and was never applied;
//!   recovery drops the torn tail, so the oracle excludes the whole batch.
//! * `PostAppendPreApply` — the victim record is fully durable (a one-key
//!   batch, so no cross-shard ambiguity); the oracle includes it.
//! * `MidSnapshotWrite` / `PreRename` — a checkpoint died writing its
//!   snapshot; the WAL already covers everything, so nothing is lost and the
//!   torn/unrenamed snapshot must be masked by the previous generation.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_store::{
    BloomDeleteMode, FaultInjector, FaultPoint, LevelSpec, ManualCompaction, PersistOptions,
    ShardedFilterStore, StoreOptions, TieredStore, TieredStoreBuilder,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Self-cleaning scratch directory (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pof-recovery-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The three delete families the matrix crosses with every fault point.
#[derive(Debug, Clone, Copy)]
enum Family {
    BloomTombstone,
    BloomCounting,
    Cuckoo,
}

const FAMILIES: [Family; 3] = [
    Family::BloomTombstone,
    Family::BloomCounting,
    Family::Cuckoo,
];

impl Family {
    fn tag(self) -> &'static str {
        match self {
            Family::BloomTombstone => "bloom-tombstone",
            Family::BloomCounting => "bloom-counting",
            Family::Cuckoo => "cuckoo",
        }
    }

    fn config(self) -> FilterConfig {
        match self {
            Family::BloomTombstone | Family::BloomCounting => {
                FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo))
            }
            Family::Cuckoo => {
                FilterConfig::Cuckoo(CuckooConfig::new(16, 4, CuckooAddressing::PowerOfTwo))
            }
        }
    }

    fn delete_mode(self) -> BloomDeleteMode {
        match self {
            Family::BloomCounting => BloomDeleteMode::Counting,
            _ => BloomDeleteMode::Tombstone,
        }
    }

    fn store_options(self) -> StoreOptions {
        StoreOptions {
            config: self.config(),
            shard_count: 4,
            capacity_per_shard: 256,
            bits_per_key: match self {
                Family::Cuckoo => 16.0,
                _ => 12.0,
            },
            delete_mode: self.delete_mode(),
            ..StoreOptions::default()
        }
    }
}

/// Manual-checkpoint persistence with the given injector attached.
fn faulted_persist(fault: &Arc<FaultInjector>) -> PersistOptions {
    PersistOptions {
        wal_rotate_records: 0,
        fault: Some(Arc::clone(fault)),
        ..PersistOptions::durable()
    }
}

/// Zero false negatives and exact key counts versus the oracle.
fn assert_matches_oracle(
    contains: impl Fn(u32) -> bool,
    key_count: usize,
    oracle: &BTreeSet<u32>,
    context: &str,
) {
    assert_eq!(
        key_count,
        oracle.len(),
        "{context}: recovered key count diverged from the oracle"
    );
    for &key in oracle {
        assert!(
            contains(key),
            "{context}: false negative for live key {key} after recovery"
        );
    }
}

// ---------------------------------------------------------------------------
// flat matrix
// ---------------------------------------------------------------------------

/// Run one flat-store crash scenario and verify recovery against the oracle.
fn flat_crash_scenario(point: FaultPoint, family: Family) {
    let context = format!("flat/{}/{point:?}", family.tag());
    let dir = TempDir::new(family.tag());
    let fault = Arc::new(FaultInjector::new());
    let store =
        ShardedFilterStore::open_with(dir.path(), family.store_options(), faulted_persist(&fault))
            .expect("fresh open");
    let mut oracle: BTreeSet<u32> = BTreeSet::new();

    // Phase 1: acknowledged traffic, then a clean checkpoint (generation 1).
    let phase1: Vec<u32> = (0..400).collect();
    let deletes1: Vec<u32> = (0..400).step_by(4).collect();
    store.insert_batch(&phase1);
    oracle.extend(&phase1);
    store.delete_batch(&deletes1);
    for key in &deletes1 {
        oracle.remove(key);
    }
    store.persist_checkpoint().expect("clean checkpoint");

    // Phase 2: a WAL tail past the checkpoint, exercising both ops.
    let phase2: Vec<u32> = (1_000..1_400).collect();
    let deletes2: Vec<u32> = (1_000..1_100).collect();
    store.insert_batch(&phase2);
    oracle.extend(&phase2);
    store.delete_batch(&deletes2);
    for key in &deletes2 {
        oracle.remove(key);
    }

    // The crash: arm the fault and drive the victim operation into it.
    fault.arm(point);
    match point {
        FaultPoint::MidWalAppend => {
            // Torn mid-append: the whole batch is lost, oracle unchanged.
            let victim: Vec<u32> = (5_000..5_064).collect();
            store.insert_batch(&victim);
        }
        FaultPoint::PostAppendPreApply => {
            // One durable-but-unapplied key: the log is the authority, so the
            // oracle includes it.
            store.insert_batch(&[5_000]);
            oracle.insert(5_000);
        }
        FaultPoint::MidSnapshotWrite | FaultPoint::PreRename => {
            // A checkpoint that dies writing its snapshot loses nothing: the
            // WAL covers every acknowledged op and the torn snapshot must be
            // masked by the previous generation.
            let _ = store.persist_checkpoint();
        }
    }
    assert!(fault.fired(), "{context}: the armed fault never fired");
    drop(store);

    // Reopen the directory as the crashed process's successor.
    let recovered =
        ShardedFilterStore::open(dir.path(), family.store_options()).expect("recovery open");
    assert_matches_oracle(
        |key| recovered.contains(key),
        recovered.key_count(),
        &oracle,
        &context,
    );

    // The recovered store keeps working — and its new writes are durable.
    let extra: Vec<u32> = (9_000..9_128).collect();
    recovered.insert_batch(&extra);
    oracle.extend(&extra);
    recovered.delete_batch(&extra[..32]);
    for key in &extra[..32] {
        oracle.remove(key);
    }
    drop(recovered);
    let reopened =
        ShardedFilterStore::open(dir.path(), family.store_options()).expect("second recovery");
    assert_matches_oracle(
        |key| reopened.contains(key),
        reopened.key_count(),
        &oracle,
        &format!("{context}/after-reopen-writes"),
    );
}

#[test]
fn flat_store_recovers_at_every_fault_point() {
    for point in FaultPoint::ALL {
        for family in FAMILIES {
            flat_crash_scenario(point, family);
        }
    }
}

// ---------------------------------------------------------------------------
// tiered matrix
// ---------------------------------------------------------------------------

/// A two-level pinned builder (both levels on `family`) with manual
/// compaction, so the key placement the oracle assumes is deterministic.
fn tiered_builder(family: Family) -> TieredStoreBuilder {
    let spec = LevelSpec {
        expected_keys: 1 << 12,
        ..LevelSpec::default()
    };
    TieredStoreBuilder::new()
        .shards_per_level(2)
        .compaction(Arc::new(ManualCompaction))
        .level_pinned(
            spec,
            family.config(),
            family.store_options().bits_per_key,
            family.delete_mode(),
        )
        .level_pinned(
            spec,
            family.config(),
            family.store_options().bits_per_key,
            family.delete_mode(),
        )
}

/// Run one tiered-store crash scenario and verify recovery against the
/// oracle. The workload deliberately re-inserts keys an older level holds,
/// so the journaled *shadow deletes* (the tiered race fix) are part of what
/// recovery must replay exactly.
fn tiered_crash_scenario(point: FaultPoint, family: Family) {
    let context = format!("tiered/{}/{point:?}", family.tag());
    let dir = TempDir::new(family.tag());
    let fault = Arc::new(FaultInjector::new());
    let store = TieredStore::open_with(dir.path(), tiered_builder(family), faulted_persist(&fault))
        .expect("fresh open");
    let mut oracle: BTreeSet<u32> = BTreeSet::new();

    // Phase 1: a cold level, a hot overlap (shadow deletes on level 1), and
    // a clean checkpoint of every level.
    let cold: Vec<u32> = (0..500).collect();
    let hot: Vec<u32> = (250..600).collect();
    store.load_level(1, &cold);
    oracle.extend(&cold);
    store.insert_batch(&hot);
    oracle.extend(&hot);
    store.persist_checkpoint().expect("clean checkpoint");

    // Phase 2: a WAL tail — fresh inserts, cross-level deletes, a compaction
    // (which checkpoints the two levels it touched as a side effect).
    let phase2: Vec<u32> = (2_000..2_200).collect();
    let deletes2: Vec<u32> = (0..100).collect();
    store.insert_batch(&phase2);
    oracle.extend(&phase2);
    store.delete_batch(&deletes2);
    for key in &deletes2 {
        oracle.remove(key);
    }
    store.compact(0);

    // The crash.
    fault.arm(point);
    match point {
        FaultPoint::MidWalAppend => {
            let victim: Vec<u32> = (5_000..5_064).collect();
            store.insert_batch(&victim);
        }
        FaultPoint::PostAppendPreApply => {
            store.insert_batch(&[5_000]);
            oracle.insert(5_000);
        }
        FaultPoint::MidSnapshotWrite | FaultPoint::PreRename => {
            let _ = store.persist_checkpoint();
        }
    }
    assert!(fault.fired(), "{context}: the armed fault never fired");
    drop(store);

    let recovered = TieredStore::open(dir.path(), tiered_builder(family)).expect("recovery open");
    assert_matches_oracle(
        |key| recovered.contains(key),
        recovered.key_count(),
        &oracle,
        &context,
    );

    // Post-recovery writes survive a second reopen.
    let extra: Vec<u32> = (9_000..9_128).collect();
    recovered.insert_batch(&extra);
    oracle.extend(&extra);
    drop(recovered);
    let reopened = TieredStore::open(dir.path(), tiered_builder(family)).expect("second recovery");
    assert_matches_oracle(
        |key| reopened.contains(key),
        reopened.key_count(),
        &oracle,
        &format!("{context}/after-reopen-writes"),
    );
}

#[test]
fn tiered_store_recovers_at_every_fault_point() {
    for point in FaultPoint::ALL {
        for family in FAMILIES {
            tiered_crash_scenario(point, family);
        }
    }
}

// ---------------------------------------------------------------------------
// torn-snapshot fallback
// ---------------------------------------------------------------------------

/// Truncate shard `shard`'s newest snapshot file mid-payload, returning the
/// path it mangled. Zero-padded generation numbers make the lexicographic
/// maximum the newest generation.
fn truncate_newest_snapshot(dir: &Path, shard: usize) -> PathBuf {
    let prefix = format!("shard-{shard:04}.gen-");
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|entry| entry.expect("dir entry").path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with(&prefix) && name.ends_with(".snap"))
        })
        .collect();
    snapshots.sort();
    let newest = snapshots.pop().expect("shard has at least one snapshot");
    let full = std::fs::metadata(&newest).expect("snapshot metadata").len();
    assert!(full > 64, "snapshot too small for a meaningful tear");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .expect("open snapshot for truncation");
    file.set_len(full / 2).expect("truncate snapshot");
    newest
}

#[test]
fn torn_newest_snapshot_falls_back_to_the_previous_generation() {
    let dir = TempDir::new("torn");
    let options = StoreOptions {
        shard_count: 2,
        capacity_per_shard: 256,
        ..Family::BloomTombstone.store_options()
    };
    let store = ShardedFilterStore::open_with(
        dir.path(),
        options.clone(),
        PersistOptions {
            wal_rotate_records: 0,
            ..PersistOptions::durable()
        },
    )
    .expect("fresh open");

    // Two full generations plus a live WAL tail: snapshot gen 1 covers
    // 0..300, snapshot gen 2 covers 0..500, the gen-2 WAL holds 500..600.
    let gen1: Vec<u32> = (0..300).collect();
    store.insert_batch(&gen1);
    store.persist_checkpoint().expect("checkpoint 1");
    let gen2: Vec<u32> = (300..500).collect();
    store.insert_batch(&gen2);
    store.persist_checkpoint().expect("checkpoint 2");
    let tail: Vec<u32> = (500..600).collect();
    store.insert_batch(&tail);
    drop(store);

    // Tear the newest snapshot of every shard: recovery must fall back to
    // generation 1 and rebuild the difference from the retained WALs.
    let torn: Vec<PathBuf> = (0..2)
        .map(|shard| truncate_newest_snapshot(dir.path(), shard))
        .collect();

    let recovered = ShardedFilterStore::open(dir.path(), options).expect("fallback recovery");
    let oracle: BTreeSet<u32> = (0..600).collect();
    assert_matches_oracle(
        |key| recovered.contains(key),
        recovered.key_count(),
        &oracle,
        "torn-snapshot fallback",
    );
    // The torn files were quarantined, not resurrected.
    for path in torn {
        assert!(
            !path.exists(),
            "torn snapshot {} should have been removed during recovery",
            path.display()
        );
    }
}
