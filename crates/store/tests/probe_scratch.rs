//! Steady-state batched lookups through a reusable [`ProbeScratch`] must not
//! touch the heap: a counting global allocator wraps the system allocator,
//! and the warm probe loop is asserted to perform **zero** allocations.
//!
//! This file intentionally contains a single test — the allocation counter
//! is process-global, and a sibling test running on another thread would
//! pollute the count.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_filter::{KeyGen, SelectionVector};
use pof_store::{ProbeScratch, StoreBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts allocations (and reallocations) while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method forwards the caller's pointer/layout to `System`
// unchanged; the only extra work is a Relaxed counter bump, which cannot
// violate the `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` under the caller's contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.alloc_zeroed` under the caller's contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    // SAFETY: delegates to `System.realloc`; ptr/layout validity is the
    // caller's obligation, forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to `System.dealloc`; ptr was allocated by this
    // allocator (which is `System` underneath) with the same layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_batched_lookups_do_not_allocate() {
    let store = StoreBuilder::new()
        .shards(8)
        .expected_keys(1 << 16)
        .bits_per_key(12.0)
        .config(FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        )))
        .build();
    let mut gen = KeyGen::new(0xA110C);
    store.insert_batch(&gen.distinct_keys(1 << 16));
    let probes = gen.keys(1 << 15);

    // The steady-state reader setup: one frozen snapshot, one scratch, one
    // selection vector, reused across every batch.
    let snapshot = store.snapshot();
    let mut scratch = ProbeScratch::new();
    let mut sel = SelectionVector::new();

    // Warm-up rounds size every buffer to its steady-state capacity.
    let mut warm_hits = 0usize;
    for _ in 0..3 {
        warm_hits = 0;
        for batch in probes.chunks(4_096) {
            sel.clear();
            snapshot.contains_batch_with(batch, &mut sel, &mut scratch);
            warm_hits += sel.len();
        }
    }

    // The measured rounds: identical work, zero heap traffic allowed.
    ARMED.store(true, Ordering::SeqCst);
    let mut hits = 0usize;
    for _ in 0..5 {
        hits = 0;
        for batch in probes.chunks(4_096) {
            sel.clear();
            snapshot.contains_batch_with(batch, &mut sel, &mut scratch);
            hits += sel.len();
        }
    }
    ARMED.store(false, Ordering::SeqCst);

    assert_eq!(hits, warm_hits, "warm and measured rounds disagree");
    assert_eq!(
        ALLOCATIONS.load(Ordering::SeqCst),
        0,
        "steady-state batched lookups touched the heap"
    );
}
