//! Multi-threaded smoke tests: concurrent `contains_batch` readers while the
//! store inserts (and rebuilds) must never observe a false negative for a key
//! whose `insert_batch` completed before the reader's probe began.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{KeyGen, SelectionVector};
use pof_store::{RebuildMode, ShardedFilterStore, StoreBuilder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn configs() -> Vec<FilterConfig> {
    vec![
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        )),
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
    ]
}

/// Readers hammer the initial key set through `contains_batch` while the
/// writer pushes enough additional keys through small shards to force many
/// saturation rebuilds. Every probe of an initial key must stay positive at
/// every intermediate snapshot.
#[test]
fn concurrent_reads_during_rebuilds_see_no_false_negatives() {
    for config in configs() {
        let mut gen = KeyGen::new(0xC0DE);
        let initial = gen.distinct_keys(8_000);
        let extra = gen.distinct_keys(32_000);

        // Deliberately undersized: the extra inserts force repeated rebuilds.
        let store = Arc::new(ShardedFilterStore::new(config, 4, 512, 16.0));
        store.insert_batch(&initial);

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|reader| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let initial = initial.clone();
                std::thread::spawn(move || {
                    let mut sel = SelectionVector::with_capacity(initial.len());
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Relaxed) || rounds == 0 {
                        for batch in initial.chunks(1_024) {
                            sel.clear();
                            store.contains_batch(batch, &mut sel);
                            assert_eq!(
                                sel.len(),
                                batch.len(),
                                "reader {reader}: a pre-inserted key went missing mid-rebuild"
                            );
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        for chunk in extra.chunks(256) {
            store.insert_batch(chunk);
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            let rounds = reader.join().expect("reader panicked");
            assert!(rounds > 0);
        }

        // The writer's churn must actually have exercised the rebuild path,
        // otherwise this test proves nothing.
        assert!(
            store.stats().total_rebuilds() >= 4,
            "{}: undersized shards should have rebuilt",
            config.label()
        );
        // And after the dust settles every key (initial and extra) is present.
        let mut sel = SelectionVector::new();
        let all: Vec<u32> = initial.iter().chain(&extra).copied().collect();
        store.contains_batch(&all, &mut sel);
        assert_eq!(sel.len(), all.len(), "{}", config.label());
    }
}

/// Readers hammer a stable core key set while a writer churns a disjoint key
/// range through repeated insert-then-delete cycles (Cuckoo shards delete in
/// place, Bloom shards tombstone). No probe of a core key may ever answer
/// negative, and after the churn settles the bookkeeping matches the core
/// exactly.
#[test]
fn concurrent_deletes_never_hide_live_keys() {
    for config in configs() {
        let mut gen = KeyGen::new(0xDE1E7E);
        let core = gen.distinct_keys(6_000);
        let churn: Vec<u32> = gen
            .distinct_keys(12_000)
            .into_iter()
            .filter(|k| !core.contains(k))
            .collect();

        let store = Arc::new(ShardedFilterStore::new(config, 4, 1_024, 16.0));
        store.insert_batch(&core);

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|reader| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let core = core.clone();
                std::thread::spawn(move || {
                    let mut sel = SelectionVector::with_capacity(core.len());
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Relaxed) || rounds == 0 {
                        for batch in core.chunks(1_024) {
                            sel.clear();
                            store.contains_batch(batch, &mut sel);
                            assert_eq!(
                                sel.len(),
                                batch.len(),
                                "reader {reader}: a core key went missing mid-delete"
                            );
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        // Writer: cycle the churn keys in and out, with an occasional
        // maintenance round (tombstone purges / rebuild interleavings).
        for cycle in 0..6 {
            for chunk in churn.chunks(1_500) {
                store.insert_batch(chunk);
            }
            for chunk in churn.chunks(1_500) {
                assert_eq!(store.delete_batch(chunk), chunk.len());
            }
            if cycle % 2 == 1 {
                store.maintain();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }

        // The dust has settled: only the core is live.
        assert_eq!(store.key_count(), core.len(), "{}", config.label());
        let mut sel = SelectionVector::new();
        store.contains_batch(&core, &mut sel);
        assert_eq!(sel.len(), core.len(), "{}", config.label());
        store.maintain();
        assert_eq!(store.stats().total_tombstones(), 0, "{}", config.label());
    }
}

/// Background rebuilds with live readers: undersized shards saturate, the
/// maintainer swaps replacements in mid-probe, and no pre-inserted key may
/// ever answer negative — through the snapshot, the delta window, or the
/// swap itself.
#[test]
fn background_rebuilds_never_hide_keys_from_concurrent_readers() {
    for config in configs() {
        let mut gen = KeyGen::new(0xB6C0DE);
        let initial = gen.distinct_keys(8_000);
        let extra = gen.distinct_keys(24_000);

        let store = Arc::new(
            StoreBuilder::new()
                .shards(4)
                .expected_keys(2_048) // undersized: growth rebuilds guaranteed
                .bits_per_key(16.0)
                .config(config)
                .rebuild_mode(RebuildMode::Background)
                .build(),
        );
        store.insert_batch(&initial);

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|reader| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let initial = initial.clone();
                std::thread::spawn(move || {
                    let mut sel = SelectionVector::with_capacity(initial.len());
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Relaxed) || rounds == 0 {
                        for batch in initial.chunks(1_024) {
                            sel.clear();
                            store.contains_batch(batch, &mut sel);
                            assert_eq!(
                                sel.len(),
                                batch.len(),
                                "reader {reader}: a key went missing mid-swap"
                            );
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        for chunk in extra.chunks(512) {
            store.insert_batch(chunk);
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }

        // Drain, then audit: rebuilds ran off-lock and nothing was lost.
        store.maintain();
        assert_eq!(store.pending_rebuilds(), 0);
        let stats = store.stats();
        assert!(
            stats.total_background_rebuilds() >= 1,
            "{}: growth this size must have swapped in background rebuilds, stats: {stats:?}",
            config.label()
        );
        let all: Vec<u32> = initial.iter().chain(&extra).copied().collect();
        assert_eq!(store.key_count(), all.len(), "{}", config.label());
        let mut sel = SelectionVector::new();
        store.contains_batch(&all, &mut sel);
        assert_eq!(sel.len(), all.len(), "{}", config.label());
    }
}

/// The CI concurrency lane's long soak (run with `--ignored`): writer and
/// deleter threads churn disjoint key ranges through a background-rebuild
/// store for many cycles while readers continuously assert the stable core,
/// and the final bookkeeping must settle to exactly the core.
#[test]
#[ignore = "long-running stress; exercised by the CI concurrency lane"]
fn background_rebuild_stress() {
    for config in configs() {
        let mut gen = KeyGen::new(0x57E55);
        let core = gen.distinct_keys(10_000);
        let churn: Vec<u32> = gen
            .distinct_keys(40_000)
            .into_iter()
            .filter(|k| !core.contains(k))
            .collect();

        let store = Arc::new(
            StoreBuilder::new()
                .shards(8)
                .expected_keys(4_096)
                .bits_per_key(16.0)
                .config(config)
                .rebuild_mode(RebuildMode::Background)
                .build(),
        );
        store.insert_batch(&core);

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|reader| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let core = core.clone();
                std::thread::spawn(move || {
                    let mut sel = SelectionVector::with_capacity(core.len());
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Relaxed) || rounds == 0 {
                        for batch in core.chunks(2_048) {
                            sel.clear();
                            store.contains_batch(batch, &mut sel);
                            assert_eq!(
                                sel.len(),
                                batch.len(),
                                "reader {reader}: a core key went missing under churn"
                            );
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        // Two churn writers over disjoint halves: inserts, deletes and
        // periodic maintains race the maintainer's snapshot/swap cycles.
        let halves: Vec<Vec<u32>> = vec![
            churn.iter().copied().step_by(2).collect(),
            churn.iter().skip(1).copied().step_by(2).collect(),
        ];
        let writers: Vec<_> = halves
            .into_iter()
            .map(|half| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for cycle in 0..8 {
                        for chunk in half.chunks(1_000) {
                            store.insert_batch(chunk);
                        }
                        for chunk in half.chunks(1_000) {
                            assert_eq!(store.delete_batch(chunk), chunk.len());
                        }
                        if cycle % 3 == 2 {
                            store.maintain();
                        }
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().expect("writer panicked");
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }

        store.maintain();
        assert_eq!(store.pending_rebuilds(), 0);
        assert_eq!(store.key_count(), core.len(), "{}", config.label());
        let mut sel = SelectionVector::new();
        store.contains_batch(&core, &mut sel);
        assert_eq!(sel.len(), core.len(), "{}", config.label());
        store.maintain();
        assert_eq!(store.stats().total_tombstones(), 0, "{}", config.label());
    }
}

/// Concurrent writers on disjoint key ranges: per-shard write locks serialize
/// correctly and no batch is lost.
#[test]
fn concurrent_writers_do_not_lose_batches() {
    let store = Arc::new(ShardedFilterStore::new(
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        )),
        8,
        1_024,
        14.0,
    ));
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut gen = KeyGen::new(0xFEED ^ w);
                // Distinct per-writer streams; collisions across writers are
                // possible but irrelevant (inserts are idempotent for
                // membership).
                let keys = gen.keys(10_000);
                for chunk in keys.chunks(500) {
                    store.insert_batch(chunk);
                }
                keys
            })
        })
        .collect();
    let mut all_keys = Vec::new();
    for writer in writers {
        all_keys.extend(writer.join().expect("writer panicked"));
    }
    let mut sel = SelectionVector::new();
    store.contains_batch(&all_keys, &mut sel);
    assert_eq!(
        sel.len(),
        all_keys.len(),
        "every written key must be present"
    );
}
