//! Property-based lifecycle correctness for the tiered store: random
//! interleavings of `insert_batch` / `delete_batch` / `contains_batch` /
//! `compact` / `maintain` against a `HashMap<u32, usize>` oracle mapping
//! every live key to the level that holds it.
//!
//! Invariants asserted after every operation:
//! * **no false negatives, ever**: every oracle member answers positive via
//!   both the point and the batch read path, through compactions, rebuilds,
//!   tombstones and delete churn,
//! * the store's live key count equals the oracle's size exactly (inserts
//!   shadow older occurrences, so cross-level accounting never double
//!   counts),
//! * per-level live counts match the oracle's per-level totals exactly,
//! * `delete_batch` reports exactly the oracle's removal count,
//! * levels running [`BloomDeleteMode::Counting`] never mint a tombstone.
//!
//! Plus the delete-heavy acceptance scenario: an advisor-built two-level
//! store (hot counting-Bloom in front of a cold immutable fuse level)
//! survives sustained churn with **zero** tombstones anywhere and **zero**
//! rebuilds on the hot level — counting deletes land in place, and the fuse
//! level folds every mutation batch through a whole-set re-peel, so nothing
//! lingers.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{FilterKind, SelectionVector};
use pof_store::{
    BloomDeleteMode, DeferredBatch, FprDrift, LevelSpec, ManualCompaction, RebuildPolicy,
    SaturationDoubling, TieredStore, TieredStoreBuilder,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn bloom_config() -> FilterConfig {
    FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ))
}

fn cuckoo_config() -> FilterConfig {
    FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo))
}

fn fuse_config() -> FilterConfig {
    FilterConfig::Fuse(pof_core::FuseConfig::fuse8())
}

fn spec(expected_keys: u64, work_saved_cycles: f64, delete_rate: f64) -> LevelSpec {
    LevelSpec {
        expected_keys,
        work_saved_cycles,
        delete_rate,
        ..LevelSpec::default()
    }
}

/// Level layouts swept by the oracle: every delete family appears both as a
/// hot and as a cold level, including a three-level mix.
fn layouts() -> Vec<(&'static str, Vec<(FilterConfig, BloomDeleteMode)>)> {
    vec![
        (
            "hot-counting-bloom/cold-cuckoo",
            vec![
                (bloom_config(), BloomDeleteMode::Counting),
                (cuckoo_config(), BloomDeleteMode::Tombstone),
            ],
        ),
        (
            "hot-tombstone-bloom/cold-counting-bloom",
            vec![
                (bloom_config(), BloomDeleteMode::Tombstone),
                (bloom_config(), BloomDeleteMode::Counting),
            ],
        ),
        (
            "hot-cuckoo/cold-tombstone-bloom",
            vec![
                (cuckoo_config(), BloomDeleteMode::Tombstone),
                (bloom_config(), BloomDeleteMode::Tombstone),
            ],
        ),
        (
            "three-level-mixed",
            vec![
                (bloom_config(), BloomDeleteMode::Counting),
                (bloom_config(), BloomDeleteMode::Tombstone),
                (cuckoo_config(), BloomDeleteMode::Tombstone),
            ],
        ),
        (
            "hot-counting-bloom/cold-fuse",
            vec![
                (bloom_config(), BloomDeleteMode::Counting),
                (fuse_config(), BloomDeleteMode::Tombstone),
            ],
        ),
        (
            "hot-cuckoo/mid-fuse/cold-tombstone-bloom",
            vec![
                (cuckoo_config(), BloomDeleteMode::Tombstone),
                (fuse_config(), BloomDeleteMode::Tombstone),
                (bloom_config(), BloomDeleteMode::Tombstone),
            ],
        ),
    ]
}

fn policy_for(index: usize) -> Arc<dyn RebuildPolicy> {
    match index {
        0 => Arc::new(SaturationDoubling),
        1 => Arc::new(FprDrift::new(2.0)),
        _ => Arc::new(DeferredBatch::new(64)),
    }
}

/// Build a deliberately undersized tiered store (every policy keeps
/// rebuilding) with manual compaction, so the test controls key movement.
fn build_store(layout: &[(FilterConfig, BloomDeleteMode)], policy_index: usize) -> TieredStore {
    let mut builder = TieredStoreBuilder::new()
        .shards_per_level(2)
        .rebuild_policy(policy_for(policy_index))
        .compaction(Arc::new(ManualCompaction));
    for (index, (config, mode)) in layout.iter().enumerate() {
        // Hot levels see tiny t_w, colder levels progressively larger.
        let tw = 32.0 * 1000f64.powi(index as i32);
        builder = builder.level_pinned(spec(256, tw, 0.25), *config, 16.0, *mode);
    }
    builder.build()
}

/// Every oracle member answers positive through both read paths, the total
/// and per-level counts match, and counting levels are tombstone-free.
fn assert_oracle_holds(
    store: &TieredStore,
    oracle: &HashMap<u32, usize>,
    layout: &[(FilterConfig, BloomDeleteMode)],
    label: &str,
) {
    assert_eq!(store.key_count(), oracle.len(), "{label}: key_count");
    let members: Vec<u32> = oracle.keys().copied().collect();
    let mut sel = SelectionVector::new();
    store.contains_batch(&members, &mut sel);
    assert_eq!(
        sel.len(),
        members.len(),
        "{label}: batch path lost a live key"
    );
    for &key in &members {
        assert!(store.contains(key), "{label}: point false negative {key}");
    }
    let stats = store.stats();
    for (level, (config, mode)) in layout.iter().enumerate() {
        let expected = oracle.values().filter(|&&l| l == level).count() as u64;
        assert_eq!(
            stats.levels[level].live_keys, expected,
            "{label}: level {level} live count"
        );
        let counting_level =
            *mode == BloomDeleteMode::Counting && config.kind() == FilterKind::Bloom;
        let cuckoo_level = config.kind() == FilterKind::Cuckoo;
        // Inline-mode fuse levels fold every mutation batch through a
        // whole-set re-peel, so they settle each operation tombstone-free
        // too (an immutable filter cannot carry deletes forward).
        let fuse_level = config.kind() == FilterKind::Fuse;
        if counting_level || cuckoo_level || fuse_level {
            assert_eq!(
                stats.levels[level].tombstones, 0,
                "{label}: in-place level {level} minted tombstones"
            );
        }
        if fuse_level {
            assert_eq!(
                stats.levels[level].store.total_overflow(),
                0,
                "{label}: fuse level {level} left keys parked in overflow"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiered_lifecycle_matches_the_level_oracle(
        layout_index in 0usize..6,
        policy_index in 0usize..3,
        ops in prop::collection::vec(
            (0u8..5, prop::collection::vec(any::<u32>(), 1..200)),
            1..14,
        ),
    ) {
        let (layout_name, layout) = layouts().swap_remove(layout_index);
        let store = build_store(&layout, policy_index);
        let levels = layout.len();
        let mut oracle: HashMap<u32, usize> = HashMap::new();
        let label = format!("{layout_name} policy#{policy_index}");

        for (op, keys) in &ops {
            match op % 5 {
                0 => {
                    // Inserts land in level 0 and shadow older occurrences.
                    store.insert_batch(keys);
                    for &key in keys {
                        oracle.insert(key, 0);
                    }
                }
                1 => {
                    let mut expected = 0usize;
                    for &key in keys {
                        if oracle.remove(&key).is_some() {
                            expected += 1;
                        }
                    }
                    let removed = store.delete_batch(keys);
                    prop_assert_eq!(removed, expected, "{}: delete count", &label);
                }
                2 => {
                    // Batch lookups over arbitrary keys: every probed oracle
                    // member must qualify.
                    let mut sel = SelectionVector::new();
                    store.contains_batch(keys, &mut sel);
                    let hits: std::collections::HashSet<u32> =
                        sel.as_slice().iter().map(|&i| keys[i as usize]).collect();
                    for &key in keys.iter().filter(|k| oracle.contains_key(k)) {
                        prop_assert!(hits.contains(&key), "{}: false negative {key}", &label);
                    }
                }
                3 => {
                    // Compact a level chosen by the batch length; the oracle
                    // moves that level's keys down one level (the terminal
                    // level folds in place and moves nothing).
                    let level = keys.len() % levels;
                    store.compact(level);
                    if level + 1 < levels {
                        for slot in oracle.values_mut() {
                            if *slot == level {
                                *slot = level + 1;
                            }
                        }
                    }
                }
                _ => {
                    store.maintain();
                }
            }
            assert_oracle_holds(&store, &oracle, &layout, &label);
        }
        // Settle every deferred fold/purge; the contract must hold exactly.
        store.maintain();
        assert_oracle_holds(&store, &oracle, &layout, &label);
    }
}

/// The acceptance scenario: a delete-heavy two-level store built through the
/// *advisor* (not pinned) — which must pick a mutable counting Bloom family
/// for the hot churn level and an immutable fuse filter for the cold static
/// simulated-disk level — sustains insert/delete/compact churn with zero
/// tombstones anywhere and zero rebuilds on the hot level (counting deletes
/// land in place; the cold fuse level absorbs every mutation batch through
/// its whole-set re-peel).
#[test]
fn delete_heavy_hot_counting_cold_fuse_runs_without_purges() {
    let store = TieredStoreBuilder::new()
        .level(spec(1 << 14, 32.0, 0.5))
        .level(spec(1 << 16, 16_000_000.0, 0.0))
        .shards_per_level(2)
        .compaction(Arc::new(ManualCompaction))
        .build();
    let stats = store.stats();
    assert_eq!(
        stats.levels[0].family,
        FilterKind::Bloom,
        "hot level must be Bloom: {}",
        stats.levels[0].config_label
    );
    assert!(
        !store.level_store(0).config().immutable(),
        "the hot churn level needs an in-place-mutable family"
    );
    assert_eq!(stats.levels[0].delete_mode, BloomDeleteMode::Counting);
    assert_eq!(
        stats.levels[1].family,
        FilterKind::Fuse,
        "cold static level must be Fuse: {}",
        stats.levels[1].config_label
    );
    assert!(stats.levels[1].fingerprint_bits > 0);

    let mut gen = pof_filter::KeyGen::new(0x7E57);
    let mut oracle: HashMap<u32, usize> = HashMap::new();
    let mut backlog: Vec<Vec<u32>> = Vec::new();
    for round in 0..32 {
        // Insert a fresh wave, delete the oldest live wave: steady-state
        // churn at one delete per insert, far below the hot level's sizing.
        let fresh = gen.distinct_keys(512);
        store.insert_batch(&fresh);
        for &key in &fresh {
            oracle.insert(key, 0);
        }
        backlog.push(fresh);
        if backlog.len() > 4 {
            let doomed = backlog.remove(0);
            let mut expected = 0;
            for key in &doomed {
                if oracle.remove(key).is_some() {
                    expected += 1;
                }
            }
            assert_eq!(store.delete_batch(&doomed), expected);
        }
        if round % 8 == 7 {
            // Spill the hot level; survivors now live cold.
            store.compact(0);
            for slot in oracle.values_mut() {
                *slot = 1;
            }
        }
        let stats = store.stats();
        assert_eq!(stats.total_tombstones(), 0, "round {round}: tombstones");
        assert_eq!(
            stats.levels[0].rebuilds, 0,
            "round {round}: the hot counting level rebuilt"
        );
        assert_eq!(store.key_count(), oracle.len(), "round {round}");
    }
    // Full membership check at the end, both read paths.
    let members: Vec<u32> = oracle.keys().copied().collect();
    let mut sel = SelectionVector::new();
    store.contains_batch(&members, &mut sel);
    assert_eq!(sel.len(), members.len());
    for &key in &members {
        assert!(store.contains(key));
    }
    // maintain() finds nothing to purge: the delete-heavy regime is quiet.
    store.maintain();
    let stats = store.stats();
    assert_eq!(stats.levels[0].rebuilds, 0);
    assert_eq!(stats.total_tombstones(), 0);
    assert!(stats.levels[0].store.total_counting_sidecar_bytes() > 0);
}
