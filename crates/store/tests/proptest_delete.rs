//! Property-based delete correctness: random interleavings of
//! `insert_batch` / `delete_batch` / `contains_batch` / `maintain` against a
//! `HashSet` oracle, across all three rebuild policies and all three delete
//! families (Cuckoo in-place, Bloom tombstone, Bloom counting).
//!
//! Invariants asserted on every interleaving:
//! * the store's live key count equals the oracle's size (tombstone-aware
//!   bookkeeping),
//! * `delete_batch` reports exactly the oracle's removal count,
//! * **no false negatives, ever**: every oracle member answers positive via
//!   both the point and the batch read path, through rebuilds, tombstones,
//!   overflow parks and folds.
//!
//! Cuckoo-shard stores additionally match the oracle *exactly* after
//! delete-then-reinsert cycles: deletes physically remove signatures, so a
//! fully drained store answers negative for everything.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::SelectionVector;
use pof_store::{
    BloomDeleteMode, DeferredBatch, FprDrift, RebuildMode, RebuildPolicy, SaturationDoubling,
    ShardedFilterStore, StoreBuilder,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Every delete family the store supports: Cuckoo shards (in-place by
/// construction; the delete mode is ignored), Bloom shards in tombstone
/// mode, and Bloom shards in counting mode.
fn family_strategy() -> impl Strategy<Value = (FilterConfig, BloomDeleteMode)> {
    prop_oneof![
        Just((
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic
            )),
            BloomDeleteMode::Tombstone
        )),
        Just((
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
            BloomDeleteMode::Tombstone
        )),
        Just((
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic
            )),
            BloomDeleteMode::Counting
        )),
        Just((
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
            BloomDeleteMode::Counting
        )),
        Just((
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
            BloomDeleteMode::Tombstone
        )),
        Just((
            FilterConfig::Cuckoo(CuckooConfig::new(8, 4, CuckooAddressing::Magic)),
            BloomDeleteMode::Tombstone
        )),
    ]
}

fn policy_for(index: usize) -> Arc<dyn RebuildPolicy> {
    match index {
        0 => Arc::new(SaturationDoubling),
        1 => Arc::new(FprDrift::new(2.0)),
        _ => Arc::new(DeferredBatch::new(64)),
    }
}

/// Every oracle member must qualify through the batch read path.
fn assert_no_false_negatives(store: &ShardedFilterStore, oracle: &HashSet<u32>, label: &str) {
    let members: Vec<u32> = oracle.iter().copied().collect();
    let mut sel = SelectionVector::new();
    store.contains_batch(&members, &mut sel);
    assert_eq!(
        sel.len(),
        members.len(),
        "{label}: a live key went missing ({} of {} answered)",
        sel.len(),
        members.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interleaved_inserts_and_deletes_match_a_hashset_oracle(
        family in family_strategy(),
        policy_index in 0usize..3,
        shard_pow in 0u32..3,
        ops in prop::collection::vec(
            (0u8..4, prop::collection::vec(any::<u32>(), 1..300)),
            1..14,
        ),
    ) {
        let (config, delete_mode) = family;
        let store = StoreBuilder::new()
            .shards(1usize << shard_pow)
            // Deliberately tiny: growth, drift and deferral all trigger.
            .expected_keys(256)
            .bits_per_key(16.0)
            .config(config)
            .rebuild_policy(policy_for(policy_index))
            .bloom_deletes(delete_mode)
            .build();
        let mut oracle: HashSet<u32> = HashSet::new();
        let label = format!("{} policy#{policy_index} {delete_mode:?}", config.label());

        for (op, keys) in &ops {
            match op % 4 {
                0 => {
                    store.insert_batch(keys);
                    oracle.extend(keys.iter().copied());
                }
                1 => {
                    // The oracle replays the same per-key semantics: a key is
                    // removed once; a duplicate within the batch is a no-op.
                    let mut expected = 0usize;
                    for &key in keys {
                        if oracle.remove(&key) {
                            expected += 1;
                        }
                    }
                    let removed = store.delete_batch(keys);
                    prop_assert_eq!(removed, expected, "{}: delete count", &label);
                }
                2 => {
                    // Batch lookups: no member of the oracle that happens to
                    // be probed may answer negative.
                    let mut sel = SelectionVector::new();
                    store.contains_batch(keys, &mut sel);
                    let hits: HashSet<u32> = sel.as_slice().iter().map(|&i| keys[i as usize]).collect();
                    for &key in keys.iter().filter(|k| oracle.contains(k)) {
                        prop_assert!(hits.contains(&key), "{}: false negative for {key}", &label);
                    }
                }
                _ => {
                    store.maintain();
                }
            }
            prop_assert_eq!(store.key_count(), oracle.len(), "{}: key_count", &label);
            if delete_mode == BloomDeleteMode::Counting {
                // Counting shards delete in place; tombstones never appear.
                prop_assert_eq!(store.stats().total_tombstones(), 0u64, "{}", &label);
            }
        }
        assert_no_false_negatives(&store, &oracle, &label);
        // And after a final fold/purge everything still holds.
        store.maintain();
        prop_assert_eq!(store.key_count(), oracle.len());
        assert_no_false_negatives(&store, &oracle, &label);
    }

    /// The background-rebuild twin of the interleaved oracle test, with the
    /// delta-replay window under direct proptest control: the store runs in
    /// queued mode (rebuild jobs advance one phase — snapshot, then
    /// build+replay+swap — per explicit step), the tiny sizing forces every
    /// policy to keep requesting rebuilds, and the op stream interleaves
    /// `insert_batch`/`delete_batch` with rebuild phases at random. No
    /// oracle member may answer negative at *any* intermediate snapshot —
    /// before the key-set snapshot, inside the delta window, right after the
    /// swap — and the live count must track the oracle exactly.
    #[test]
    fn background_rebuilds_preserve_the_oracle_at_every_interleaving(
        family in family_strategy(),
        policy_index in 0usize..3,
        shard_pow in 0u32..3,
        ops in prop::collection::vec(
            (0u8..5, prop::collection::vec(any::<u32>(), 1..300)),
            1..16,
        ),
    ) {
        let (config, delete_mode) = family;
        let store = StoreBuilder::new()
            .shards(1usize << shard_pow)
            // Deliberately tiny: rebuild requests fire constantly, so the
            // delta-replay window is open for most of the op stream.
            .expected_keys(256)
            .bits_per_key(16.0)
            .config(config)
            .rebuild_policy(policy_for(policy_index))
            .rebuild_mode(RebuildMode::Queued)
            .bloom_deletes(delete_mode)
            .build();
        let mut oracle: HashSet<u32> = HashSet::new();
        let label = format!(
            "{} policy#{policy_index} {delete_mode:?} background",
            config.label()
        );

        for (op, keys) in &ops {
            match op % 5 {
                0 => {
                    store.insert_batch(keys);
                    oracle.extend(keys.iter().copied());
                }
                1 => {
                    let mut expected = 0usize;
                    for &key in keys {
                        if oracle.remove(&key) {
                            expected += 1;
                        }
                    }
                    let removed = store.delete_batch(keys);
                    prop_assert_eq!(removed, expected, "{}: delete count", &label);
                }
                2 => {
                    let mut sel = SelectionVector::new();
                    store.contains_batch(keys, &mut sel);
                    let hits: HashSet<u32> = sel.as_slice().iter().map(|&i| keys[i as usize]).collect();
                    for &key in keys.iter().filter(|k| oracle.contains(k)) {
                        prop_assert!(hits.contains(&key), "{}: false negative for {key}", &label);
                    }
                }
                3 => {
                    // Advance one rebuild phase: a snapshot (opening the
                    // delta window) or a build+replay+swap, whichever is
                    // next in the queue. The key count (batch length) adds
                    // schedule variety for free.
                    store.run_pending_rebuilds(keys.len() % 2 + 1);
                }
                _ => {
                    // Drain barrier: every requested rebuild lands.
                    store.maintain();
                    prop_assert_eq!(store.pending_rebuilds(), 0usize);
                }
            }
            prop_assert_eq!(store.key_count(), oracle.len(), "{}: key_count", &label);
            assert_no_false_negatives(&store, &oracle, &label);
        }
        // Settle all in-flight work; the contract must hold exactly.
        store.maintain();
        prop_assert_eq!(store.key_count(), oracle.len());
        assert_no_false_negatives(&store, &oracle, &label);
    }

    /// Cuckoo shards delete physically: after arbitrary delete-then-reinsert
    /// cycles the store matches the oracle exactly — a fully drained store
    /// answers negative for *every* probe (no residue), and reinserted keys
    /// are indistinguishable from never-deleted ones.
    #[test]
    fn cuckoo_stores_match_the_oracle_exactly_through_delete_reinsert_cycles(
        policy_index in 0usize..3,
        keys in prop::collection::hash_set(any::<u32>(), 64..1_500),
        cycles in 1usize..4,
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let config = FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo));
        let store = StoreBuilder::new()
            .shards(4)
            .expected_keys(keys.len())
            .bits_per_key(20.0)
            .config(config)
            .rebuild_policy(policy_for(policy_index))
            .build();
        let mut oracle: HashSet<u32> = HashSet::new();

        store.insert_batch(&keys);
        oracle.extend(keys.iter().copied());
        for cycle in 0..cycles {
            // Delete a rotating half, verify, reinsert it.
            let half: Vec<u32> = keys
                .iter()
                .copied()
                .filter(|k| (*k as usize + cycle).is_multiple_of(2))
                .collect();
            for key in &half {
                oracle.remove(key);
            }
            prop_assert_eq!(store.delete_batch(&half), half.len());
            prop_assert_eq!(store.key_count(), oracle.len());
            assert_no_false_negatives(&store, &oracle, "cuckoo cycle");
            store.insert_batch(&half);
            oracle.extend(half.iter().copied());
            prop_assert_eq!(store.key_count(), oracle.len());
        }
        assert_no_false_negatives(&store, &oracle, "cuckoo final");

        // Drain completely: an emptied Cuckoo store holds zero signatures,
        // so every former member must now answer negative — exact agreement
        // with the empty oracle, not just "no false negatives".
        prop_assert_eq!(store.delete_batch(&keys), keys.len());
        prop_assert_eq!(store.key_count(), 0);
        store.maintain();
        let mut sel = SelectionVector::new();
        store.contains_batch(&keys, &mut sel);
        prop_assert_eq!(sel.len(), 0, "drained cuckoo store still answers positive");
        prop_assert_eq!(store.stats().total_tombstones(), 0u64);
    }

    /// Deletes of absent keys, double-deletes and re-inserts after delete:
    /// one op stream over a deliberately tiny key domain (0..400, so the
    /// collisions actually happen) applied side by side to all three delete
    /// families — Cuckoo in-place, Bloom tombstone, Bloom counting — against
    /// a single `HashSet` oracle. Every family must report the oracle's
    /// removal counts, track its live count, and stay false-negative-free;
    /// the counting store must additionally never mint a tombstone.
    #[test]
    fn absent_double_and_reinserted_deletes_agree_across_delete_modes(
        policy_index in 0usize..3,
        ops in prop::collection::vec(
            (0u8..3, prop::collection::vec(0u32..400, 1..120)),
            1..18,
        ),
    ) {
        let families: Vec<(&str, FilterConfig, BloomDeleteMode)> = vec![
            (
                "cuckoo-in-place",
                FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
                BloomDeleteMode::Tombstone,
            ),
            (
                "bloom-tombstone",
                FilterConfig::Bloom(BloomConfig::cache_sectorized(
                    512,
                    64,
                    2,
                    8,
                    Addressing::Magic,
                )),
                BloomDeleteMode::Tombstone,
            ),
            (
                "bloom-counting",
                FilterConfig::Bloom(BloomConfig::cache_sectorized(
                    512,
                    64,
                    2,
                    8,
                    Addressing::Magic,
                )),
                BloomDeleteMode::Counting,
            ),
        ];
        let stores: Vec<(&str, BloomDeleteMode, ShardedFilterStore)> = families
            .into_iter()
            .map(|(name, config, mode)| {
                let store = StoreBuilder::new()
                    .shards(2)
                    .expected_keys(128)
                    .bits_per_key(18.0)
                    .config(config)
                    .rebuild_policy(policy_for(policy_index))
                    .bloom_deletes(mode)
                    .build();
                (name, mode, store)
            })
            .collect();
        let mut oracle: HashSet<u32> = HashSet::new();

        for (op, keys) in &ops {
            match op % 3 {
                0 => {
                    // With a 400-key domain most inserts are re-inserts of
                    // previously deleted keys.
                    for (_, _, store) in &stores {
                        store.insert_batch(keys);
                    }
                    oracle.extend(keys.iter().copied());
                }
                1 => {
                    // The batch mixes live keys, absent keys (never inserted
                    // or already deleted) and duplicates; every family must
                    // report exactly the oracle's removal count.
                    let mut expected = 0usize;
                    for &key in keys {
                        if oracle.remove(&key) {
                            expected += 1;
                        }
                    }
                    for (name, _, store) in &stores {
                        prop_assert_eq!(
                            store.delete_batch(keys), expected,
                            "{}: removal count", name
                        );
                        // An immediate double-delete of the very same batch
                        // removes nothing and corrupts nothing.
                        prop_assert_eq!(
                            store.delete_batch(keys), 0,
                            "{}: double-delete", name
                        );
                    }
                }
                _ => {
                    for (_, _, store) in &stores {
                        store.maintain();
                    }
                }
            }
            for (name, mode, store) in &stores {
                prop_assert_eq!(store.key_count(), oracle.len(), "{}: key_count", name);
                assert_no_false_negatives(store, &oracle, name);
                if *mode == BloomDeleteMode::Counting {
                    prop_assert_eq!(
                        store.stats().total_tombstones(), 0u64,
                        "{}: counting minted tombstones", name
                    );
                }
            }
        }
        // A final reinsert-everything wave: previously deleted keys must be
        // indistinguishable from fresh ones in every family.
        let all: Vec<u32> = (0..400).collect();
        for (_, _, store) in &stores {
            store.insert_batch(&all);
        }
        oracle.extend(all.iter().copied());
        for (name, _, store) in &stores {
            store.maintain();
            prop_assert_eq!(store.key_count(), oracle.len(), "{}: final key_count", name);
            assert_no_false_negatives(store, &oracle, name);
        }
    }
}
