//! Loom-style deterministic interleaving tests for the background-rebuild
//! snapshot-swap/delta-replay handoff.
//!
//! Real `loom` model-checks thread interleavings at the atomic-operation
//! level; offline, we get the same guarantee at the *logical-operation*
//! level without vendoring a model checker: in [`RebuildMode::Queued`] a
//! background rebuild advances in two explicit phases (key-set snapshot,
//! then off-lock build + delta replay + atomic swap) only when the test
//! calls [`ShardedFilterStore::run_pending_rebuilds`]. The maintainer thread
//! interacts with the writer **only** at those two lock acquisitions, so
//! enumerating every placement of the two phases among the writer's
//! operations explores every order in which the threaded maintainer and a
//! writer can interleave their critical sections — exhaustively, and
//! reproducibly on one core.
//!
//! For every schedule, every policy and both filter families, the invariants
//! checked after *each* step are the store's contract: no oracle member ever
//! answers negative (point and batch paths agree), and the live key count
//! matches the oracle exactly.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{KeyGen, SelectionVector};
use pof_store::{
    BloomDeleteMode, DeferredBatch, FprDrift, LevelSpec, ManualCompaction, RebuildMode,
    RebuildPolicy, SaturationDoubling, ShardedFilterStore, StoreBuilder, TieredStore,
    TieredStoreBuilder,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Every delete family: Bloom tombstone, Bloom counting (in-place via the
/// counting sidecar — rebuilt replacements must keep their counters through
/// the snapshot-swap handoff), Cuckoo in-place, and the immutable fuse
/// family, whose *every* mutation routes through the same snapshot-swap
/// machinery the schedules enumerate.
fn configs() -> Vec<(FilterConfig, BloomDeleteMode)> {
    let bloom = FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ));
    vec![
        (bloom, BloomDeleteMode::Tombstone),
        (bloom, BloomDeleteMode::Counting),
        (
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
            BloomDeleteMode::Tombstone,
        ),
        (
            FilterConfig::Fuse(pof_core::FuseConfig::fuse8()),
            BloomDeleteMode::Tombstone,
        ),
    ]
}

fn policies() -> Vec<(&'static str, Arc<dyn RebuildPolicy>)> {
    vec![
        ("saturation-doubling", Arc::new(SaturationDoubling)),
        ("fpr-drift", Arc::new(FprDrift::new(2.0))),
        ("deferred-batch", Arc::new(DeferredBatch::new(16))),
    ]
}

/// One writer operation in the scripted schedule.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    Delete(Vec<u32>),
}

fn apply(store: &ShardedFilterStore, oracle: &mut HashSet<u32>, op: &Op) {
    match op {
        Op::Insert(keys) => {
            store.insert_batch(keys);
            oracle.extend(keys.iter().copied());
        }
        Op::Delete(keys) => {
            let mut expected = 0;
            for key in keys {
                if oracle.remove(key) {
                    expected += 1;
                }
            }
            assert_eq!(store.delete_batch(keys), expected, "delete count");
        }
    }
}

fn assert_consistent(store: &ShardedFilterStore, oracle: &HashSet<u32>, label: &str) {
    assert_eq!(store.key_count(), oracle.len(), "{label}: key_count");
    let members: Vec<u32> = oracle.iter().copied().collect();
    let mut sel = SelectionVector::new();
    store.contains_batch(&members, &mut sel);
    assert_eq!(sel.len(), members.len(), "{label}: batch false negative");
    for &key in &members {
        assert!(store.contains(key), "{label}: point false negative {key}");
    }
}

/// Every placement of the two maintainer phases among the writer ops: the
/// snapshot runs after `i` ops, the swap after `j >= i` ops.
#[test]
fn every_snapshot_swap_placement_preserves_membership() {
    let mut gen = KeyGen::new(0x1417);
    let saturating = gen.distinct_keys(300);
    let fresh_b = gen.distinct_keys(120);
    let fresh_c = gen.distinct_keys(80);
    let half_a: Vec<u32> = saturating.iter().copied().step_by(2).collect();
    let half_b: Vec<u32> = fresh_b.iter().copied().step_by(2).collect();
    let script = [
        Op::Insert(fresh_b.clone()),
        Op::Delete(half_a.clone()),
        Op::Insert(fresh_c.clone()),
        Op::Delete(half_b.clone()),
    ];

    for (config, delete_mode) in configs() {
        for (policy_name, policy) in policies() {
            for i in 0..=script.len() {
                for j in i..=script.len() {
                    let label = format!(
                        "{} {delete_mode:?} {policy_name} snapshot@{i} swap@{j}",
                        config.label()
                    );
                    let store = StoreBuilder::new()
                        .shards(1)
                        .expected_keys(64)
                        .bits_per_key(16.0)
                        .config(config)
                        .rebuild_policy(Arc::clone(&policy))
                        .rebuild_mode(RebuildMode::Queued)
                        .bloom_deletes(delete_mode)
                        .build();
                    let mut oracle: HashSet<u32> = HashSet::new();

                    // Saturate far past the 64-key sizing: every policy must
                    // have requested exactly one background rebuild, or the
                    // schedule would exercise nothing.
                    apply(&store, &mut oracle, &Op::Insert(saturating.clone()));
                    assert_eq!(store.pending_rebuilds(), 1, "{label}: no job requested");
                    assert_consistent(&store, &oracle, &label);

                    for (step, op) in script.iter().enumerate() {
                        if step == i {
                            // Phase one: key-set snapshot, delta window opens.
                            store.run_pending_rebuilds(1);
                        }
                        if step == j {
                            // Phase two: off-lock build, delta replay, swap.
                            store.run_pending_rebuilds(1);
                        }
                        apply(&store, &mut oracle, op);
                        assert_consistent(&store, &oracle, &label);
                    }
                    if i == script.len() {
                        store.run_pending_rebuilds(1);
                    }
                    if j == script.len() {
                        store.run_pending_rebuilds(1);
                    }
                    assert_consistent(&store, &oracle, &label);

                    // Drain whatever later ops may have requested; the
                    // scripted job itself must have swapped in off-lock.
                    store.maintain();
                    assert_eq!(store.pending_rebuilds(), 0, "{label}: drain left work");
                    assert_consistent(&store, &oracle, &label);
                    let stats = store.stats();
                    assert!(
                        stats.total_background_rebuilds() >= 1,
                        "{label}: the background swap never landed: {stats:?}"
                    );
                }
            }
        }
    }
}

/// One writer operation against a tiered store in the scripted schedule.
#[derive(Debug, Clone)]
enum TieredOp {
    Insert(Vec<u32>),
    Delete(Vec<u32>),
    /// `compact(0)`: spill the hot level's live key set into the cold level.
    Compact,
}

fn apply_tiered(store: &TieredStore, oracle: &mut HashMap<u32, usize>, op: &TieredOp) {
    match op {
        TieredOp::Insert(keys) => {
            store.insert_batch(keys);
            for &key in keys {
                oracle.insert(key, 0);
            }
        }
        TieredOp::Delete(keys) => {
            let mut expected = 0;
            for key in keys {
                if oracle.remove(key).is_some() {
                    expected += 1;
                }
            }
            assert_eq!(store.delete_batch(keys), expected, "tiered delete count");
        }
        TieredOp::Compact => {
            store.compact(0);
            for level in oracle.values_mut() {
                *level = 1;
            }
        }
    }
}

fn assert_tiered_consistent(store: &TieredStore, oracle: &HashMap<u32, usize>, label: &str) {
    assert_eq!(store.key_count(), oracle.len(), "{label}: key_count");
    let stats = store.stats();
    for level in 0..2 {
        let expected = oracle.values().filter(|&&l| l == level).count() as u64;
        assert_eq!(
            stats.levels[level].live_keys, expected,
            "{label}: level {level} live count"
        );
    }
    let members: Vec<u32> = oracle.keys().copied().collect();
    let mut sel = SelectionVector::new();
    store.contains_batch(&members, &mut sel);
    assert_eq!(sel.len(), members.len(), "{label}: batch false negative");
    for &key in &members {
        assert!(store.contains(key), "{label}: point false negative {key}");
    }
}

/// A `compact()` racing a pending shard rebuild, enumerated exhaustively:
/// the cold level's single shard is saturated up front so it has exactly one
/// queued background rebuild, and the two rebuild phases (key-set snapshot,
/// then build + delta replay + swap) are placed at every position among a
/// script of hot-level writes and `compact(0)` calls — so the compaction's
/// merge lands before the snapshot, inside the delta-replay window, or after
/// the swap, for every delete family the cold level can run.
#[test]
fn every_compaction_rebuild_interleaving_preserves_the_level_oracle() {
    let mut gen = KeyGen::new(0x1419);
    let cold_seed = gen.distinct_keys(300);
    let fresh_b = gen.distinct_keys(120);
    let fresh_c = gen.distinct_keys(80);
    // Deletes spanning both levels: seeded cold keys and hot newcomers.
    let mixed_a: Vec<u32> = cold_seed
        .iter()
        .chain(&fresh_b)
        .copied()
        .step_by(2)
        .collect();
    let mixed_b: Vec<u32> = fresh_b.iter().chain(&fresh_c).copied().step_by(3).collect();
    let script = [
        TieredOp::Insert(fresh_b.clone()),
        TieredOp::Compact,
        TieredOp::Delete(mixed_a.clone()),
        TieredOp::Insert(fresh_c.clone()),
        TieredOp::Compact,
        TieredOp::Delete(mixed_b.clone()),
    ];

    for (cold_config, cold_delete_mode) in configs() {
        for (policy_name, policy) in policies() {
            for i in 0..=script.len() {
                for j in i..=script.len() {
                    let label = format!(
                        "cold={} {cold_delete_mode:?} {policy_name} snapshot@{i} swap@{j}",
                        cold_config.label()
                    );
                    // Hot level sized generously (it never queues a rebuild
                    // of its own, so the scripted phases deterministically
                    // address the cold level's job); cold level sized at 64
                    // keys so seeding it queues exactly one rebuild.
                    let hot_spec = LevelSpec {
                        expected_keys: 4_096,
                        work_saved_cycles: 32.0,
                        delete_rate: 0.5,
                        ..LevelSpec::default()
                    };
                    let cold_spec = LevelSpec {
                        expected_keys: 64,
                        work_saved_cycles: 1e7,
                        delete_rate: 0.0,
                        ..LevelSpec::default()
                    };
                    let store = TieredStoreBuilder::new()
                        .level_pinned(
                            hot_spec,
                            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                                512,
                                64,
                                2,
                                8,
                                Addressing::Magic,
                            )),
                            16.0,
                            BloomDeleteMode::Counting,
                        )
                        .level_pinned(cold_spec, cold_config, 16.0, cold_delete_mode)
                        .shards_per_level(1)
                        .rebuild_policy(Arc::clone(&policy))
                        .rebuild_mode(RebuildMode::Queued)
                        .compaction(Arc::new(ManualCompaction))
                        .build();
                    let mut oracle: HashMap<u32, usize> = HashMap::new();

                    // Saturate the cold level far past its 64-key sizing:
                    // exactly one background rebuild must be pending there.
                    store.load_level(1, &cold_seed);
                    for &key in &cold_seed {
                        oracle.insert(key, 1);
                    }
                    assert_eq!(store.pending_rebuilds(), 1, "{label}: no job requested");
                    assert_tiered_consistent(&store, &oracle, &label);

                    for (step, op) in script.iter().enumerate() {
                        if step == i {
                            store.run_pending_rebuilds(1);
                        }
                        if step == j {
                            store.run_pending_rebuilds(1);
                        }
                        apply_tiered(&store, &mut oracle, op);
                        assert_tiered_consistent(&store, &oracle, &label);
                    }
                    if i == script.len() {
                        store.run_pending_rebuilds(1);
                    }
                    if j == script.len() {
                        store.run_pending_rebuilds(1);
                    }
                    assert_tiered_consistent(&store, &oracle, &label);

                    // Drain whatever the compactions may have requested
                    // since; every level settles and the contract holds.
                    store.maintain();
                    assert_eq!(store.pending_rebuilds(), 0, "{label}: drain left work");
                    assert_tiered_consistent(&store, &oracle, &label);
                }
            }
        }
    }
}

/// A live family *migration* is a rebuild with a different target config,
/// so it rides the same two queued phases — and must survive the same
/// exhaustive placement enumeration. A counting-Bloom store is told to
/// migrate to the immutable fuse family via
/// [`ShardedFilterStore::migrate_to`]; the snapshot and the
/// build-replay-swap are placed at every position among a script of writes
/// and deletes, so the delta window sees inserts the fuse build missed
/// (parked in overflow) and deletes of snapshotted keys (tombstoned on the
/// immutable replacement) in every order. Membership and key counts are
/// checked against the oracle after every step.
#[test]
fn every_migration_phase_placement_preserves_membership() {
    let mut gen = KeyGen::new(0x141a);
    let seed = gen.distinct_keys(300);
    let fresh_b = gen.distinct_keys(120);
    let fresh_c = gen.distinct_keys(80);
    let half_a: Vec<u32> = seed.iter().copied().step_by(2).collect();
    let half_b: Vec<u32> = fresh_b.iter().copied().step_by(2).collect();
    let script = [
        Op::Insert(fresh_b.clone()),
        Op::Delete(half_a.clone()),
        Op::Insert(fresh_c.clone()),
        Op::Delete(half_b.clone()),
    ];
    let bloom = FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ));
    let fuse = FilterConfig::Fuse(pof_core::FuseConfig::fuse8());

    for i in 0..=script.len() {
        for j in i..=script.len() {
            let label = format!("migration snapshot@{i} swap@{j}");
            // Sized so the script never saturates: the only queued job is
            // the migration's, and the scripted phases address it alone.
            let store = StoreBuilder::new()
                .shards(1)
                .expected_keys(4_096)
                .bits_per_key(16.0)
                .config(bloom)
                .bloom_deletes(BloomDeleteMode::Counting)
                .rebuild_mode(RebuildMode::Queued)
                .build();
            let mut oracle: HashSet<u32> = HashSet::new();
            apply(&store, &mut oracle, &Op::Insert(seed.clone()));
            assert_eq!(store.pending_rebuilds(), 0, "{label}: unexpected job");

            assert_eq!(
                store.migrate_to(fuse, 12.0, BloomDeleteMode::Tombstone),
                1,
                "{label}: migration not requested"
            );
            assert_eq!(store.pending_rebuilds(), 1, "{label}: no job queued");
            assert_consistent(&store, &oracle, &label);

            for (step, op) in script.iter().enumerate() {
                if step == i {
                    // Phase one: key-set snapshot, delta window opens.
                    store.run_pending_rebuilds(1);
                }
                if step == j {
                    // Phase two: off-lock fuse build, delta replay, swap.
                    store.run_pending_rebuilds(1);
                }
                apply(&store, &mut oracle, op);
                assert_consistent(&store, &oracle, &label);
            }
            if i == script.len() {
                store.run_pending_rebuilds(1);
            }
            if j == script.len() {
                store.run_pending_rebuilds(1);
            }
            assert_consistent(&store, &oracle, &label);

            store.maintain();
            assert_eq!(store.pending_rebuilds(), 0, "{label}: drain left work");
            assert_consistent(&store, &oracle, &label);
            assert_eq!(
                store.config().kind(),
                pof_filter::FilterKind::Fuse,
                "{label}: family never flipped"
            );
            let stats = store.stats();
            assert_eq!(stats.total_migrations(), 1, "{label}: migration count");
            assert!(
                stats.shards[0].fingerprint_bits > 0,
                "{label}: not fuse-backed"
            );
        }
    }
}

/// The swap phase can also race a *concurrent* writer batch in threaded
/// background mode; the queued harness above fixes the order, this smoke
/// checks the same invariants when the real maintainer thread chooses it.
#[test]
fn threaded_handoff_smoke() {
    for (config, delete_mode) in configs() {
        let store = StoreBuilder::new()
            .shards(2)
            .expected_keys(128)
            .bits_per_key(16.0)
            .config(config)
            .rebuild_mode(RebuildMode::Background)
            .bloom_deletes(delete_mode)
            .build();
        let mut gen = KeyGen::new(0x1418);
        let mut oracle: HashSet<u32> = HashSet::new();
        for _ in 0..20 {
            let batch = gen.distinct_keys(400);
            store.insert_batch(&batch);
            oracle.extend(batch.iter().copied());
            let doomed: Vec<u32> = batch.iter().copied().step_by(3).collect();
            for key in &doomed {
                oracle.remove(key);
            }
            assert_eq!(store.delete_batch(&doomed), doomed.len());
            assert_consistent(&store, &oracle, "threaded smoke");
        }
        store.maintain();
        assert_consistent(&store, &oracle, "threaded smoke (drained)");
    }
}
