//! Oracle tests for online re-advising: a store under random churn is
//! dragged through a scripted workload-drift schedule (hot-churny →
//! cold-churny → cold-static) and must walk the full family ladder —
//! counting Bloom → Cuckoo → immutable fuse — while *every* oracle member
//! answers positive at *every* step, across every migration boundary.
//!
//! The drift is scripted (hints move, churn stops on cue) but the keys are
//! pseudo-random and the store's own decayed observation of the traffic
//! decides when each hysteresis streak completes, so the exact migration
//! rounds are emergent. The invariant is not: zero false negatives, ever.

use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_filter::{FilterKind, KeyGen, SelectionVector};
use pof_store::{
    BloomDeleteMode, LevelSpec, ReadviseOptions, RebuildMode, ShardedFilterStore, StoreBuilder,
};
use std::collections::HashSet;

fn bloom() -> FilterConfig {
    FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ))
}

/// Hot level in front of a cheap miss: Bloom territory.
fn hot_churny_hint() -> LevelSpec {
    LevelSpec {
        expected_keys: 1 << 15,
        work_saved_cycles: 32.0,
        sigma: 0.5,
        delete_rate: 0.4,
        expected_probes_per_key: 4.0,
    }
}

/// Misses now cost a simulated disk read but the churn continues: the
/// in-place-deleting Cuckoo family wins.
fn cold_churny_hint() -> LevelSpec {
    LevelSpec {
        expected_keys: 1 << 15,
        work_saved_cycles: 16_000_000.0,
        sigma: 0.0,
        delete_rate: 0.5,
        expected_probes_per_key: 1_000_000.0,
    }
}

/// The set went static behind expensive misses: fuse territory.
fn cold_static_hint() -> LevelSpec {
    LevelSpec {
        expected_keys: 1 << 15,
        work_saved_cycles: 16_000_000.0,
        sigma: 0.0,
        delete_rate: 0.0,
        expected_probes_per_key: 1_000_000.0,
    }
}

struct Harness {
    store: ShardedFilterStore,
    oracle: HashSet<u32>,
    gen: KeyGen,
    sel: SelectionVector,
    families: Vec<FilterKind>,
}

impl Harness {
    fn new(store: ShardedFilterStore, seed: u64) -> Self {
        let kind = store.config().kind();
        Self {
            store,
            oracle: HashSet::new(),
            gen: KeyGen::new(seed),
            sel: SelectionVector::new(),
            families: vec![kind],
        }
    }

    fn insert(&mut self, count: usize) {
        let batch: Vec<u32> = self
            .gen
            .distinct_keys(count * 2)
            .into_iter()
            .filter(|key| !self.oracle.contains(key))
            .take(count)
            .collect();
        self.store.insert_batch(&batch);
        self.oracle.extend(batch.iter().copied());
    }

    fn delete(&mut self, count: usize) {
        let doomed: Vec<u32> = self.oracle.iter().copied().take(count).collect();
        for key in &doomed {
            self.oracle.remove(key);
        }
        assert_eq!(self.store.delete_batch(&doomed), doomed.len());
    }

    /// The invariant of the whole suite: every oracle member answers
    /// positive through both the batch and point paths, right now.
    fn assert_no_false_negative(&mut self, label: &str) {
        let members: Vec<u32> = self.oracle.iter().copied().collect();
        self.sel.clear();
        self.store.contains_batch(&members, &mut self.sel);
        assert_eq!(
            self.sel.len(),
            members.len(),
            "{label}: batch false negative (family {:?})",
            self.store.config().kind()
        );
        assert_eq!(self.store.key_count(), self.oracle.len(), "{label}: count");
    }

    /// Record family flips as the store migrates under us.
    fn observe_family(&mut self) {
        let kind = self.store.config().kind();
        if *self.families.last().expect("seeded") != kind {
            self.families.push(kind);
        }
    }

    /// One churn round: delete, insert, look everything up, then let the
    /// store re-advise (and, in queued mode, execute what it scheduled).
    fn round(&mut self, churn: usize, queued: bool, label: &str) {
        if churn > 0 {
            self.delete(churn);
            self.insert(churn);
        }
        self.assert_no_false_negative(label);
        self.store.run_pending_readvise();
        if queued {
            // Execute at most one queued phase per round so migrations span
            // rounds and the churn lands inside their delta windows.
            self.store.run_pending_rebuilds(1);
        }
        self.observe_family();
        self.assert_no_false_negative(label);
    }
}

fn drift_schedule(store: ShardedFilterStore, seed: u64, queued: bool) {
    let mut harness = Harness::new(store, seed);
    harness.insert(24_000);
    harness.assert_no_false_negative("seeding");

    // Phase 1 — hot and churny: the store must hold its Bloom family.
    harness.store.set_workload_hint(hot_churny_hint());
    for round in 0..4 {
        harness.round(1_000, queued, &format!("hot round {round}"));
    }
    assert_eq!(harness.store.config().kind(), FilterKind::Bloom);
    assert_eq!(harness.store.stats().total_migrations(), 0);

    // Phase 2 — misses turn expensive, churn continues: Cuckoo's in-place
    // deletes beat both tombstone rebuilds and fuse re-peels.
    harness.store.set_workload_hint(cold_churny_hint());
    for round in 0..20 {
        harness.round(1_000, queued, &format!("cold-churny round {round}"));
        if harness.store.config().kind() == FilterKind::Cuckoo {
            break;
        }
    }
    assert_eq!(
        harness.store.config().kind(),
        FilterKind::Cuckoo,
        "churny cold drift never reached Cuckoo"
    );

    // Phase 3 — churn stops: once the observed delete rate decays away the
    // advisor retires the set onto an immutable fuse filter.
    harness.store.set_workload_hint(cold_static_hint());
    for round in 0..40 {
        harness.round(0, queued, &format!("cold-static round {round}"));
        if harness.store.config().kind() == FilterKind::Fuse {
            break;
        }
    }
    assert_eq!(
        harness.store.config().kind(),
        FilterKind::Fuse,
        "static cold drift never reached fuse"
    );

    // Settle: drain queued work, then re-check the full contract.
    harness.store.maintain();
    harness.assert_no_false_negative("after drain");
    assert_eq!(
        harness.families,
        vec![FilterKind::Bloom, FilterKind::Cuckoo, FilterKind::Fuse],
        "the drift must walk the full family ladder"
    );
    let stats = harness.store.stats();
    assert!(
        stats.total_migrations() >= 2 * harness.store.shard_count() as u64,
        "two family flips across every shard: {stats:?}"
    );
    assert!(stats.shards.iter().all(|s| s.fingerprint_bits > 0));
    assert_eq!(harness.store.delete_mode(), BloomDeleteMode::Tombstone);
    assert_eq!(stats.total_counting_sidecar_bytes(), 0);

    // The migrated store still takes writes: immutable shards park fresh
    // keys in overflow until the next fold.
    harness.insert(200);
    harness.assert_no_false_negative("post-fuse inserts");
}

fn drift_store(mode: RebuildMode) -> ShardedFilterStore {
    StoreBuilder::new()
        .shards(2)
        .expected_keys(1 << 16)
        .bits_per_key(14.0)
        .config(bloom())
        .bloom_deletes(BloomDeleteMode::Counting)
        .rebuild_mode(mode)
        .readvise(ReadviseOptions {
            workload: hot_churny_hint(),
            ..ReadviseOptions::default()
        })
        .build()
}

#[test]
fn scripted_drift_walks_the_family_ladder_inline() {
    drift_schedule(drift_store(RebuildMode::Inline), 0x5eed_0001, false);
}

#[test]
fn scripted_drift_walks_the_family_ladder_queued() {
    drift_schedule(drift_store(RebuildMode::Queued), 0x5eed_0002, true);
}
