//! Agreement for the tiered miss cascade over the staged mass-probe path:
//! a 4-level store whose bottom level clears the staged footprint floor must
//! answer batched cascades (which route big per-level miss streams through
//! the staged hash → prefetch → probe kernels and prefetch the next level's
//! shard filters mid-scan) exactly like per-key point lookups, and exactly
//! like the plain no-scratch batch path.

use pof_filter::{KeyGen, SelectionVector};
use pof_store::{LevelSpec, TieredProbeScratch, TieredStore, TieredStoreBuilder};

/// Keys loaded per level: the hot level through the write path, colder
/// levels bulk-loaded. The bottom level's 2^21 keys put its filter past the
/// staged 2 MiB footprint floor for every family the advisor might pick
/// (even a fuse8 array at ~1.23 bytes/key comes to ≈2.5 MiB).
const LEVEL_LOADS: [usize; 4] = [1 << 13, 1 << 15, 1 << 17, 1 << 21];

/// A 4-level t_w ladder with one shard per level, so each level's filter is
/// a single contiguous array and a large miss stream arrives at it whole.
fn build_cascade_store() -> (TieredStore, Vec<Vec<u32>>) {
    let ladder = [32.0, 4_096.0, 131_072.0, 16_777_216.0];
    let mut builder = TieredStoreBuilder::new().shards_per_level(1);
    for (index, &work_saved_cycles) in ladder.iter().enumerate() {
        builder = builder.level(LevelSpec {
            expected_keys: (2 * LEVEL_LOADS[index]) as u64,
            work_saved_cycles,
            delete_rate: if index == 0 { 0.4 } else { 0.0 },
            ..LevelSpec::default()
        });
    }
    let store = builder.build();
    let mut gen = KeyGen::new(0xCA5CADE);
    let mut per_level = Vec::new();
    for (level, &count) in LEVEL_LOADS.iter().enumerate() {
        let keys = gen.distinct_keys(count);
        if level == 0 {
            store.insert_batch(&keys);
        } else {
            store.load_level(level, &keys);
        }
        per_level.push(keys);
    }
    (store, per_level)
}

/// Probe stream mixing members of every level with absent keys, sized past
/// the staged batch threshold so the cascade's big levels actually take the
/// staged kernels.
fn probe_stream(per_level: &[Vec<u32>], gen: &mut KeyGen) -> Vec<u32> {
    let mut probes = Vec::new();
    for keys in per_level {
        probes.extend_from_slice(&keys[..1_000]);
    }
    probes.extend(gen.keys(16_000));
    probes
}

#[test]
fn staged_cascade_agrees_with_point_lookups_and_plain_batches() {
    let (store, per_level) = build_cascade_store();
    let mut gen = KeyGen::new(0x0BAC1E);
    let probes = probe_stream(&per_level, &mut gen);

    let mut scratch = TieredProbeScratch::new();
    let mut staged_sel = SelectionVector::with_capacity(probes.len());
    store.contains_batch_with(&probes, &mut staged_sel, &mut scratch);

    // Point-lookup oracle: same snapshots (no writes in between), so the
    // cascade must select exactly the positions whose key tests positive.
    let expected: Vec<u32> = probes
        .iter()
        .enumerate()
        .filter(|(_, &key)| store.contains(key))
        .map(|(position, _)| position as u32)
        .collect();
    assert_eq!(staged_sel.as_slice(), expected, "cascade vs point lookups");

    // The plain batch path (fresh scratch each call) agrees too.
    let mut plain_sel = SelectionVector::with_capacity(probes.len());
    store.contains_batch(&probes, &mut plain_sel);
    assert_eq!(
        plain_sel.as_slice(),
        expected,
        "plain batch vs point lookups"
    );

    // Every probed member of every level qualifies — the cascade lost
    // nobody (no-false-negatives survives the staged rework end to end).
    let member_count = per_level.len() * 1_000;
    let selected: std::collections::HashSet<u32> = staged_sel.as_slice().iter().copied().collect();
    for position in 0..member_count {
        assert!(
            selected.contains(&(position as u32)),
            "member at batch position {position} went missing in the cascade"
        );
    }
}

#[test]
fn staged_cascade_scratch_reuse_is_deterministic() {
    let (store, per_level) = build_cascade_store();
    let mut gen = KeyGen::new(0x5EED);
    let mut scratch = TieredProbeScratch::new();
    let mut first = SelectionVector::new();
    let mut again = SelectionVector::new();
    // Re-probing through warm scratch — including a small sub-threshold
    // batch between two large staged ones — never changes the answers.
    let large = probe_stream(&per_level, &mut gen);
    let small: Vec<u32> = large.iter().copied().take(100).collect();
    store.contains_batch_with(&large, &mut first, &mut scratch);
    let mut small_sel = SelectionVector::new();
    store.contains_batch_with(&small, &mut small_sel, &mut scratch);
    store.contains_batch_with(&large, &mut again, &mut scratch);
    assert_eq!(first.as_slice(), again.as_slice());
    assert_eq!(
        small_sel.as_slice(),
        &first.as_slice()[..small_sel.len()],
        "prefix batch selects a prefix of the full batch's selections"
    );
}
