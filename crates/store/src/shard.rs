//! One shard: a mutable write side guarded by a mutex, and an immutable
//! published snapshot readers probe without ever blocking on writers.

use pof_core::{AnyFilter, FilterConfig};
use pof_filter::Filter;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, RwLock};

/// The write side of a shard. Only ever touched under the shard's write lock.
#[derive(Debug)]
pub(crate) struct ShardWriter {
    /// The filter being mutated. Cloned into a snapshot on publish.
    filter: AnyFilter,
    /// Authoritative key list (distinct keys, insertion order), used to
    /// rebuild the filter on saturation. Kept *alongside* `seen` on purpose:
    /// the vector preserves insertion order, which makes rebuilds
    /// deterministic (a Cuckoo filter's slot placement depends on insert
    /// order; replaying from the randomized-iteration-order set would
    /// produce a different filter on every rebuild). The ~4 bytes/key of
    /// duplication is the price; compacting this bookkeeping is a ROADMAP
    /// item.
    keys: Vec<u32>,
    /// Membership index over `keys`: the store is a *set*, so duplicate
    /// inserts must be no-ops. (Replaying duplicates would also break Cuckoo
    /// rebuilds: a Cuckoo filter is a bag holding at most `2·b` copies of one
    /// fingerprint, so a key inserted more than `2·b` times can never fit at
    /// any capacity and the rebuild loop would grow forever.)
    seen: HashSet<u32>,
    /// Number of keys the current filter was sized for.
    capacity: usize,
    /// Configuration every (re)build of this shard uses.
    config: FilterConfig,
    /// Bits-per-key budget every (re)build of this shard uses.
    bits_per_key: f64,
    /// Number of saturation-triggered rebuilds performed so far.
    rebuilds: u64,
}

/// A shard of the store.
#[derive(Debug)]
pub(crate) struct Shard {
    writer: Mutex<ShardWriter>,
    /// The published snapshot. Readers take the read lock only long enough to
    /// clone the `Arc`; the actual probing happens on the clone, outside any
    /// lock, so a concurrent rebuild never stalls or torments a reader.
    snapshot: RwLock<Arc<AnyFilter>>,
}

impl Shard {
    /// Create an empty shard sized for `capacity` keys.
    pub(crate) fn new(config: FilterConfig, capacity: usize, bits_per_key: f64) -> Self {
        let capacity = capacity.max(64);
        let filter = AnyFilter::build(&config, capacity, bits_per_key);
        let snapshot = Arc::new(filter.clone());
        Self {
            writer: Mutex::new(ShardWriter {
                filter,
                keys: Vec::new(),
                seen: HashSet::new(),
                capacity,
                config,
                bits_per_key,
                rebuilds: 0,
            }),
            snapshot: RwLock::new(snapshot),
        }
    }

    /// Load the current published snapshot.
    pub(crate) fn load(&self) -> Arc<AnyFilter> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Insert a batch of keys routed to this shard, rebuilding on saturation,
    /// then publish a fresh snapshot.
    pub(crate) fn insert_batch(&self, keys: &[u32]) {
        if keys.is_empty() {
            return;
        }
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        for &key in keys {
            writer.insert_with_growth(key);
        }
        // Publish while still holding the writer lock: if the snapshot swap
        // happened after unlock, a slower writer could overwrite a newer
        // snapshot with its older clone, momentarily hiding committed keys
        // from readers. Readers only ever take the snapshot *read* lock, so
        // holding both here cannot deadlock.
        let snapshot = Arc::new(writer.filter.clone());
        *self.snapshot.write().expect("snapshot lock poisoned") = snapshot;
    }

    /// Number of keys inserted into this shard.
    pub(crate) fn key_count(&self) -> usize {
        self.writer.lock().expect("writer lock poisoned").keys.len()
    }

    /// A mutually consistent `(snapshot, key_count, rebuilds)` triple.
    ///
    /// Taken under the writer lock — and snapshots are only ever published
    /// under that same lock — so the snapshot cannot be newer or older than
    /// the counters it is paired with (separate `load()` + `key_count()`
    /// calls could interleave with a rebuild and pair a stale filter size
    /// with a fresh key count).
    pub(crate) fn consistent_view(&self) -> (Arc<AnyFilter>, usize, u64) {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let snapshot = Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"));
        (snapshot, writer.keys.len(), writer.rebuilds)
    }

    /// Copy of this shard's authoritative key list.
    pub(crate) fn keys(&self) -> Vec<u32> {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .keys
            .clone()
    }

    /// The configuration this shard builds its filters from.
    pub(crate) fn config(&self) -> FilterConfig {
        self.writer.lock().expect("writer lock poisoned").config
    }
}

impl ShardWriter {
    /// Insert one key, growing the filter when it is saturated. Duplicate
    /// keys are no-ops (set semantics).
    fn insert_with_growth(&mut self, key: u32) {
        if !self.seen.insert(key) {
            return;
        }
        // Proactive growth: once the shard holds as many keys as the filter
        // was sized for, a Bloom shard's false-positive rate starts degrading
        // past its budgeted rate and a Cuckoo shard approaches its maximum
        // load factor. Double before that point.
        self.keys.push(key);
        if self.keys.len() > self.capacity {
            // Replays every key (including the new one) into a doubled filter.
            self.rebuild(self.capacity * 2);
        } else if !self.filter.insert(key) {
            // A Cuckoo relocation chain failed below nominal capacity; rebuild
            // with head-room (the rebuild itself retries larger sizes until
            // every key, including this one, fits).
            self.rebuild(self.capacity * 2);
        }
    }

    /// Rebuild the filter from the authoritative key list at a new capacity.
    ///
    /// Keys already inserted are replayed into the fresh filter; the filter
    /// replaces the write side only (readers keep the previous snapshot until
    /// the caller publishes).
    fn rebuild(&mut self, capacity: usize) {
        let capacity = capacity.max(64);
        'grow: for attempt in 0.. {
            let grown = capacity << attempt;
            let mut filter = AnyFilter::build(&self.config, grown, self.bits_per_key);
            for &key in &self.keys {
                if !filter.insert(key) {
                    continue 'grow;
                }
            }
            self.filter = filter;
            self.capacity = grown;
            self.rebuilds += 1;
            return;
        }
        unreachable!("rebuild retries grow geometrically and must eventually fit");
    }
}
