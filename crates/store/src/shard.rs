//! One shard: a mutable write side guarded by a mutex, and an immutable
//! published snapshot readers probe without ever blocking on writers.
//!
//! The write path is policy-driven: the shard appends keys to its compact
//! key set, asks its [`RebuildPolicy`] what to do (insert in place, rebuild,
//! or defer into the overflow buffer), and publishes a fresh
//! [`ShardSnapshot`] whenever readers could observe the difference.

use crate::keyset::CompactKeySet;
use crate::policy::{RebuildDecision, RebuildPolicy, RebuildUrgency, ShardObservation};
use pof_core::{AnyFilter, FilterConfig};
use pof_filter::{DeleteOutcome, Filter};
use pof_persist::codec::{put_f64, put_u32_slice, put_u64, put_u8, CodecError, Cursor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How a store's Bloom-family shards honor deletes.
///
/// Cuckoo shards always delete in place (their fingerprints are discrete);
/// this knob only decides what a *Bloom* shard does when a key is deleted:
///
/// * [`Tombstone`](Self::Tombstone) (the default): the key leaves the
///   bookkeeping immediately, its filter bits linger as false positives
///   until the shard's [`RebuildPolicy`] next rebuilds (purge). Zero extra
///   memory; delete-heavy workloads keep paying rebuilds.
/// * [`Counting`](Self::Counting): every shard filter carries a
///   per-bit counting sidecar ([`pof_bloom::CountingSidecar`]; 4 bits per
///   filter bit, 8 after promotion, write side only — published snapshots
///   never carry it), and deletes clear bits in place. Tombstones stay at
///   zero, so policies never schedule purge rebuilds — a delete-heavy Bloom
///   store stops rebuilding altogether.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BloomDeleteMode {
    /// Deletes tombstone; the policy's next rebuild purges the bits.
    #[default]
    Tombstone,
    /// Deletes clear bits in place through a per-shard counting sidecar.
    Counting,
}

/// The FPR budget a drift policy compares against: the configuration's
/// modeled FPR at nominal occupancy. Infeasible Cuckoo budgets (the build
/// raises them to the minimum feasible bits-per-key) fall back to the rate
/// near the maximum load factor. Recomputed whenever a migration changes the
/// shard's `(config, bits_per_key)` pair.
fn budget_fpr_for(config: &FilterConfig, capacity: usize, bits_per_key: f64) -> f64 {
    config
        .modeled_fpr(capacity as f64, bits_per_key)
        .unwrap_or_else(|| match config {
            FilterConfig::Cuckoo(c) => c.modeled_fpr(0.95),
            // A fuse filter's FPR is fixed by its fingerprint width
            // regardless of the (possibly structurally infeasible)
            // bits-per-key budget it was recommended under.
            FilterConfig::Fuse(c) => c.modeled_fpr(),
            // Bloom budgets are always feasible; this arm is unreachable.
            _ => f64::INFINITY,
        })
}

/// Build a shard filter, attaching the counting sidecar when the shard runs
/// in [`BloomDeleteMode::Counting`]. Every (re)build path must go through
/// this: a replacement filter without counters could never delete again.
fn build_shard_filter(
    config: &FilterConfig,
    capacity: usize,
    bits_per_key: f64,
    counting: bool,
) -> AnyFilter {
    let mut filter = AnyFilter::build(config, capacity, bits_per_key);
    if counting {
        filter.enable_counting();
    }
    filter
}

/// (Re)build a shard filter over a complete key set, returning the filter and
/// the capacity it was sized for. Mutable families replay the keys in
/// insertion order, growing geometrically until every key fits; immutable
/// (fuse) families peel the whole set in one shot — their size follows from
/// the key count, so the grow loop does not apply (and must not run: a fuse
/// filter refuses incremental inserts, which would spin the loop forever).
fn build_populated_filter(
    config: &FilterConfig,
    keys: &[u32],
    capacity: usize,
    bits_per_key: f64,
    counting: bool,
) -> (AnyFilter, usize) {
    if config.immutable() {
        let filter = AnyFilter::build_with_keys(config, keys, bits_per_key)
            .expect("fuse construction cannot refuse keys");
        return (filter, capacity.max(keys.len()).max(64));
    }
    'grow: for attempt in 0.. {
        let grown = capacity << attempt;
        let mut filter = build_shard_filter(config, grown, bits_per_key, counting);
        for &key in keys {
            if !filter.insert(key) {
                continue 'grow;
            }
        }
        return (filter, grown);
    }
    unreachable!("rebuild retries grow geometrically and must eventually fit");
}

/// What readers probe: the shard's filter at one publish point, plus the
/// exact overflow side buffer of keys a deferring policy has not yet folded
/// into the filter. Probing the buffer keeps the no-false-negative contract
/// even while keys are parked outside the filter.
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    /// The published filter.
    pub(crate) filter: AnyFilter,
    /// Sorted copy of the overflow buffer at publish time (usually empty).
    pub(crate) overflow: Vec<u32>,
}

impl ShardSnapshot {
    /// Is `key` in the published filter or parked in the overflow buffer?
    #[inline]
    pub(crate) fn contains(&self, key: u32) -> bool {
        self.filter.contains(key) || self.overflow.binary_search(&key).is_ok()
    }

    /// Published footprint: filter bits plus the raw bits of parked keys.
    pub(crate) fn size_bits(&self) -> u64 {
        self.filter.size_bits() + 32 * self.overflow.len() as u64
    }
}

/// A request for the store's maintainer: rebuild this shard's filter
/// off-lock and swap it in. Tagged with the writer's rebuild epoch at
/// request time; the swap is refused (and the built filter discarded) if the
/// shard rebuilt by other means in the meantime.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RebuildTicket {
    pub(crate) epoch: u64,
}

/// What [`Shard::maintain`] did.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MaintainOutcome {
    /// Nothing was due.
    Idle,
    /// The shard rebuilt inline.
    Rebuilt,
    /// The shard requested a background rebuild; the caller must enqueue the
    /// ticket with the maintainer.
    Requested(RebuildTicket),
}

/// The shape a migration rebuilds a shard into: a family migration is just a
/// rebuild whose plan carries a different `(config, bits_per_key, counting)`
/// triple than the writer's current one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MigrationTarget {
    /// The replacement filter configuration.
    pub(crate) config: FilterConfig,
    /// The replacement bits-per-key budget.
    pub(crate) bits_per_key: f64,
    /// Whether the replacement carries a counting sidecar
    /// ([`BloomDeleteMode::Counting`]).
    pub(crate) counting: bool,
}

/// What [`Shard::migrate`] did.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MigrateOutcome {
    /// The shard rebuilt into the target family inline.
    Migrated,
    /// The migration was deferred to the maintainer; the caller must enqueue
    /// the ticket.
    Requested(RebuildTicket),
    /// A rebuild is already in flight; try again after it completes.
    Busy,
    /// The shard is already at the target shape; nothing to do.
    Unchanged,
}

/// One write-side mutation logged while a background rebuild is in flight,
/// replayed into the replacement filter (in order) before the swap.
#[derive(Debug, Clone, Copy)]
enum DeltaOp {
    Insert(u32),
    Delete(u32),
}

/// Writer-side state of one in-flight background rebuild.
#[derive(Debug)]
struct PendingRebuild {
    /// Rebuild epoch at request time. An inline fallback rebuild bumps the
    /// writer's epoch, which invalidates this job: its result is discarded
    /// at swap time instead of clobbering the newer filter.
    epoch: u64,
    /// Capacity the policy asked for when the rebuild was requested.
    capacity: usize,
    /// Mutations since the maintainer snapshotted the key set. Bounded: the
    /// writer falls back to an inline rebuild if the shard re-saturates
    /// faster than the maintainer can rebuild (see
    /// [`ShardWriter::shed_backpressure`]).
    delta: Vec<DeltaOp>,
    /// Set once the maintainer has taken its key-set snapshot; from then on
    /// every write is also logged to `delta` for replay.
    delta_active: bool,
    /// When the rebuild was requested, for `rebuild_wait_ns` accounting.
    requested: Instant,
    /// When set, this rebuild is a *migration*: the plan builds the
    /// replacement with the target's `(config, bits_per_key, counting)`, and
    /// the swap adopts them as the writer's new shape.
    target: Option<MigrationTarget>,
}

/// Everything the maintainer needs to build a shard's replacement filter
/// off-lock: copied out under one brief writer lock by
/// [`Shard::begin_rebuild`].
#[derive(Debug)]
pub(crate) struct RebuildPlan {
    keys: Vec<u32>,
    capacity: usize,
    config: FilterConfig,
    bits_per_key: f64,
    counting: bool,
}

impl RebuildPlan {
    /// Build the replacement filter — no locks held. Mirrors
    /// [`ShardWriter::rebuild`]: replay in insertion order, grow
    /// geometrically until every key fits.
    ///
    /// The build runs straight through rather than yielding between chunks:
    /// on a host with a spare core it never competes with writers anyway,
    /// and on a saturated host yielding would stretch the snapshot→swap
    /// window by a writer scheduler slice per chunk, ballooning the delta
    /// the swap must replay (and tripping the backpressure fallback this
    /// subsystem tries to avoid). Keeping the window short keeps the delta
    /// small.
    pub(crate) fn build(&self) -> (AnyFilter, usize) {
        build_populated_filter(
            &self.config,
            &self.keys,
            self.capacity,
            self.bits_per_key,
            self.counting,
        )
    }
}

/// The write side of a shard. Only ever touched under the shard's write lock.
#[derive(Debug)]
pub(crate) struct ShardWriter {
    /// The filter being mutated. Cloned into a snapshot on publish.
    filter: AnyFilter,
    /// Authoritative live-key bookkeeping: one compact order-preserving set
    /// (insertion-ordered replay log + sorted dedup run) instead of the
    /// former `Vec<u32>` + `HashSet<u32>` pair. Insertion order is preserved
    /// because a Cuckoo filter's slot placement depends on insert order —
    /// replaying in any other order would produce a different filter on
    /// every rebuild.
    keys: CompactKeySet,
    /// Keys diverted by a deferring policy: present in `keys`, *not* in
    /// `filter`. Sorted at every lock release so the publish path clones it
    /// as-is and the delete path can binary-search it; within one write
    /// batch freshly parked keys append out of order ([`Self::defer`] is
    /// O(1), not a per-key memmove) and [`Self::seal_overflow`] restores
    /// the invariant once at batch end. Readers see the snapshot's copy.
    overflow: Vec<u32>,
    /// Has `overflow` gained unsorted appends since the last seal?
    overflow_dirty: bool,
    /// Deleted keys still represented in the filter (tombstone-mode Bloom
    /// shards cannot unset bits). Purged to zero by every rebuild;
    /// structurally zero in [`BloomDeleteMode::Counting`] and for Cuckoo
    /// shards, which both delete in place.
    tombstones: usize,
    /// Number of keys the current filter was sized for.
    capacity: usize,
    /// Configuration every (re)build of this shard uses.
    config: FilterConfig,
    /// Bits-per-key budget every (re)build of this shard uses.
    bits_per_key: f64,
    /// Modeled FPR of `(config, bits_per_key)` at nominal occupancy — the
    /// budget that drift-based policies compare against.
    budget_fpr: f64,
    /// Number of policy-triggered rebuilds performed so far.
    rebuilds: u64,
    /// Completed family migrations: rebuilds that swapped the shard's
    /// `(config, bits_per_key, counting)` shape for a re-advised one.
    migrations: u64,
    /// Of those, how many were completed off-lock by the maintainer.
    rebuilds_background: u64,
    /// Cumulative request→swap latency of completed background rebuilds.
    rebuild_wait_ns: u64,
    /// Largest single *inline* rebuild executed on the write path (insert or
    /// delete call), in nanoseconds. Structurally zero when a maintainer
    /// absorbs every rebuild; the backpressure fallback still counts.
    /// Maintenance-time rebuilds (`maintain()`) are excluded, like all
    /// `maintain()` work.
    writer_rebuild_stall_ns: u64,
    /// Monotonic generation of the shard's filter: bumped by every completed
    /// rebuild (inline or swapped-in). Background jobs are tagged with the
    /// epoch at request time and discarded on mismatch.
    rebuild_epoch: u64,
    /// In-flight background rebuild, if any. While set, policy decisions are
    /// suppressed (the replacement is already being built) and writes are
    /// delta-logged for replay.
    pending: Option<PendingRebuild>,
    /// A ticket produced by the last write call, not yet handed to the
    /// store. Taken (and enqueued with the maintainer) by the calling batch
    /// method before it releases the lock.
    ticket: Option<RebuildTicket>,
    /// May `Rebuild` decisions run off-lock? Set iff the owning store runs a
    /// maintainer; `false` keeps the synchronous path bit-for-bit identical
    /// to the pre-maintainer store.
    background: bool,
    /// Do Bloom filters of this shard carry a counting sidecar
    /// ([`BloomDeleteMode::Counting`])? Every rebuild re-attaches it.
    counting: bool,
    /// The lifecycle policy consulted on every append/delete/maintain.
    policy: Arc<dyn RebuildPolicy>,
}

/// A shard of the store.
#[derive(Debug)]
pub(crate) struct Shard {
    writer: Mutex<ShardWriter>,
    /// The published snapshot. Readers take the read lock only long enough to
    /// clone the `Arc`; the actual probing happens on the clone, outside any
    /// lock, so a concurrent rebuild never stalls or torments a reader.
    snapshot: RwLock<Arc<ShardSnapshot>>,
    /// Longest single `insert_batch`/`delete_batch` call observed on this
    /// shard (lock wait + mutation + publish), in nanoseconds — the writer
    /// tail-latency figure the background maintainer exists to shrink.
    /// `maintain()` time is deliberately excluded: that is the dedicated
    /// maintenance slot, not a foreground write.
    max_writer_stall_ns: AtomicU64,
}

/// One mutually consistent sample of a shard, for stats reporting.
pub(crate) struct ShardView {
    /// The published snapshot at sample time.
    pub(crate) snapshot: Arc<ShardSnapshot>,
    /// Live keys (inserted minus deleted, overflow included).
    pub(crate) keys: usize,
    /// Policy-triggered rebuilds so far.
    pub(crate) rebuilds: u64,
    /// Tombstoned (deleted but still filter-resident) keys.
    pub(crate) tombstones: usize,
    /// Keys parked in the overflow buffer.
    pub(crate) overflow: usize,
    /// Writer-side bookkeeping bytes (see `CompactKeySet`).
    pub(crate) bookkeeping_bytes: usize,
    /// Heap bytes of the write-side counting sidecar (0 in tombstone mode
    /// and for Cuckoo shards).
    pub(crate) counting_sidecar_bytes: usize,
    /// Name of the active rebuild policy.
    pub(crate) policy: &'static str,
    /// Rebuilds completed off-lock by the maintainer (subset of `rebuilds`).
    pub(crate) rebuilds_background: u64,
    /// Cumulative request→swap latency of background rebuilds, ns.
    pub(crate) rebuild_wait_ns: u64,
    /// Longest single write call this shard has served, ns.
    pub(crate) max_writer_stall_ns: u64,
    /// Longest single inline rebuild paid by a write call, ns.
    pub(crate) writer_rebuild_stall_ns: u64,
    /// Is a background rebuild currently in flight?
    pub(crate) rebuild_pending: bool,
    /// Completed family migrations (subset of `rebuilds`).
    pub(crate) migrations: u64,
}

impl Shard {
    /// Create an empty shard sized for `capacity` keys.
    pub(crate) fn new(
        config: FilterConfig,
        capacity: usize,
        bits_per_key: f64,
        policy: Arc<dyn RebuildPolicy>,
        background: bool,
        delete_mode: BloomDeleteMode,
    ) -> Self {
        let capacity = capacity.max(64);
        let counting = delete_mode == BloomDeleteMode::Counting;
        let filter = build_shard_filter(&config, capacity, bits_per_key, counting);
        let budget_fpr = budget_fpr_for(&config, capacity, bits_per_key);
        let snapshot = Arc::new(ShardSnapshot {
            // Snapshots are probe-only: never ship the counting sidecar.
            filter: filter.read_only_clone(),
            overflow: Vec::new(),
        });
        Self {
            writer: Mutex::new(ShardWriter {
                filter,
                keys: CompactKeySet::new(),
                overflow: Vec::new(),
                overflow_dirty: false,
                tombstones: 0,
                capacity,
                config,
                bits_per_key,
                budget_fpr,
                rebuilds: 0,
                migrations: 0,
                rebuilds_background: 0,
                rebuild_wait_ns: 0,
                writer_rebuild_stall_ns: 0,
                rebuild_epoch: 0,
                pending: None,
                ticket: None,
                background,
                counting,
                policy,
            }),
            snapshot: RwLock::new(snapshot),
            max_writer_stall_ns: AtomicU64::new(0),
        }
    }

    /// Load the current published snapshot.
    pub(crate) fn load(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Publish the writer's current state. Must be called while holding the
    /// writer lock: if the snapshot swap happened after unlock, a slower
    /// writer could overwrite a newer snapshot with its older clone,
    /// momentarily hiding committed keys from readers. Readers only ever
    /// take the snapshot *read* lock, so holding both here cannot deadlock.
    fn publish(&self, writer: &ShardWriter) {
        let snapshot = Arc::new(ShardSnapshot {
            // Probe side only: lookups never consult a counting sidecar, so
            // publishing in counting mode stays as cheap as tombstone mode
            // (the clone copies the bit array, not the counters).
            filter: writer.filter.read_only_clone(),
            // Already sorted — the writer maintains the invariant.
            overflow: writer.overflow.clone(),
        });
        *self.snapshot.write().expect("snapshot lock poisoned") = snapshot;
    }

    /// Insert a batch of keys routed to this shard (rebuilding or deferring
    /// per the shard's policy), then publish a fresh snapshot — unless every
    /// key in the batch was a duplicate, in which case nothing observable
    /// changed and the clone-and-publish is skipped entirely. Returns a
    /// ticket if the policy requested a background rebuild.
    pub(crate) fn insert_batch(&self, keys: &[u32]) -> Option<RebuildTicket> {
        if keys.is_empty() {
            return None;
        }
        let start = Instant::now();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let fresh = if writer.config.immutable() && writer.pending.is_none() {
            // Immutable bulk fast path: with no rebuild in flight there is
            // nothing per-key to decide — the filter refuses in-place
            // inserts, the policy is never consulted (the batch-end fold
            // *is* the policy), and the delta log is inactive. Register the
            // batch in the bookkeeping in one pass and park every fresh key;
            // routing each key through `insert_one` instead pays a
            // membership refold and a sorted-insert memmove per key —
            // quadratic over a cold-tier bulk load of millions of keys.
            let start_len = writer.keys.len();
            let fresh = writer.keys.insert_bulk(keys);
            for index in start_len..start_len + fresh {
                let key = writer.keys.as_ordered_slice()[index];
                writer.defer(key);
            }
            fresh
        } else {
            let mut fresh = 0usize;
            for &key in keys {
                if writer.insert_one(key) {
                    fresh += 1;
                }
            }
            fresh
        };
        // Freshly parked keys appended out of order: restore the overflow
        // buffer's sorted invariant once, before anything clones or folds it.
        writer.seal_overflow();
        // Immutable shards park every fresh key in the overflow buffer (the
        // filter refuses in-place inserts); fold the batch's parked keys into
        // a re-peeled replacement once, at batch end — one rebuild (or one
        // background request) per batch, not one per key.
        if fresh > 0 {
            writer.fold_immutable();
        }
        let ticket = writer.ticket.take();
        // Any fresh key changed either the filter or the overflow buffer;
        // an all-duplicate batch changed neither.
        if fresh > 0 {
            self.publish(&writer);
        }
        drop(writer);
        self.note_writer_stall(start);
        ticket
    }

    /// Delete a batch of keys routed to this shard. Returns how many were
    /// actually removed, plus a ticket if the policy requested a background
    /// rebuild. Cuckoo shards — and Bloom shards in
    /// [`BloomDeleteMode::Counting`] — delete in place and republish; Bloom
    /// shards in tombstone mode tombstone (the key leaves the bookkeeping
    /// immediately, the filter bits stay until the policy's next rebuild).
    pub(crate) fn delete_batch(&self, keys: &[u32]) -> (usize, Option<RebuildTicket>) {
        if keys.is_empty() {
            return (0, None);
        }
        let start = Instant::now();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let (removed, mut observable) = writer.delete_many(keys);
        if removed > 0 {
            if let RebuildDecision::Rebuild { capacity } = writer.policy_decision_on_delete() {
                // pof-analyze: allow(lock-discipline): inline mode rebuilds under the writer lock by contract; background/queued modes only mint a ticket here and build off-lock
                if !writer.rebuild_or_request(capacity, true) {
                    observable = true;
                }
            }
            // Immutable shards cannot unset fingerprints: deleted keys left
            // tombstones behind, purged by re-peeling the surviving key set.
            // Absent-key (NotFound) deletes minted no tombstone above and so
            // trigger no rebuild here.
            if writer.fold_immutable() {
                observable = true;
            }
        }
        let ticket = writer.ticket.take();
        if observable {
            self.publish(&writer);
        }
        drop(writer);
        self.note_writer_stall(start);
        (removed, ticket)
    }

    /// Delete a batch of keys from the *bookkeeping only*, leaving the
    /// published probe state bit-identical — the tombstone-mode delete,
    /// forced onto every family. Returns how many live keys were removed.
    ///
    /// This is the structural fix for the tiered reinsertion race: when a
    /// key moves *up* a tier, the older level must not stop answering
    /// positive at delete time, or a reader that probed the newer level
    /// before the insert published and reaches the older level after the
    /// delete would see a false negative. A shadow delete removes the key
    /// from the key set (so rebuilds, key counts, and compactions see it
    /// gone) but touches neither the filter bits nor the overflow buffer,
    /// consults no policy, and publishes nothing: the lingering positives
    /// are purged by the shard's *next* rebuild — an event driven by later
    /// traffic, far outside any in-flight reader's probe window — exactly
    /// like a tombstone-mode Bloom delete, and unlike the in-place clears
    /// Cuckoo and counting-Bloom shards perform on the ordinary
    /// [`Shard::delete_batch`] path.
    pub(crate) fn shadow_delete_batch(&self, keys: &[u32]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let start = Instant::now();
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let removed = writer.shadow_delete_many(keys);
        drop(writer);
        self.note_writer_stall(start);
        removed
    }

    /// Run one maintenance round: ask the policy whether deferred work
    /// (overflow folds, tombstone purges, re-fits) should happen now.
    pub(crate) fn maintain(&self) -> MaintainOutcome {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        if let RebuildDecision::Rebuild { capacity } = writer.policy_decision_on_maintain() {
            // pof-analyze: allow(lock-discipline): inline mode rebuilds under the writer lock by contract; background/queued modes only mint a ticket here and build off-lock
            if writer.rebuild_or_request(capacity, false) {
                MaintainOutcome::Requested(writer.ticket.take().expect("request leaves a ticket"))
            } else {
                self.publish(&writer);
                MaintainOutcome::Rebuilt
            }
        } else {
            MaintainOutcome::Idle
        }
    }

    /// Record the duration of one write call for the stall statistic.
    fn note_writer_stall(&self, start: Instant) {
        self.max_writer_stall_ns
            .fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Phase one of a background rebuild: under one brief writer lock,
    /// validate the ticket, switch the writer into delta-logging mode, and
    /// copy out everything needed to build the replacement filter off-lock.
    /// Returns `None` if the ticket went stale (an inline fallback rebuilt
    /// the shard first).
    pub(crate) fn begin_rebuild(&self, ticket: RebuildTicket) -> Option<RebuildPlan> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let live = writer.keys.len();
        let pending = writer.pending.as_mut()?;
        if pending.epoch != ticket.epoch {
            return None;
        }
        pending.delta_active = true;
        // The requested capacity may be stale by the time the job is picked
        // up (the shard kept absorbing writes): grow it to fit what is live
        // *now*, so a Bloom replacement is not born overloaded.
        let mut capacity = pending.capacity.max(64);
        while capacity < live {
            capacity *= 2;
        }
        // A migration rebuild targets a different shape; a plain rebuild
        // rebuilds in place.
        let (config, bits_per_key, counting) = match pending.target {
            Some(target) => (target.config, target.bits_per_key, target.counting),
            None => (writer.config, writer.bits_per_key, writer.counting),
        };
        writer.keys.fold();
        Some(RebuildPlan {
            keys: writer.keys.as_ordered_slice().to_vec(),
            capacity,
            config,
            bits_per_key,
            counting,
        })
    }

    /// Phase two of a background rebuild: re-acquire the shard briefly,
    /// replay the mutations logged since the snapshot into the replacement
    /// filter, and publish it with a single `Arc` swap. Returns `false` (and
    /// discards the filter) if the ticket went stale.
    pub(crate) fn finish_rebuild(
        &self,
        ticket: RebuildTicket,
        filter: AnyFilter,
        capacity: usize,
    ) -> bool {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        if writer.pending.as_ref().map(|p| p.epoch) != Some(ticket.epoch) {
            return false;
        }
        let pending = writer.pending.take().expect("epoch matched above");
        let mut filter = filter;
        // Replay the delta in chronological order. Inserts the replacement
        // refuses are parked in the overflow buffer (readers probe it, so
        // nothing goes missing); deletes remove in place where the family
        // allows and tombstone otherwise — exactly the synchronous write
        // path's semantics, compressed into the swap.
        let mut overflow: Vec<u32> = Vec::new();
        let mut tombstones = 0usize;
        for op in &pending.delta {
            match *op {
                DeltaOp::Insert(key) => {
                    if !filter.insert(key) {
                        let position = overflow.partition_point(|&k| k < key);
                        overflow.insert(position, key);
                    }
                }
                DeltaOp::Delete(key) => {
                    if let Ok(position) = overflow.binary_search(&key) {
                        overflow.remove(position);
                    } else {
                        match filter.try_delete(key) {
                            DeleteOutcome::Removed => {}
                            // Only an actual refusal leaves lingering bits
                            // behind; a NotFound removed nothing — counting
                            // it would overstate the tombstone load and
                            // mis-trigger purge heuristics.
                            DeleteOutcome::Unsupported => tombstones += 1,
                            DeleteOutcome::NotFound => {}
                        }
                    }
                }
            }
        }
        // A migration swap adopts the target shape: every later rebuild of
        // this shard re-peels into the new family, and drift policies compare
        // against the new budget.
        if let Some(target) = pending.target {
            writer.config = target.config;
            writer.bits_per_key = target.bits_per_key;
            writer.counting = target.counting;
            writer.budget_fpr = budget_fpr_for(&target.config, capacity, target.bits_per_key);
            writer.migrations += 1;
        }
        writer.filter = filter;
        writer.capacity = capacity;
        writer.overflow = overflow;
        writer.tombstones = tombstones;
        writer.rebuilds += 1;
        writer.rebuilds_background += 1;
        writer.rebuild_epoch += 1;
        writer.rebuild_wait_ns += pending.requested.elapsed().as_nanos() as u64;
        self.publish(&writer);
        true
    }

    /// Rebuild this shard into a different `(config, bits_per_key, counting)`
    /// shape — the live-migration primitive. Synchronous stores migrate
    /// inline under the writer lock; background/queued stores leave a ticket
    /// whose rebuild plan carries the target, so the existing snapshot →
    /// off-lock build → delta replay → `Arc`-swap machinery performs the
    /// family swap with readers staying wait-free throughout.
    pub(crate) fn migrate(&self, target: MigrationTarget) -> MigrateOutcome {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        if writer.config == target.config
            && writer.bits_per_key == target.bits_per_key
            && writer.counting == target.counting
        {
            return MigrateOutcome::Unchanged;
        }
        if writer.pending.is_some() {
            // An ordinary rebuild (or an earlier migration) is in flight;
            // stacking a second pending job would orphan its ticket. The
            // readvisor retries at its next evaluation.
            return MigrateOutcome::Busy;
        }
        let capacity = writer.refit_capacity();
        if writer.background {
            writer.pending = Some(PendingRebuild {
                epoch: writer.rebuild_epoch,
                capacity,
                delta: Vec::new(),
                delta_active: false,
                requested: Instant::now(),
                target: Some(target),
            });
            let ticket = RebuildTicket {
                epoch: writer.rebuild_epoch,
            };
            return MigrateOutcome::Requested(ticket);
        }
        writer.config = target.config;
        writer.bits_per_key = target.bits_per_key;
        writer.counting = target.counting;
        // pof-analyze: allow(lock-discipline): synchronous stores migrate inline under the writer lock by design (this branch is the RebuildMode::Inline fallback)
        writer.rebuild_inline(capacity, false);
        writer.budget_fpr = budget_fpr_for(&writer.config, writer.capacity, writer.bits_per_key);
        writer.migrations += 1;
        self.publish(&writer);
        MigrateOutcome::Migrated
    }

    /// Number of live keys in this shard.
    pub(crate) fn key_count(&self) -> usize {
        self.writer.lock().expect("writer lock poisoned").keys.len()
    }

    /// A mutually consistent sample of this shard.
    ///
    /// Taken under the writer lock — and snapshots are only ever published
    /// under that same lock — so the snapshot cannot be newer or older than
    /// the counters it is paired with (separate `load()` + `key_count()`
    /// calls could interleave with a rebuild and pair a stale filter size
    /// with a fresh key count).
    pub(crate) fn consistent_view(&self) -> ShardView {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let snapshot = Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"));
        ShardView {
            snapshot,
            keys: writer.keys.len(),
            rebuilds: writer.rebuilds,
            tombstones: writer.tombstones,
            overflow: writer.overflow.len(),
            bookkeeping_bytes: writer.keys.bookkeeping_bytes(),
            counting_sidecar_bytes: writer.filter.counting_bytes(),
            policy: writer.policy.name(),
            rebuilds_background: writer.rebuilds_background,
            rebuild_wait_ns: writer.rebuild_wait_ns,
            max_writer_stall_ns: self.max_writer_stall_ns.load(Ordering::Relaxed),
            writer_rebuild_stall_ns: writer.writer_rebuild_stall_ns,
            rebuild_pending: writer.pending.is_some(),
            migrations: writer.migrations,
        }
    }

    /// Copy of this shard's authoritative live-key list (insertion order).
    pub(crate) fn keys(&self) -> Vec<u32> {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .keys
            .as_ordered_slice()
            .to_vec()
    }

    /// The configuration this shard builds its filters from.
    pub(crate) fn config(&self) -> FilterConfig {
        self.writer.lock().expect("writer lock poisoned").config
    }

    /// The bits-per-key budget this shard builds its filters with.
    pub(crate) fn bits_per_key(&self) -> f64 {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .bits_per_key
    }

    /// How this shard currently honors Bloom deletes (migrations can flip
    /// it: a counting-Bloom shard re-advised to fuse drops its sidecar).
    pub(crate) fn delete_mode(&self) -> BloomDeleteMode {
        if self.writer.lock().expect("writer lock poisoned").counting {
            BloomDeleteMode::Counting
        } else {
            BloomDeleteMode::Tombstone
        }
    }

    /// Flip whether `Rebuild` decisions may defer off-lock. Recovery builds
    /// shards synchronous (`background = false`), replays the WAL inline so
    /// no replayed batch can park a ticket nobody will ever drain, then
    /// restores the mode the store was actually opened with.
    pub(crate) fn set_background(&self, background: bool) {
        self.writer.lock().expect("writer lock poisoned").background = background;
    }

    /// Serialize this shard's complete write-side state — filter (with its
    /// counting sidecar, if any), insertion-ordered key log, overflow
    /// buffer, and lifecycle counters — under one writer lock, so the
    /// payload is a single consistent cut. Plain little-endian throughout:
    /// the snapshot file this lands in opens by `mmap` and decodes without
    /// any byte swapping.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        writer.seal_overflow();
        put_f64(out, writer.bits_per_key);
        put_u8(out, u8::from(writer.counting));
        put_u64(out, writer.capacity as u64);
        put_u64(out, writer.tombstones as u64);
        put_u64(out, writer.rebuilds);
        put_u64(out, writer.migrations);
        pof_core::encode_filter(&writer.filter, out);
        put_u32_slice(out, writer.keys.as_ordered_slice());
        put_u32_slice(out, &writer.overflow);
    }

    /// Rebuild a shard from a payload written by [`Shard::encode_state`].
    /// The filter configuration travels inside the filter codec; the policy
    /// and background mode are runtime choices supplied by the opening
    /// store, not persisted state. The key log restores in its original
    /// insertion order, so post-recovery rebuilds replay exactly the
    /// sequence the pre-crash shard would have — Cuckoo rebuilds stay
    /// deterministic across a crash.
    pub(crate) fn decode_state(
        cursor: &mut Cursor<'_>,
        policy: Arc<dyn RebuildPolicy>,
        background: bool,
    ) -> Result<Self, CodecError> {
        let bits_per_key = cursor.f64()?;
        let counting = cursor.u8()? != 0;
        let capacity = usize::try_from(cursor.u64()?)
            .map_err(|_| CodecError::Invalid("shard capacity exceeds usize"))?;
        let tombstones = usize::try_from(cursor.u64()?)
            .map_err(|_| CodecError::Invalid("shard tombstones exceed usize"))?;
        let rebuilds = cursor.u64()?;
        let migrations = cursor.u64()?;
        let filter = pof_core::decode_filter(cursor)?;
        let ordered = cursor.u32_slice()?;
        let overflow = cursor.u32_slice()?;
        if !overflow.windows(2).all(|w| w[0] < w[1]) {
            return Err(CodecError::Invalid("shard overflow buffer not sorted"));
        }
        let config = filter.config();
        let capacity = capacity.max(64);
        let budget_fpr = budget_fpr_for(&config, capacity, bits_per_key);
        let snapshot = Arc::new(ShardSnapshot {
            filter: filter.read_only_clone(),
            overflow: overflow.clone(),
        });
        Ok(Self {
            writer: Mutex::new(ShardWriter {
                filter,
                keys: CompactKeySet::from_ordered(ordered),
                overflow,
                overflow_dirty: false,
                tombstones,
                capacity,
                config,
                bits_per_key,
                budget_fpr,
                rebuilds,
                migrations,
                rebuilds_background: 0,
                rebuild_wait_ns: 0,
                writer_rebuild_stall_ns: 0,
                rebuild_epoch: 0,
                pending: None,
                ticket: None,
                background,
                counting,
                policy,
            }),
            snapshot: RwLock::new(snapshot),
            max_writer_stall_ns: AtomicU64::new(0),
        })
    }
}

impl ShardWriter {
    /// The policy's view of this writer.
    fn observe(&self) -> ShardObservation<'_> {
        ShardObservation {
            live_keys: self.keys.len(),
            capacity: self.capacity,
            overflow_len: self.overflow.len(),
            tombstones: self.tombstones,
            // Saturating, and summed before the subtraction: transient
            // states where parked keys outnumber the bookkeeping (e.g. a
            // delta replay that rebuilt the key set before re-parking
            // refused inserts) must clamp to zero, not underflow — a debug
            // build would otherwise abort inside a policy callback.
            occupancy: (self.keys.len() + self.tombstones).saturating_sub(self.overflow.len()),
            budget_fpr: self.budget_fpr,
            filter: &self.filter,
            config: &self.config,
        }
    }

    /// Insert one key. Duplicates are no-ops (set semantics — replaying
    /// duplicates would also break Cuckoo rebuilds: a Cuckoo filter is a bag
    /// holding at most `2·b` copies of one fingerprint, so a key inserted
    /// more than `2·b` times can never fit at any capacity and the rebuild
    /// loop would grow forever). Returns `true` if the key was fresh.
    fn insert_one(&mut self, key: u32) -> bool {
        if !self.keys.insert(key) {
            return false;
        }
        self.log_delta(DeltaOp::Insert(key));
        if self.pending.is_some() {
            // A rebuild is already in flight: policy decisions are
            // suppressed (the replacement is being built from a snapshot
            // that the delta replay will reconcile). The key goes into the
            // *current* filter for immediate visibility — or the overflow
            // buffer if the filter refuses it — and reaches the replacement
            // through the delta.
            if !self.filter.insert(key) {
                self.defer(key);
                // The overflow buffer grew while a rebuild is in flight:
                // policies enforcing a hard bound on it (DeferredBatch's
                // 4x cap) must still get their say, or the bound would be
                // unenforceable for the whole build window. Immutable
                // shards are exempt — parking the whole in-flight batch is
                // their design, and `shed_backpressure` below still bounds
                // the build window through the delta length.
                if !self.config.immutable()
                    && self.policy.urgency(&self.observe()) == RebuildUrgency::Immediate
                {
                    self.inline_fallback();
                    return true;
                }
            }
            self.shed_backpressure();
            return true;
        }
        if self.config.immutable() {
            // No in-place insert exists for this family, so the per-key
            // policy consultation is moot: park the key (readers probe the
            // buffer, nothing goes missing) and let the batch-end fold
            // decide when to re-peel.
            self.defer(key);
            return true;
        }
        match self.policy.on_append(&self.observe()) {
            RebuildDecision::Rebuild { capacity } => {
                if self.rebuild_or_request(capacity, true) {
                    // Deferred to the maintainer: the key must stay visible
                    // *now*, through the current filter or the buffer.
                    if !self.filter.insert(key) {
                        self.defer(key);
                    }
                }
            }
            RebuildDecision::Defer => self.defer(key),
            RebuildDecision::Keep => {
                if !self.filter.insert(key) {
                    // The filter refused the key (Cuckoo relocation failure
                    // below nominal capacity).
                    match self.policy.on_filter_full(&self.observe()) {
                        RebuildDecision::Rebuild { capacity } => {
                            if self.rebuild_or_request(capacity, true) {
                                self.defer(key);
                            }
                        }
                        // Whatever the policy says, the key must stay
                        // represented somewhere: defer it.
                        RebuildDecision::Defer | RebuildDecision::Keep => self.defer(key),
                    }
                }
            }
        }
        true
    }

    /// Batch-end fold for immutable (fuse) shards: if parked keys or
    /// tombstones have accumulated and no rebuild is already in flight,
    /// re-peel the filter from the authoritative key set (inline in
    /// synchronous mode, as a maintainer request otherwise). Returns `true`
    /// when an inline rebuild ran — the published state changed. A no-op for
    /// mutable families and for clean immutable shards.
    fn fold_immutable(&mut self) -> bool {
        if !self.config.immutable() || self.pending.is_some() {
            return false;
        }
        if self.overflow.is_empty() && self.tombstones == 0 {
            return false;
        }
        !self.rebuild_or_request(self.refit_capacity(), true)
    }

    /// Capacity for an immutable re-peel: the current capacity, doubled
    /// until the live key set fits.
    fn refit_capacity(&self) -> usize {
        let mut capacity = self.capacity.max(64);
        while capacity < self.keys.len() {
            capacity *= 2;
        }
        capacity
    }

    /// Execute a `Rebuild` decision: inline in synchronous mode (or when the
    /// policy marks the decision [`RebuildUrgency::Immediate`]), otherwise
    /// record the pending state and leave a [`RebuildTicket`] for the
    /// maintainer. Returns `true` when the rebuild was deferred off-lock —
    /// callers must then keep the triggering key visible themselves.
    /// `foreground` marks write-path callers, whose inline rebuilds count
    /// toward the writer rebuild-stall statistic.
    fn rebuild_or_request(&mut self, capacity: usize, foreground: bool) -> bool {
        // Immutable shards always defer when a maintainer exists: their
        // overflow buffer legitimately holds a whole batch between fold and
        // swap, which a mutable-world urgency bound (DeferredBatch's 4x
        // overflow cap) would misread as a runaway buffer.
        let deferrable = self.config.immutable()
            || self.policy.urgency(&self.observe()) == RebuildUrgency::Deferrable;
        if self.background && deferrable {
            self.pending = Some(PendingRebuild {
                epoch: self.rebuild_epoch,
                capacity,
                delta: Vec::new(),
                delta_active: false,
                requested: Instant::now(),
                target: None,
            });
            self.ticket = Some(RebuildTicket {
                epoch: self.rebuild_epoch,
            });
            true
        } else {
            self.rebuild_inline(capacity, foreground);
            false
        }
    }

    /// Rebuild now, recording the stall against the write path when a
    /// foreground (insert/delete) call is paying for it.
    fn rebuild_inline(&mut self, capacity: usize, foreground: bool) {
        let start = Instant::now();
        self.rebuild(capacity);
        if foreground {
            self.writer_rebuild_stall_ns = self
                .writer_rebuild_stall_ns
                .max(start.elapsed().as_nanos() as u64);
        }
    }

    /// Log one mutation for the in-flight rebuild's replay, if the
    /// maintainer has taken its snapshot.
    fn log_delta(&mut self, op: DeltaOp) {
        if let Some(pending) = self.pending.as_mut() {
            if pending.delta_active {
                pending.delta.push(op);
            }
        }
    }

    /// Backpressure for a shard that re-saturates while its rebuild is in
    /// flight: once the delta outgrows the shard's own capacity (floored at
    /// 4096 so brief build windows on small shards don't trip it) the replay
    /// would no longer be "bounded", so fall back to one inline rebuild.
    /// The epoch bump inside [`ShardWriter::rebuild`] invalidates the
    /// in-flight job; its result is discarded at swap time.
    fn shed_backpressure(&mut self) {
        let bound = self.capacity.max(4096);
        let Some(pending) = self.pending.as_ref() else {
            return;
        };
        if pending.delta.len() <= bound {
            return;
        }
        self.inline_fallback();
    }

    /// Abandon the in-flight background rebuild and rebuild inline right
    /// now, refit to the current live count. The epoch bump inside
    /// [`ShardWriter::rebuild`] invalidates the abandoned job; its result is
    /// discarded at swap time.
    fn inline_fallback(&mut self) {
        let requested = self
            .pending
            .take()
            .map_or(self.capacity, |pending| pending.capacity);
        let mut capacity = requested.max(self.capacity);
        while capacity < self.keys.len() {
            capacity *= 2;
        }
        self.rebuild_inline(capacity, true);
    }

    /// Park a key in the overflow buffer. The key is fresh in the key set —
    /// at worst a *shadow-deleted* stale copy of it still lingers here (it
    /// keeps answering positive by design), which the batch-end seal
    /// collapses. Appends without re-sorting —
    /// a sorted per-key `Vec::insert` is a memmove of the whole buffer,
    /// quadratic over a bulk load that parks every key (the immutable-shard
    /// ingest path) — the batch that called this seals before releasing the
    /// lock.
    fn defer(&mut self, key: u32) {
        self.overflow.push(key);
        self.overflow_dirty = true;
    }

    /// Restore the overflow buffer's sorted invariant after a batch of
    /// [`Self::defer`] appends. Amortized near-linear: the buffer is a
    /// sorted run followed by the batch's appends.
    fn seal_overflow(&mut self) {
        if self.overflow_dirty {
            self.overflow.sort_unstable();
            // A re-inserted key can meet its own shadow-deleted stale copy
            // here; one entry serves both purposes.
            self.overflow.dedup();
            self.overflow_dirty = false;
        }
    }

    /// Delete a batch of keys from the bookkeeping, the overflow buffer, or
    /// the filter — wherever each currently lives. Returns `(removed,
    /// observable)`: how many live keys were removed, and whether readers
    /// could tell (tombstone-only deletes leave the published state
    /// bit-identical).
    fn delete_many(&mut self, keys: &[u32]) -> (usize, bool) {
        // Dedup the batch down to live keys (one O(log n) probe each): a key
        // listed twice is removed once, absent keys are no-ops.
        let mut doomed: Vec<u32> = keys
            .iter()
            .copied()
            .filter(|&key| self.keys.contains(key))
            .collect();
        doomed.sort_unstable();
        doomed.dedup();
        if doomed.is_empty() {
            return (0, false);
        }
        // One compacting pass over the bookkeeping for the whole batch.
        self.keys.remove_sorted_batch(&doomed);
        // Keys parked in the overflow buffer were never in the filter: drop
        // them from the buffer and skip the filter delete.
        let from_overflow: Vec<u32> = self
            .overflow
            .iter()
            .copied()
            .filter(|key| doomed.binary_search(key).is_ok())
            .collect();
        let mut observable = !from_overflow.is_empty();
        self.overflow
            .retain(|key| doomed.binary_search(key).is_err());
        for &key in &doomed {
            self.log_delta(DeltaOp::Delete(key));
            if from_overflow.binary_search(&key).is_ok() {
                continue;
            }
            match self.filter.try_delete(key) {
                DeleteOutcome::Removed => observable = true,
                // Tombstone-mode Bloom shards refuse: the key leaves the
                // bookkeeping now, its bits leave at the next rebuild.
                DeleteOutcome::Unsupported => self.tombstones += 1,
                // Defensive: the filter held no occurrence, so nothing
                // lingers — counting this as a tombstone would inflate the
                // count past the bits actually resident and could spuriously
                // trip purge/shrink heuristics (`FprDrift`'s mostly-dead
                // test compares tombstones against live keys).
                DeleteOutcome::NotFound => {}
            }
        }
        (doomed.len(), observable)
    }

    /// Bookkeeping-only companion to [`Self::delete_many`]: remove the keys
    /// from the key set and count tombstones, but leave the filter bits
    /// *and* the overflow buffer untouched — parked keys keep answering
    /// positive through the published snapshot's overflow copy until the
    /// next rebuild drops them (they are no longer in `keys`, so no rebuild
    /// or publish ever carries them forward). Delta-logged like a physical
    /// delete: an in-flight background rebuild builds from the post-delete
    /// key set either way, so replaying the delete into its replacement is
    /// membership-equivalent.
    fn shadow_delete_many(&mut self, keys: &[u32]) -> usize {
        let mut doomed: Vec<u32> = keys
            .iter()
            .copied()
            .filter(|&key| self.keys.contains(key))
            .collect();
        doomed.sort_unstable();
        doomed.dedup();
        if doomed.is_empty() {
            return 0;
        }
        self.keys.remove_sorted_batch(&doomed);
        for &key in &doomed {
            self.log_delta(DeltaOp::Delete(key));
            // An overflow-parked key leaves no filter bits behind — only
            // keys actually resident in the filter linger as tombstones for
            // the purge heuristics to weigh.
            if self.overflow.binary_search(&key).is_err() {
                self.tombstones += 1;
            }
        }
        doomed.len()
    }

    /// The policy's post-delete-batch decision (`Defer` is meaningless for
    /// deletes and treated as `Keep`; suppressed entirely while a background
    /// rebuild is in flight — the swap purges tombstones anyway).
    fn policy_decision_on_delete(&self) -> RebuildDecision {
        if self.pending.is_some() {
            return RebuildDecision::Keep;
        }
        match self.policy.on_delete(&self.observe()) {
            RebuildDecision::Defer => RebuildDecision::Keep,
            decision => decision,
        }
    }

    /// The policy's maintenance decision (`Defer` treated as `Keep`;
    /// suppressed while a background rebuild is in flight — the store's
    /// `maintain()` drains the in-flight job instead of stacking another).
    fn policy_decision_on_maintain(&self) -> RebuildDecision {
        if self.pending.is_some() {
            return RebuildDecision::Keep;
        }
        // Immutable shards override the policy: parked keys and tombstones
        // can only ever leave through a re-peel, so maintenance *must* fold
        // them regardless of what a mutable-world policy would decide.
        if self.config.immutable() && (!self.overflow.is_empty() || self.tombstones > 0) {
            return RebuildDecision::Rebuild {
                capacity: self.refit_capacity(),
            };
        }
        match self.policy.on_maintain(&self.observe()) {
            RebuildDecision::Defer => RebuildDecision::Keep,
            decision => decision,
        }
    }

    /// Test-only hook: pre-register `key` as bookkeeping-resident *without*
    /// offering it to the filter, reproducing the defensive state where a
    /// delete finds the key in the key set but not in the structure.
    #[cfg(test)]
    fn adopt_untracked_key(&mut self, key: u32) {
        assert!(self.keys.insert(key), "key already resident");
    }

    /// Rebuild the filter from the authoritative key set at a new capacity.
    ///
    /// Live keys are replayed (in insertion order) into the fresh filter;
    /// the overflow buffer folds in and tombstones are purged. The filter
    /// replaces the write side only — readers keep the previous snapshot
    /// until the caller publishes.
    fn rebuild(&mut self, capacity: usize) {
        let capacity = capacity.max(64);
        self.keys.fold();
        let (filter, grown) = build_populated_filter(
            &self.config,
            self.keys.as_ordered_slice(),
            capacity,
            self.bits_per_key,
            self.counting,
        );
        self.filter = filter;
        self.capacity = grown;
        self.overflow.clear();
        self.tombstones = 0;
        self.rebuilds += 1;
        self.rebuild_epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SaturationDoubling;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};

    fn shard(config: FilterConfig, delete_mode: BloomDeleteMode) -> Shard {
        Shard::new(
            config,
            256,
            16.0,
            Arc::new(SaturationDoubling),
            false,
            delete_mode,
        )
    }

    fn bloom_config() -> FilterConfig {
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ))
    }

    /// Regression (delete accounting): a delete that resolves to
    /// `DeleteOutcome::NotFound` removed nothing from the filter, so it must
    /// not be booked as a tombstone — the old `Unsupported | NotFound` arm
    /// inflated the count, which `FprDrift`'s mostly-dead heuristic compares
    /// against live keys.
    #[test]
    fn not_found_deletes_do_not_mint_tombstones() {
        let shard = shard(
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
            BloomDeleteMode::Tombstone,
        );
        let mut writer = shard.writer.lock().unwrap();
        // Resident in the bookkeeping, never offered to the filter: the
        // delete will probe the Cuckoo filter and find nothing.
        writer.adopt_untracked_key(42);
        let (removed, observable) = writer.delete_many(&[42]);
        assert_eq!(removed, 1, "the bookkeeping entry is gone");
        assert!(!observable, "nothing in the published state changed");
        assert_eq!(writer.tombstones, 0, "NotFound minted a tombstone");
        // A genuine tombstone-mode Bloom delete still counts.
        drop(writer);
        let bloom = self::shard(bloom_config(), BloomDeleteMode::Tombstone);
        let mut writer = bloom.writer.lock().unwrap();
        assert!(writer.insert_one(7));
        let (removed, _) = writer.delete_many(&[7]);
        assert_eq!((removed, writer.tombstones), (1, 1));
    }

    fn fuse_config() -> FilterConfig {
        FilterConfig::Fuse(pof_core::FuseConfig::fuse8())
    }

    /// Companion to the NotFound fix above, for the immutable family: a fuse
    /// filter has no false negatives, so `contains == false` *proves* a key
    /// absent — an absent-key delete must neither mint a tombstone nor
    /// trigger a re-peel of the whole shard.
    #[test]
    fn absent_key_deletes_on_immutable_shards_trigger_no_rebuild() {
        let shard = shard(fuse_config(), BloomDeleteMode::Tombstone);
        let keys: Vec<u32> = (0..300u32).map(|i| i * 17 + 3).collect();
        assert!(shard.insert_batch(&keys).is_none());
        let view = shard.consistent_view();
        let builds_before = view.rebuilds;
        assert_eq!(view.overflow, 0, "the insert batch folded its parked keys");
        // A key resident in the bookkeeping but provably absent from the
        // filter (the defensive NotFound state).
        let mut writer = shard.writer.lock().unwrap();
        let absent = (0..u32::MAX)
            .find(|k| !writer.filter.contains(*k))
            .expect("fpr < 1 leaves a negative");
        writer.adopt_untracked_key(absent);
        drop(writer);
        let (removed, _) = shard.delete_batch(&[absent]);
        assert_eq!(removed, 1, "the bookkeeping entry is gone");
        let view = shard.consistent_view();
        assert_eq!(view.tombstones, 0, "NotFound minted a tombstone");
        assert_eq!(view.rebuilds, builds_before, "NotFound forced a re-peel");
        // A genuine delete of present keys tombstones, and the batch-end
        // fold purges them through exactly one re-peel.
        let (removed, _) = shard.delete_batch(&keys[..50]);
        assert_eq!(removed, 50);
        let view = shard.consistent_view();
        assert_eq!(view.tombstones, 0, "the fold left tombstones behind");
        assert_eq!(view.rebuilds, builds_before + 1);
        let snapshot = shard.load();
        for &key in &keys[50..] {
            assert!(snapshot.contains(key), "survivor lost by the re-peel");
        }
    }

    /// Immutable shard lifecycle: per-key writes park in the overflow
    /// buffer, the batch end folds them with one re-peel, and no key is ever
    /// invisible in between.
    #[test]
    fn immutable_shards_fold_each_batch_with_one_rebuild() {
        let shard = shard(fuse_config(), BloomDeleteMode::Tombstone);
        let mut inserted: Vec<u32> = Vec::new();
        for batch in 0..4u32 {
            let keys: Vec<u32> = (0..200u32).map(|i| batch * 10_000 + i * 7).collect();
            assert!(shard.insert_batch(&keys).is_none());
            inserted.extend_from_slice(&keys);
            let view = shard.consistent_view();
            assert_eq!(view.overflow, 0, "batch {batch} left keys parked");
            assert_eq!(view.rebuilds, u64::from(batch) + 1, "one fold per batch");
            let snapshot = shard.load();
            for &key in &inserted {
                assert!(snapshot.contains(key), "batch {batch} lost {key}");
            }
        }
        assert_eq!(shard.key_count(), inserted.len());
    }

    /// Regression (occupancy arithmetic): with more parked keys than
    /// bookkeeping entries the old `keys - overflow + tombstones` expression
    /// underflowed in debug builds; the reordered saturating form clamps to
    /// zero at the exact boundary and stays exact elsewhere.
    #[test]
    fn occupancy_saturates_at_the_overflow_boundary() {
        let shard = shard(bloom_config(), BloomDeleteMode::Tombstone);
        let mut writer = shard.writer.lock().unwrap();
        writer.overflow = vec![1, 2, 3];
        assert_eq!(writer.observe().occupancy, 0, "must clamp, not underflow");
        // One past the boundary in the other direction stays exact.
        writer.adopt_untracked_key(9);
        writer.adopt_untracked_key(10);
        writer.adopt_untracked_key(11);
        writer.adopt_untracked_key(12);
        assert_eq!(writer.observe().occupancy, 1);
        writer.tombstones = 5;
        assert_eq!(writer.observe().occupancy, 6);
    }

    /// An inline migration re-peels the shard into the target family without
    /// losing a key, flips the delete machinery with it, and is idempotent.
    #[test]
    fn inline_migration_swaps_family_and_keeps_every_key() {
        let shard = shard(bloom_config(), BloomDeleteMode::Counting);
        let keys: Vec<u32> = (0..400u32).map(|i| i * 13 + 11).collect();
        assert!(shard.insert_batch(&keys).is_none());
        let (removed, _) = shard.delete_batch(&keys[..100]);
        assert_eq!(removed, 100);
        let target = MigrationTarget {
            config: fuse_config(),
            bits_per_key: 10.0,
            counting: false,
        };
        assert!(matches!(shard.migrate(target), MigrateOutcome::Migrated));
        let view = shard.consistent_view();
        assert_eq!(view.migrations, 1);
        assert_eq!(view.counting_sidecar_bytes, 0, "sidecar survived the swap");
        assert_eq!(shard.config().kind(), pof_filter::FilterKind::Fuse);
        let snapshot = shard.load();
        for &key in &keys[100..] {
            assert!(snapshot.contains(key), "migration lost {key}");
        }
        // Already at the target: a no-op, not a second rebuild.
        assert!(matches!(shard.migrate(target), MigrateOutcome::Unchanged));
        assert_eq!(shard.consistent_view().migrations, 1);
        // The migrated shard keeps absorbing writes through its new family.
        let more: Vec<u32> = (0..50u32).map(|i| 1_000_000 + i * 7).collect();
        shard.insert_batch(&more);
        let snapshot = shard.load();
        for &key in &more {
            assert!(snapshot.contains(key));
        }
    }

    /// Counting-mode shards delete Bloom keys in place: no tombstones, and
    /// the replacement filters of every rebuild path keep the sidecar.
    #[test]
    fn counting_shards_delete_in_place_and_rebuild_with_counters() {
        let shard = shard(bloom_config(), BloomDeleteMode::Counting);
        let keys: Vec<u32> = (0..200u32).map(|i| i * 31 + 5).collect();
        assert!(shard.insert_batch(&keys).is_none());
        let (removed, _) = shard.delete_batch(&keys[..100]);
        assert_eq!(removed, 100);
        let view = shard.consistent_view();
        assert_eq!(view.tombstones, 0, "counting mode must not tombstone");
        assert!(view.counting_sidecar_bytes > 0);
        // Deleted keys physically left the published snapshot (collisions
        // aside), live keys still answer.
        let snapshot = shard.load();
        for &key in &keys[100..] {
            assert!(snapshot.contains(key));
        }
        let still = keys[..100]
            .iter()
            .filter(|&&k| snapshot.contains(k))
            .count();
        assert!(still < 10, "{still} of 100 deleted keys still positive");
        // An inline rebuild must hand back a filter that can still delete.
        let mut writer = shard.writer.lock().unwrap();
        writer.rebuild(256);
        assert!(writer.filter.supports_delete(), "rebuild dropped counting");
        drop(writer);
        let (removed, _) = shard.delete_batch(&keys[100..150]);
        assert_eq!(removed, 50);
        assert_eq!(shard.consistent_view().tombstones, 0);
    }

    /// A shadow delete is invisible to readers at delete time — even on the
    /// in-place-delete families whose ordinary `delete_batch` clears bits
    /// immediately — and the bookkeeping still sees the keys gone, so the
    /// next rebuild (not the delete) purges the lingering positives.
    #[test]
    fn shadow_deletes_stay_invisible_until_the_next_rebuild() {
        for config in [
            FilterConfig::Cuckoo(CuckooConfig::new(16, 4, CuckooAddressing::PowerOfTwo)),
            bloom_config(),
        ] {
            for mode in [BloomDeleteMode::Tombstone, BloomDeleteMode::Counting] {
                let shard = shard(config, mode);
                let keys: Vec<u32> = (0..300u32).map(|i| i * 19 + 7).collect();
                assert!(shard.insert_batch(&keys).is_none());
                let removed = shard.shadow_delete_batch(&keys[..150]);
                assert_eq!(removed, 150);
                // Idempotent: the keys already left the bookkeeping.
                assert_eq!(shard.shadow_delete_batch(&keys[..150]), 0);
                assert_eq!(shard.key_count(), 150);
                let snapshot = shard.load();
                for &key in &keys {
                    assert!(
                        snapshot.contains(key),
                        "shadow delete of {key} became reader-visible (config {config:?}, {mode:?})"
                    );
                }
                // The purge happens at the next rebuild, rebuilt from the
                // post-delete key set.
                let mut writer = shard.writer.lock().unwrap();
                writer.rebuild(256);
                shard.publish(&writer);
                assert_eq!(writer.tombstones, 0, "rebuild left tombstones");
                drop(writer);
                let snapshot = shard.load();
                for &key in &keys[150..] {
                    assert!(snapshot.contains(key), "rebuild lost live key {key}");
                }
                let lingering = keys[..150]
                    .iter()
                    .filter(|&&key| snapshot.contains(key))
                    .count();
                assert!(
                    lingering < 15,
                    "{lingering} of 150 shadow-deleted keys survived the rebuild"
                );
            }
        }
    }

    /// Round-trip every delete family through `encode_state`/`decode_state`:
    /// the restored shard must answer identically, keep exact key counts,
    /// preserve lifecycle counters, and still honor deletes — including
    /// through the counting sidecar, which travels inside the filter codec.
    #[test]
    fn encode_decode_roundtrips_the_full_shard_state() {
        let configs = [
            (bloom_config(), BloomDeleteMode::Tombstone),
            (bloom_config(), BloomDeleteMode::Counting),
            (
                FilterConfig::Cuckoo(CuckooConfig::new(16, 4, CuckooAddressing::PowerOfTwo)),
                BloomDeleteMode::Tombstone,
            ),
            (fuse_config(), BloomDeleteMode::Tombstone),
        ];
        for (config, mode) in configs {
            let shard = shard(config, mode);
            let keys: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(2_654_435_769)).collect();
            shard.insert_batch(&keys);
            let (removed, _) = shard.delete_batch(&keys[..80]);
            assert_eq!(removed, 80);
            shard.shadow_delete_batch(&keys[80..120]);
            let mut payload = Vec::new();
            shard.encode_state(&mut payload);
            let mut cursor = Cursor::new(&payload);
            let restored = Shard::decode_state(&mut cursor, Arc::new(SaturationDoubling), false)
                .expect("encoded state must decode");
            cursor.finish().expect("decode must consume the payload");
            assert_eq!(restored.key_count(), shard.key_count());
            assert_eq!(restored.config(), shard.config());
            assert_eq!(restored.delete_mode(), shard.delete_mode());
            let original = shard.load();
            let mirror = restored.load();
            for probe in (0..20_000u32).map(|i| i * 31) {
                assert_eq!(
                    original.contains(probe),
                    mirror.contains(probe),
                    "restored shard diverges on {probe} (config {config:?}, {mode:?})"
                );
            }
            let before = shard.consistent_view();
            let after = restored.consistent_view();
            assert_eq!(after.rebuilds, before.rebuilds);
            assert_eq!(after.tombstones, before.tombstones);
            assert_eq!(after.overflow, before.overflow);
            // The restored shard is a live shard: inserts and deletes keep
            // working, and the replay log restored in order (a rebuild
            // reproduces a working filter).
            let more: Vec<u32> = (0..100u32).map(|i| 900_000 + i * 3).collect();
            restored.insert_batch(&more);
            let (removed, _) = restored.delete_batch(&keys[120..160]);
            assert_eq!(removed, 40);
            let snapshot = restored.load();
            for &key in more.iter().chain(&keys[160..]) {
                assert!(snapshot.contains(key), "post-restore write lost {key}");
            }
        }
    }

    /// Corrupt shard payloads must fail decode, not build a half-shard.
    #[test]
    fn corrupt_shard_payloads_are_rejected() {
        let shard = shard(bloom_config(), BloomDeleteMode::Tombstone);
        shard.insert_batch(&[1, 2, 3, 4, 5]);
        let mut payload = Vec::new();
        shard.encode_state(&mut payload);
        // Truncations at every prefix length either decode-fail or leave
        // unconsumed bytes — never panic.
        for len in 0..payload.len() {
            let mut cursor = Cursor::new(&payload[..len]);
            let result = Shard::decode_state(&mut cursor, Arc::new(SaturationDoubling), false);
            if let Ok(_restored) = result {
                assert!(
                    cursor.finish().is_err(),
                    "truncated payload ({len} bytes) decoded cleanly"
                );
            }
        }
    }
}
