//! One shard: a mutable write side guarded by a mutex, and an immutable
//! published snapshot readers probe without ever blocking on writers.
//!
//! The write path is policy-driven: the shard appends keys to its compact
//! key set, asks its [`RebuildPolicy`] what to do (insert in place, rebuild,
//! or defer into the overflow buffer), and publishes a fresh
//! [`ShardSnapshot`] whenever readers could observe the difference.

use crate::keyset::CompactKeySet;
use crate::policy::{RebuildDecision, RebuildPolicy, ShardObservation};
use pof_core::{AnyFilter, FilterConfig};
use pof_filter::{DeleteOutcome, Filter};
use std::sync::{Arc, Mutex, RwLock};

/// What readers probe: the shard's filter at one publish point, plus the
/// exact overflow side buffer of keys a deferring policy has not yet folded
/// into the filter. Probing the buffer keeps the no-false-negative contract
/// even while keys are parked outside the filter.
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    /// The published filter.
    pub(crate) filter: AnyFilter,
    /// Sorted copy of the overflow buffer at publish time (usually empty).
    pub(crate) overflow: Vec<u32>,
}

impl ShardSnapshot {
    /// Is `key` in the published filter or parked in the overflow buffer?
    #[inline]
    pub(crate) fn contains(&self, key: u32) -> bool {
        self.filter.contains(key) || self.overflow.binary_search(&key).is_ok()
    }

    /// Published footprint: filter bits plus the raw bits of parked keys.
    pub(crate) fn size_bits(&self) -> u64 {
        self.filter.size_bits() + 32 * self.overflow.len() as u64
    }
}

/// The write side of a shard. Only ever touched under the shard's write lock.
#[derive(Debug)]
pub(crate) struct ShardWriter {
    /// The filter being mutated. Cloned into a snapshot on publish.
    filter: AnyFilter,
    /// Authoritative live-key bookkeeping: one compact order-preserving set
    /// (insertion-ordered replay log + sorted dedup run) instead of the
    /// former `Vec<u32>` + `HashSet<u32>` pair. Insertion order is preserved
    /// because a Cuckoo filter's slot placement depends on insert order —
    /// replaying in any other order would produce a different filter on
    /// every rebuild.
    keys: CompactKeySet,
    /// Keys diverted by a deferring policy: present in `keys`, *not* in
    /// `filter`. Kept sorted so the publish path clones it as-is and the
    /// delete path can binary-search it. Readers see the snapshot's copy.
    overflow: Vec<u32>,
    /// Deleted keys still represented in the filter (Bloom shards cannot
    /// unset bits). Purged to zero by every rebuild.
    tombstones: usize,
    /// Number of keys the current filter was sized for.
    capacity: usize,
    /// Configuration every (re)build of this shard uses.
    config: FilterConfig,
    /// Bits-per-key budget every (re)build of this shard uses.
    bits_per_key: f64,
    /// Modeled FPR of `(config, bits_per_key)` at nominal occupancy — the
    /// budget that drift-based policies compare against.
    budget_fpr: f64,
    /// Number of policy-triggered rebuilds performed so far.
    rebuilds: u64,
    /// The lifecycle policy consulted on every append/delete/maintain.
    policy: Arc<dyn RebuildPolicy>,
}

/// A shard of the store.
#[derive(Debug)]
pub(crate) struct Shard {
    writer: Mutex<ShardWriter>,
    /// The published snapshot. Readers take the read lock only long enough to
    /// clone the `Arc`; the actual probing happens on the clone, outside any
    /// lock, so a concurrent rebuild never stalls or torments a reader.
    snapshot: RwLock<Arc<ShardSnapshot>>,
}

/// One mutually consistent sample of a shard, for stats reporting.
pub(crate) struct ShardView {
    /// The published snapshot at sample time.
    pub(crate) snapshot: Arc<ShardSnapshot>,
    /// Live keys (inserted minus deleted, overflow included).
    pub(crate) keys: usize,
    /// Policy-triggered rebuilds so far.
    pub(crate) rebuilds: u64,
    /// Tombstoned (deleted but still filter-resident) keys.
    pub(crate) tombstones: usize,
    /// Keys parked in the overflow buffer.
    pub(crate) overflow: usize,
    /// Writer-side bookkeeping bytes (see `CompactKeySet`).
    pub(crate) bookkeeping_bytes: usize,
    /// Name of the active rebuild policy.
    pub(crate) policy: &'static str,
}

impl Shard {
    /// Create an empty shard sized for `capacity` keys.
    pub(crate) fn new(
        config: FilterConfig,
        capacity: usize,
        bits_per_key: f64,
        policy: Arc<dyn RebuildPolicy>,
    ) -> Self {
        let capacity = capacity.max(64);
        let filter = AnyFilter::build(&config, capacity, bits_per_key);
        // The budget a drift policy compares against: the configuration's
        // modeled FPR at nominal occupancy. Infeasible Cuckoo budgets (the
        // build raises them to the minimum feasible bits-per-key) fall back
        // to the rate near the maximum load factor.
        let budget_fpr = config
            .modeled_fpr(capacity as f64, bits_per_key)
            .unwrap_or_else(|| match &config {
                FilterConfig::Cuckoo(c) => c.modeled_fpr(0.95),
                // Bloom budgets are always feasible; this arm is unreachable.
                _ => f64::INFINITY,
            });
        let snapshot = Arc::new(ShardSnapshot {
            filter: filter.clone(),
            overflow: Vec::new(),
        });
        Self {
            writer: Mutex::new(ShardWriter {
                filter,
                keys: CompactKeySet::new(),
                overflow: Vec::new(),
                tombstones: 0,
                capacity,
                config,
                bits_per_key,
                budget_fpr,
                rebuilds: 0,
                policy,
            }),
            snapshot: RwLock::new(snapshot),
        }
    }

    /// Load the current published snapshot.
    pub(crate) fn load(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Publish the writer's current state. Must be called while holding the
    /// writer lock: if the snapshot swap happened after unlock, a slower
    /// writer could overwrite a newer snapshot with its older clone,
    /// momentarily hiding committed keys from readers. Readers only ever
    /// take the snapshot *read* lock, so holding both here cannot deadlock.
    fn publish(&self, writer: &ShardWriter) {
        let snapshot = Arc::new(ShardSnapshot {
            filter: writer.filter.clone(),
            // Already sorted — the writer maintains the invariant.
            overflow: writer.overflow.clone(),
        });
        *self.snapshot.write().expect("snapshot lock poisoned") = snapshot;
    }

    /// Insert a batch of keys routed to this shard (rebuilding or deferring
    /// per the shard's policy), then publish a fresh snapshot — unless every
    /// key in the batch was a duplicate, in which case nothing observable
    /// changed and the clone-and-publish is skipped entirely.
    pub(crate) fn insert_batch(&self, keys: &[u32]) {
        if keys.is_empty() {
            return;
        }
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let mut fresh = 0usize;
        for &key in keys {
            if writer.insert_one(key) {
                fresh += 1;
            }
        }
        // Any fresh key changed either the filter or the overflow buffer;
        // an all-duplicate batch changed neither.
        if fresh > 0 {
            self.publish(&writer);
        }
    }

    /// Delete a batch of keys routed to this shard. Returns how many were
    /// actually removed. Cuckoo shards delete in place and republish; Bloom
    /// shards tombstone (the key leaves the bookkeeping immediately, the
    /// filter bits stay until the policy's next rebuild).
    pub(crate) fn delete_batch(&self, keys: &[u32]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let (removed, mut observable) = writer.delete_many(keys);
        if removed > 0 {
            if let RebuildDecision::Rebuild { capacity } = writer.policy_decision_on_delete() {
                writer.rebuild(capacity);
                observable = true;
            }
        }
        if observable {
            self.publish(&writer);
        }
        removed
    }

    /// Run one maintenance round: ask the policy whether deferred work
    /// (overflow folds, tombstone purges, re-fits) should happen now.
    /// Returns `true` if the shard was rebuilt.
    pub(crate) fn maintain(&self) -> bool {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        if let RebuildDecision::Rebuild { capacity } = writer.policy_decision_on_maintain() {
            writer.rebuild(capacity);
            self.publish(&writer);
            true
        } else {
            false
        }
    }

    /// Number of live keys in this shard.
    pub(crate) fn key_count(&self) -> usize {
        self.writer.lock().expect("writer lock poisoned").keys.len()
    }

    /// A mutually consistent sample of this shard.
    ///
    /// Taken under the writer lock — and snapshots are only ever published
    /// under that same lock — so the snapshot cannot be newer or older than
    /// the counters it is paired with (separate `load()` + `key_count()`
    /// calls could interleave with a rebuild and pair a stale filter size
    /// with a fresh key count).
    pub(crate) fn consistent_view(&self) -> ShardView {
        let writer = self.writer.lock().expect("writer lock poisoned");
        let snapshot = Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"));
        ShardView {
            snapshot,
            keys: writer.keys.len(),
            rebuilds: writer.rebuilds,
            tombstones: writer.tombstones,
            overflow: writer.overflow.len(),
            bookkeeping_bytes: writer.keys.bookkeeping_bytes(),
            policy: writer.policy.name(),
        }
    }

    /// Copy of this shard's authoritative live-key list (insertion order).
    pub(crate) fn keys(&self) -> Vec<u32> {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .keys
            .as_ordered_slice()
            .to_vec()
    }

    /// The configuration this shard builds its filters from.
    pub(crate) fn config(&self) -> FilterConfig {
        self.writer.lock().expect("writer lock poisoned").config
    }
}

impl ShardWriter {
    /// The policy's view of this writer.
    fn observe(&self) -> ShardObservation<'_> {
        ShardObservation {
            live_keys: self.keys.len(),
            capacity: self.capacity,
            overflow_len: self.overflow.len(),
            tombstones: self.tombstones,
            occupancy: self.keys.len() - self.overflow.len() + self.tombstones,
            budget_fpr: self.budget_fpr,
            filter: &self.filter,
            config: &self.config,
        }
    }

    /// Insert one key. Duplicates are no-ops (set semantics — replaying
    /// duplicates would also break Cuckoo rebuilds: a Cuckoo filter is a bag
    /// holding at most `2·b` copies of one fingerprint, so a key inserted
    /// more than `2·b` times can never fit at any capacity and the rebuild
    /// loop would grow forever). Returns `true` if the key was fresh.
    fn insert_one(&mut self, key: u32) -> bool {
        if !self.keys.insert(key) {
            return false;
        }
        match self.policy.on_append(&self.observe()) {
            RebuildDecision::Rebuild { capacity } => self.rebuild(capacity),
            RebuildDecision::Defer => self.defer(key),
            RebuildDecision::Keep => {
                if !self.filter.insert(key) {
                    // The filter refused the key (Cuckoo relocation failure
                    // below nominal capacity).
                    match self.policy.on_filter_full(&self.observe()) {
                        RebuildDecision::Rebuild { capacity } => self.rebuild(capacity),
                        // Whatever the policy says, the key must stay
                        // represented somewhere: defer it.
                        RebuildDecision::Defer | RebuildDecision::Keep => self.defer(key),
                    }
                }
            }
        }
        true
    }

    /// Park a key in the (sorted) overflow buffer. The key is fresh in the
    /// key set, so it cannot already be present here.
    fn defer(&mut self, key: u32) {
        let position = self.overflow.partition_point(|&k| k < key);
        self.overflow.insert(position, key);
    }

    /// Delete a batch of keys from the bookkeeping, the overflow buffer, or
    /// the filter — wherever each currently lives. Returns `(removed,
    /// observable)`: how many live keys were removed, and whether readers
    /// could tell (tombstone-only deletes leave the published state
    /// bit-identical).
    fn delete_many(&mut self, keys: &[u32]) -> (usize, bool) {
        // Dedup the batch down to live keys (one O(log n) probe each): a key
        // listed twice is removed once, absent keys are no-ops.
        let mut doomed: Vec<u32> = keys
            .iter()
            .copied()
            .filter(|&key| self.keys.contains(key))
            .collect();
        doomed.sort_unstable();
        doomed.dedup();
        if doomed.is_empty() {
            return (0, false);
        }
        // One compacting pass over the bookkeeping for the whole batch.
        self.keys.remove_sorted_batch(&doomed);
        // Keys parked in the overflow buffer were never in the filter: drop
        // them from the buffer and skip the filter delete.
        let from_overflow: Vec<u32> = self
            .overflow
            .iter()
            .copied()
            .filter(|key| doomed.binary_search(key).is_ok())
            .collect();
        let mut observable = !from_overflow.is_empty();
        self.overflow
            .retain(|key| doomed.binary_search(key).is_err());
        for &key in &doomed {
            if from_overflow.binary_search(&key).is_ok() {
                continue;
            }
            match self.filter.try_delete(key) {
                DeleteOutcome::Removed => observable = true,
                // Bloom shards (and the defensive not-found case) tombstone:
                // the key leaves the bookkeeping now, its bits leave at the
                // next rebuild.
                DeleteOutcome::Unsupported | DeleteOutcome::NotFound => self.tombstones += 1,
            }
        }
        (doomed.len(), observable)
    }

    /// The policy's post-delete-batch decision (`Defer` is meaningless for
    /// deletes and treated as `Keep`).
    fn policy_decision_on_delete(&self) -> RebuildDecision {
        match self.policy.on_delete(&self.observe()) {
            RebuildDecision::Defer => RebuildDecision::Keep,
            decision => decision,
        }
    }

    /// The policy's maintenance decision (`Defer` treated as `Keep`).
    fn policy_decision_on_maintain(&self) -> RebuildDecision {
        match self.policy.on_maintain(&self.observe()) {
            RebuildDecision::Defer => RebuildDecision::Keep,
            decision => decision,
        }
    }

    /// Rebuild the filter from the authoritative key set at a new capacity.
    ///
    /// Live keys are replayed (in insertion order) into the fresh filter;
    /// the overflow buffer folds in and tombstones are purged. The filter
    /// replaces the write side only — readers keep the previous snapshot
    /// until the caller publishes.
    fn rebuild(&mut self, capacity: usize) {
        let capacity = capacity.max(64);
        self.keys.fold();
        'grow: for attempt in 0.. {
            let grown = capacity << attempt;
            let mut filter = AnyFilter::build(&self.config, grown, self.bits_per_key);
            for &key in self.keys.as_ordered_slice() {
                if !filter.insert(key) {
                    continue 'grow;
                }
            }
            self.filter = filter;
            self.capacity = grown;
            self.overflow.clear();
            self.tombstones = 0;
            self.rebuilds += 1;
            return;
        }
        unreachable!("rebuild retries grow geometrically and must eventually fit");
    }
}
