//! Occupancy, size and false-positive statistics per shard and per store —
//! and, for tiered stores, per level.

use crate::shard::BloomDeleteMode;
use pof_filter::FilterKind;

/// Statistics of one shard at the moment [`stats`] was called.
///
/// [`stats`]: crate::ShardedFilterStore::stats
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Keys inserted into this shard.
    pub keys: u64,
    /// Published filter size in bits.
    pub size_bits: u64,
    /// Effective bits per key (`size_bits / keys`; 0 when empty).
    pub bits_per_key: f64,
    /// Analytical false-positive rate at the current occupancy.
    pub modeled_fpr: f64,
    /// Policy-triggered rebuilds this shard has performed.
    pub rebuilds: u64,
    /// Of those, rebuilds completed off-lock by the background maintainer
    /// (snapshot → off-lock build → delta replay → atomic swap).
    pub rebuilds_background: u64,
    /// Completed live family/configuration migrations — rebuilds whose
    /// target `FilterConfig` differed from the incumbent's, driven by the
    /// readvisor ([`run_pending_readvise`]) or the manual [`migrate_to`].
    ///
    /// [`run_pending_readvise`]: crate::ShardedFilterStore::run_pending_readvise
    /// [`migrate_to`]: crate::ShardedFilterStore::migrate_to
    pub migrations: u64,
    /// Cumulative request→swap latency of completed background rebuilds, in
    /// nanoseconds — how long this shard's replacement filters were in
    /// flight.
    pub rebuild_wait_ns: u64,
    /// Longest single `insert_batch`/`delete_batch` call this shard has
    /// served (lock wait + mutation + snapshot publish), in nanoseconds.
    /// The writer tail-latency figure background rebuilds exist to shrink;
    /// `maintain()` time is excluded. On hosts where the maintainer has no
    /// spare core, wall-clock call times also absorb scheduler time-sharing
    /// — [`ShardStats::writer_rebuild_stall_ns`] isolates the structural
    /// component.
    pub max_writer_stall_ns: u64,
    /// Longest single *inline* rebuild a write call paid for, in
    /// nanoseconds: the exact stall the background maintainer takes off the
    /// write path. Structurally zero with background rebuilds on (only the
    /// re-saturation backpressure fallback can make it non-zero);
    /// `maintain()`-time rebuilds are excluded.
    pub writer_rebuild_stall_ns: u64,
    /// Is a background rebuild currently in flight for this shard?
    pub rebuild_pending: bool,
    /// Deleted keys still represented in the filter (Bloom shards cannot
    /// unset bits; the active rebuild policy decides when they are purged).
    pub tombstones: u64,
    /// Keys parked in the shard's exact overflow side buffer by a deferring
    /// policy, awaiting the next maintenance fold.
    pub overflow: u64,
    /// Writer-side bookkeeping bytes (the compact key set's ordered log plus
    /// sorted run — at most ~2x the raw key bytes).
    pub bookkeeping_bytes: u64,
    /// Heap bytes of the shard's Bloom counting sidecar
    /// ([`BloomDeleteMode::Counting`](crate::BloomDeleteMode) — 4 bits per
    /// filter bit, 8 after counter saturation). Zero in tombstone mode and
    /// for Cuckoo shards; write side only, snapshots never carry it.
    pub counting_sidecar_bytes: u64,
    /// Name of the active rebuild policy.
    pub policy: &'static str,
    /// Configuration label of the shard filter.
    pub config_label: String,
    /// Active batch-lookup kernel (`scalar`, `avx2-…`).
    pub kernel: &'static str,
    /// Stored fingerprint width in bits (fuse and Cuckoo shards; 0 for the
    /// Bloom family, which stores no discrete fingerprints).
    pub fingerprint_bits: u32,
    /// Seeded construction retries the shard's current filter needed (fuse
    /// peeling re-seeds; always 0 for the mutable families).
    pub construction_retries: u64,
}

/// Aggregated view over every shard of a store.
#[derive(Debug, Clone)]
pub struct StoreStats {
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl StoreStats {
    pub(crate) fn aggregate(shards: Vec<ShardStats>) -> Self {
        Self { shards }
    }

    /// Total keys across all shards.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Total filter bits across all shards.
    #[must_use]
    pub fn total_size_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.size_bits).sum()
    }

    /// Total rebuilds across all shards.
    #[must_use]
    pub fn total_rebuilds(&self) -> u64 {
        self.shards.iter().map(|s| s.rebuilds).sum()
    }

    /// Total rebuilds completed off-lock by the background maintainer.
    #[must_use]
    pub fn total_background_rebuilds(&self) -> u64 {
        self.shards.iter().map(|s| s.rebuilds_background).sum()
    }

    /// Total completed live family migrations across all shards.
    #[must_use]
    pub fn total_migrations(&self) -> u64 {
        self.shards.iter().map(|s| s.migrations).sum()
    }

    /// Cumulative request→swap latency of background rebuilds, ns.
    #[must_use]
    pub fn total_rebuild_wait_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.rebuild_wait_ns).sum()
    }

    /// Longest single write call served by any shard, in nanoseconds — the
    /// store's observed writer tail latency.
    #[must_use]
    pub fn max_writer_stall_ns(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.max_writer_stall_ns)
            .max()
            .unwrap_or(0)
    }

    /// Longest single inline rebuild paid by any write call, in nanoseconds
    /// — the write-path stall component that moving rebuilds to the
    /// background maintainer eliminates.
    #[must_use]
    pub fn writer_rebuild_stall_ns(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.writer_rebuild_stall_ns)
            .max()
            .unwrap_or(0)
    }

    /// Total tombstoned (deleted but still filter-resident) keys.
    #[must_use]
    pub fn total_tombstones(&self) -> u64 {
        self.shards.iter().map(|s| s.tombstones).sum()
    }

    /// Total keys parked in overflow side buffers.
    #[must_use]
    pub fn total_overflow(&self) -> u64 {
        self.shards.iter().map(|s| s.overflow).sum()
    }

    /// Total writer-side bookkeeping bytes across all shards.
    #[must_use]
    pub fn total_bookkeeping_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bookkeeping_bytes).sum()
    }

    /// Total Bloom counting-sidecar bytes across all shards — the memory a
    /// counting-mode store pays for in-place Bloom deletes.
    #[must_use]
    pub fn total_counting_sidecar_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.counting_sidecar_bytes).sum()
    }

    /// The store-level analytical false-positive rate: the key-weighted mean
    /// of the shard rates (a uniformly drawn probe lands in shard `i` with
    /// probability proportional to the shard routing, which the splitter hash
    /// makes near-uniform; weighting by keys matches a probe stream drawn
    /// like the inserted population).
    #[must_use]
    pub fn weighted_modeled_fpr(&self) -> f64 {
        let total = self.total_keys();
        if total == 0 {
            return 0.0;
        }
        self.shards
            .iter()
            .map(|s| s.modeled_fpr * s.keys as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Effective filter bits per live key across the whole store (`0.0` for
    /// an empty store — never NaN or infinity).
    #[must_use]
    pub fn bits_per_live_key(&self) -> f64 {
        let keys = self.total_keys();
        if keys == 0 {
            0.0
        } else {
            self.total_size_bits() as f64 / keys as f64
        }
    }

    /// Ratio of the largest to the smallest shard occupancy (1.0 = perfectly
    /// balanced; meaningful once shards are non-empty).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.keys).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.keys).min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

/// Statistics of one level of a [`TieredStore`](crate::TieredStore): what
/// the advisor chose for the level (family, budget, delete mode), what the
/// level currently holds, and its compaction traffic. The full per-shard
/// [`StoreStats`] of the level's store is nested in [`LevelStats::store`].
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Level index (0 = newest/hottest).
    pub level: usize,
    /// Filter family every shard of this level builds.
    pub family: FilterKind,
    /// Configuration label of the level's filters.
    pub config_label: String,
    /// How the level's Bloom shards *currently* honor deletes (irrelevant
    /// for Cuckoo levels, which always delete in place). Tracks live
    /// migrations: a counting-Bloom level that migrated to fuse reports
    /// tombstone mode, like [`family`](Self::family) reports the live
    /// family rather than the advisor's construction-time pick.
    pub delete_mode: BloomDeleteMode,
    /// Bits-per-key budget the level's shards currently build from (the
    /// construction-time budget until a migration re-targets it).
    pub bits_per_key_budget: f64,
    /// Keys the level was sized for
    /// ([`LevelSpec::expected_keys`](pof_core::LevelSpec)).
    pub expected_keys: u64,
    /// Work a negative probe saves at this level (the level's `t_w`).
    pub work_saved_cycles: f64,
    /// Delete fraction the level was described with.
    pub delete_rate: f64,
    /// Live keys currently resident.
    pub live_keys: u64,
    /// Published filter bits across the level's shards.
    pub size_bits: u64,
    /// Tombstoned keys across the level's shards (always 0 on counting and
    /// Cuckoo levels).
    pub tombstones: u64,
    /// Shard rebuilds the level has performed.
    pub rebuilds: u64,
    /// Completed live family migrations across the level's shards.
    pub migrations: u64,
    /// Keys received from compactions of the level above.
    pub compacted_in: u64,
    /// Keys moved out by compactions of this level.
    pub compacted_out: u64,
    /// Stored fingerprint width of the level's filters in bits (fuse and
    /// Cuckoo families; 0 for Bloom levels).
    pub fingerprint_bits: u32,
    /// Total seeded construction retries across the level's current filters
    /// (fuse peeling re-seeds; always 0 on mutable levels).
    pub construction_retries: u64,
    /// The level store's full per-shard statistics.
    pub store: StoreStats,
}

impl LevelStats {
    /// Effective filter bits per live key (`0.0` when the level is empty) —
    /// the per-level memory figure the tiered bench reports.
    #[must_use]
    pub fn bits_per_live_key(&self) -> f64 {
        if self.live_keys == 0 {
            0.0
        } else {
            self.size_bits as f64 / self.live_keys as f64
        }
    }
}

/// Aggregated view over every level of a tiered store.
#[derive(Debug, Clone)]
pub struct TieredStats {
    /// Per-level statistics, newest level first.
    pub levels: Vec<LevelStats>,
    /// Completed compaction operations (explicit and policy-triggered).
    pub compactions: u64,
    /// Name of the active [`CompactionPolicy`](crate::CompactionPolicy).
    pub compaction_policy: &'static str,
}

impl TieredStats {
    /// Total live keys across all levels (exact: inserts shadow older
    /// occurrences, so no key is counted twice).
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.levels.iter().map(|l| l.live_keys).sum()
    }

    /// Total published filter bits across all levels.
    #[must_use]
    pub fn total_size_bits(&self) -> u64 {
        self.levels.iter().map(|l| l.size_bits).sum()
    }

    /// Total tombstoned keys across all levels.
    #[must_use]
    pub fn total_tombstones(&self) -> u64 {
        self.levels.iter().map(|l| l.tombstones).sum()
    }

    /// Total shard rebuilds across all levels.
    #[must_use]
    pub fn total_rebuilds(&self) -> u64 {
        self.levels.iter().map(|l| l.rebuilds).sum()
    }

    /// Total completed live family migrations across all levels.
    #[must_use]
    pub fn total_migrations(&self) -> u64 {
        self.levels.iter().map(|l| l.migrations).sum()
    }

    /// Effective filter bits per live key across the whole tiered store
    /// (`0.0` for an empty store — never NaN or infinity).
    #[must_use]
    pub fn bits_per_live_key(&self) -> f64 {
        let keys = self.total_keys();
        if keys == 0 {
            0.0
        } else {
            self.total_size_bits() as f64 / keys as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(index: usize, keys: u64, fpr: f64) -> ShardStats {
        ShardStats {
            shard: index,
            keys,
            size_bits: keys * 12,
            bits_per_key: 12.0,
            modeled_fpr: fpr,
            rebuilds: index as u64,
            rebuilds_background: index as u64 / 2,
            migrations: index as u64 + 1,
            rebuild_wait_ns: index as u64 * 1_000,
            max_writer_stall_ns: index as u64 * 500,
            writer_rebuild_stall_ns: index as u64 * 400,
            rebuild_pending: false,
            // Offset by one so *every* shard contributes a distinct nonzero
            // term: the old `index * 2` fixture zeroed shard 0's share, and
            // the total_tombstones assertion was really testing a single
            // shard's value rather than summation across shards.
            tombstones: index as u64 * 2 + 1,
            overflow: index as u64 * 3 + 1,
            bookkeeping_bytes: keys * 8,
            counting_sidecar_bytes: keys * 4,
            policy: "saturation-doubling",
            config_label: "test".to_string(),
            kernel: "scalar",
            fingerprint_bits: 0,
            construction_retries: 0,
        }
    }

    #[test]
    fn aggregates_sum_and_weight() {
        let stats = StoreStats::aggregate(vec![shard(0, 100, 0.01), shard(1, 300, 0.03)]);
        assert_eq!(stats.total_keys(), 400);
        assert_eq!(stats.total_size_bits(), 4_800);
        assert_eq!(stats.total_rebuilds(), 1);
        assert_eq!(stats.total_background_rebuilds(), 0);
        // 1 + 2: both shards contribute a nonzero migration count.
        assert_eq!(stats.total_migrations(), 3);
        assert_eq!(stats.total_rebuild_wait_ns(), 1_000);
        assert_eq!(stats.max_writer_stall_ns(), 500);
        assert_eq!(stats.writer_rebuild_stall_ns(), 400);
        // 1 + 3 and 1 + 4: both shards contribute, so these really do test
        // the summation (a lookup of either single shard could not pass).
        assert_eq!(stats.total_tombstones(), 4);
        assert_eq!(stats.total_overflow(), 5);
        assert_eq!(stats.total_bookkeeping_bytes(), 3_200);
        assert_eq!(stats.total_counting_sidecar_bytes(), 1_600);
        let expected = (0.01 * 100.0 + 0.03 * 300.0) / 400.0;
        assert!((stats.weighted_modeled_fpr() - expected).abs() < 1e-12);
        assert!((stats.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_store_degenerates_gracefully() {
        let stats = StoreStats::aggregate(vec![shard(0, 0, 0.0)]);
        assert_eq!(stats.total_keys(), 0);
        assert_eq!(stats.weighted_modeled_fpr(), 0.0);
        assert_eq!(stats.imbalance(), 1.0);
        // Ratio stats on empty stores report 0, not 0/0 = NaN or x/0 = inf
        // (an empty shard still publishes a sized filter).
        assert_eq!(stats.bits_per_live_key(), 0.0);
        assert!(stats.bits_per_live_key().is_finite());
    }

    #[test]
    fn populated_store_reports_bits_per_live_key() {
        let stats = StoreStats::aggregate(vec![shard(0, 100, 0.01), shard(1, 300, 0.03)]);
        assert!((stats.bits_per_live_key() - 12.0).abs() < 1e-12);
    }
}
