//! Occupancy, size and false-positive statistics per shard and per store.

/// Statistics of one shard at the moment [`stats`] was called.
///
/// [`stats`]: crate::ShardedFilterStore::stats
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Keys inserted into this shard.
    pub keys: u64,
    /// Published filter size in bits.
    pub size_bits: u64,
    /// Effective bits per key (`size_bits / keys`; 0 when empty).
    pub bits_per_key: f64,
    /// Analytical false-positive rate at the current occupancy.
    pub modeled_fpr: f64,
    /// Policy-triggered rebuilds this shard has performed.
    pub rebuilds: u64,
    /// Deleted keys still represented in the filter (Bloom shards cannot
    /// unset bits; the active rebuild policy decides when they are purged).
    pub tombstones: u64,
    /// Keys parked in the shard's exact overflow side buffer by a deferring
    /// policy, awaiting the next maintenance fold.
    pub overflow: u64,
    /// Writer-side bookkeeping bytes (the compact key set's ordered log plus
    /// sorted run — at most ~2x the raw key bytes).
    pub bookkeeping_bytes: u64,
    /// Name of the active rebuild policy.
    pub policy: &'static str,
    /// Configuration label of the shard filter.
    pub config_label: String,
    /// Active batch-lookup kernel (`scalar`, `avx2-…`).
    pub kernel: &'static str,
}

/// Aggregated view over every shard of a store.
#[derive(Debug, Clone)]
pub struct StoreStats {
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl StoreStats {
    pub(crate) fn aggregate(shards: Vec<ShardStats>) -> Self {
        Self { shards }
    }

    /// Total keys across all shards.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Total filter bits across all shards.
    #[must_use]
    pub fn total_size_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.size_bits).sum()
    }

    /// Total rebuilds across all shards.
    #[must_use]
    pub fn total_rebuilds(&self) -> u64 {
        self.shards.iter().map(|s| s.rebuilds).sum()
    }

    /// Total tombstoned (deleted but still filter-resident) keys.
    #[must_use]
    pub fn total_tombstones(&self) -> u64 {
        self.shards.iter().map(|s| s.tombstones).sum()
    }

    /// Total keys parked in overflow side buffers.
    #[must_use]
    pub fn total_overflow(&self) -> u64 {
        self.shards.iter().map(|s| s.overflow).sum()
    }

    /// Total writer-side bookkeeping bytes across all shards.
    #[must_use]
    pub fn total_bookkeeping_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bookkeeping_bytes).sum()
    }

    /// The store-level analytical false-positive rate: the key-weighted mean
    /// of the shard rates (a uniformly drawn probe lands in shard `i` with
    /// probability proportional to the shard routing, which the splitter hash
    /// makes near-uniform; weighting by keys matches a probe stream drawn
    /// like the inserted population).
    #[must_use]
    pub fn weighted_modeled_fpr(&self) -> f64 {
        let total = self.total_keys();
        if total == 0 {
            return 0.0;
        }
        self.shards
            .iter()
            .map(|s| s.modeled_fpr * s.keys as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Ratio of the largest to the smallest shard occupancy (1.0 = perfectly
    /// balanced; meaningful once shards are non-empty).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.keys).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.keys).min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(index: usize, keys: u64, fpr: f64) -> ShardStats {
        ShardStats {
            shard: index,
            keys,
            size_bits: keys * 12,
            bits_per_key: 12.0,
            modeled_fpr: fpr,
            rebuilds: index as u64,
            tombstones: index as u64 * 2,
            overflow: index as u64 * 3,
            bookkeeping_bytes: keys * 8,
            policy: "saturation-doubling",
            config_label: "test".to_string(),
            kernel: "scalar",
        }
    }

    #[test]
    fn aggregates_sum_and_weight() {
        let stats = StoreStats::aggregate(vec![shard(0, 100, 0.01), shard(1, 300, 0.03)]);
        assert_eq!(stats.total_keys(), 400);
        assert_eq!(stats.total_size_bits(), 4_800);
        assert_eq!(stats.total_rebuilds(), 1);
        assert_eq!(stats.total_tombstones(), 2);
        assert_eq!(stats.total_overflow(), 3);
        assert_eq!(stats.total_bookkeeping_bytes(), 3_200);
        let expected = (0.01 * 100.0 + 0.03 * 300.0) / 400.0;
        assert!((stats.weighted_modeled_fpr() - expected).abs() < 1e-12);
        assert!((stats.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_store_degenerates_gracefully() {
        let stats = StoreStats::aggregate(vec![shard(0, 0, 0.0)]);
        assert_eq!(stats.total_keys(), 0);
        assert_eq!(stats.weighted_modeled_fpr(), 0.0);
        assert_eq!(stats.imbalance(), 1.0);
    }
}
