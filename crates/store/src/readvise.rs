//! Online re-advising: observe the store's real traffic, periodically re-run
//! the per-level advisor against it, and migrate the filter family live when
//! the modeled improvement clears a hysteresis gate.
//!
//! Two pieces live here:
//!
//! * [`WorkloadObserver`] — lock-free decayed counters for the insert /
//!   delete / lookup traffic a store actually sees, folded into the
//!   [`LevelSpec`] the advisor consumes,
//! * [`Readvisor`] — the feedback controller: one [`FilterAdvisor`] over the
//!   fuse-enabled configuration space plus two [`FamilyHysteresis`] gates
//!   (a thresholded one for family flips, a zero-threshold one for
//!   tombstone ↔ counting delete-mode flips, whose objective difference is
//!   structurally small), emitting a [`MigrationTarget`] once a flip has
//!   been confirmed for the required streak.
//!
//! The store drives this from
//! [`run_pending_readvise`](crate::ShardedFilterStore::run_pending_readvise)
//! (and from `maintain()`), mirroring how `RebuildMode::Queued` makes
//! rebuilds deterministic: evaluation and migration happen only when the
//! caller says so, never behind its back.

use crate::shard::MigrationTarget;
use pof_core::{ConfigSpace, FamilyHysteresis, FilterAdvisor, FilterConfig, LevelSpec};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::options::ReadviseOptions;

/// Decayed traffic counters. Writers bump them wait-free on the hot paths;
/// each re-advising evaluation reads the totals and then halves every
/// counter, so the observed rates are an exponential moving average with a
/// half-life of one evaluation period — a workload that *stops* deleting
/// sees its observed delete rate decay toward zero instead of being haunted
/// by history.
#[derive(Debug, Default)]
pub(crate) struct WorkloadObserver {
    inserts: AtomicU64,
    deletes: AtomicU64,
    lookups: AtomicU64,
}

impl WorkloadObserver {
    pub(crate) fn note_inserts(&self, n: usize) {
        self.inserts.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_deletes(&self, n: usize) {
        self.deletes.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_lookups(&self, n: usize) {
        self.lookups.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Current decayed totals as `(inserts, deletes, lookups)`.
    pub(crate) fn totals(&self) -> (u64, u64, u64) {
        (
            self.inserts.load(Ordering::Relaxed),
            self.deletes.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
        )
    }

    /// Halve every counter (one evaluation epoch elapsed). The halving is a
    /// drain-and-refund — `swap(0)` claims the counter's exact value, then
    /// `fetch_add(v / 2)` returns the half that survives — so concurrent
    /// increments are never halved away mid-flight (they either land before
    /// the swap and are claimed whole, or after it and survive whole) and,
    /// unlike the former `load` + `fetch_sub(ceil(v/2))` pair, two racing
    /// decays can never subtract more than the counter holds: with `v = 1`
    /// that read-then-subtract pair underflowed the counter to `u64::MAX`,
    /// which read back as an astronomically delete-heavy workload. `v / 2`
    /// (not `ceil`) drives a counter of 1 to 0, so an idle store decays to
    /// rest instead of a stale `deletes = 1` haunting the observed rate.
    pub(crate) fn decay(&self) {
        for counter in [&self.inserts, &self.deletes, &self.lookups] {
            let v = counter.swap(0, Ordering::Relaxed);
            if v / 2 > 0 {
                counter.fetch_add(v / 2, Ordering::Relaxed);
            }
        }
    }
}

/// The per-store feedback controller: re-runs the advisor against observed
/// stats and gates family / delete-mode flips through hysteresis. Lives
/// behind a `Mutex` in the store; only `run_pending_readvise` touches it.
#[derive(Debug)]
pub(crate) struct Readvisor {
    advisor: FilterAdvisor,
    /// Gate for cross-family flips (Bloom ↔ Cuckoo ↔ fuse): the modeled
    /// improvement must clear `min_improvement` for `consecutive`
    /// evaluations.
    family_gate: FamilyHysteresis,
    /// Gate for tombstone ↔ counting flips within the Bloom family. The
    /// delete sidecar barely moves the modeled objective, so this gate runs
    /// at a zero improvement threshold — only the streak requirement
    /// protects against flapping.
    delete_gate: FamilyHysteresis,
    min_ops: u64,
    /// Confirmed target still being rolled across shards (some may have
    /// reported `Busy` or still have the migration queued).
    pub(crate) pending_target: Option<MigrationTarget>,
}

impl Readvisor {
    pub(crate) fn new(options: &ReadviseOptions) -> Self {
        // Re-advising exists to retire a family the workload has outgrown,
        // so the candidate space always includes the immutable fuse tier.
        let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default().with_fuse());
        Self {
            advisor,
            family_gate: FamilyHysteresis::new(options.min_improvement, options.consecutive),
            delete_gate: FamilyHysteresis::new(0.0, options.consecutive),
            min_ops: options.min_ops,
            pending_target: None,
        }
    }

    pub(crate) fn min_ops(&self) -> u64 {
        self.min_ops
    }

    /// One evaluation: re-run the per-level search under `observed` stats
    /// and feed the verdict through the hysteresis gates. Returns a
    /// confirmed [`MigrationTarget`] exactly when a streak completes.
    ///
    /// Only two kinds of change migrate: a family flip, or a delete-mode
    /// flip within the Bloom family. Same-family shape or bits-per-key
    /// tweaks are ignored — re-tuning those on every drift would churn
    /// rebuilds for marginal modeled wins.
    pub(crate) fn evaluate(
        &mut self,
        observed: &LevelSpec,
        incumbent: &FilterConfig,
        incumbent_counting: bool,
    ) -> Option<MigrationTarget> {
        let readvice = self.advisor.readvise_level(observed, incumbent);
        let level = &readvice.recommendation;
        let target = MigrationTarget {
            config: level.recommendation.config,
            bits_per_key: level.recommendation.bits_per_key,
            counting: level.counting_deletes,
        };
        if readvice.flips_family {
            self.delete_gate.reset();
            if self
                .family_gate
                .observe(Some(target.config.kind()), readvice.improvement)
            {
                return Some(target);
            }
            return None;
        }
        self.family_gate.reset();
        if target.counting != incumbent_counting {
            if self
                .delete_gate
                .observe(Some(target.config.kind()), readvice.improvement)
            {
                return Some(target);
            }
        } else {
            // A proposal matching the incumbent delete mode must break the
            // streak, or two flip proposals separated by agreeing rounds
            // would count as consecutive.
            self.delete_gate.reset();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};

    fn bloom() -> FilterConfig {
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ))
    }

    fn hot_spec() -> LevelSpec {
        LevelSpec {
            expected_keys: 1 << 15,
            work_saved_cycles: 32.0,
            sigma: 0.5,
            delete_rate: 0.4,
            expected_probes_per_key: 4.0,
        }
    }

    fn cold_spec() -> LevelSpec {
        LevelSpec {
            expected_keys: 1 << 15,
            work_saved_cycles: 16_000_000.0,
            sigma: 0.0,
            delete_rate: 0.0,
            expected_probes_per_key: 1_000_000.0,
        }
    }

    #[test]
    fn decay_drives_counters_to_zero() {
        let observer = WorkloadObserver::default();
        observer.note_inserts(1000);
        observer.note_deletes(1);
        observer.note_lookups(3);
        for _ in 0..16 {
            observer.decay();
        }
        assert_eq!(observer.totals(), (0, 0, 0));
    }

    /// Regression (decay underflow): the former `load` + `fetch_sub(ceil(v/2))`
    /// decay raced its own reads — two decays (or a decay against a counter
    /// another decay already drained) could subtract more than the counter
    /// held, wrapping it to `u64::MAX` and reporting an absurd workload. The
    /// drain-and-refund decay can never underflow: counters stay bounded by
    /// the true traffic no matter how decays and increments interleave.
    #[test]
    fn racing_decays_never_underflow_the_counters() {
        let observer = std::sync::Arc::new(WorkloadObserver::default());
        let total_per_thread = 10_000usize;
        let threads = 4;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let observer = std::sync::Arc::clone(&observer);
                scope.spawn(move || {
                    for i in 0..total_per_thread {
                        observer.note_inserts(1);
                        observer.note_deletes(1);
                        if i % 7 == 0 {
                            observer.decay();
                        }
                    }
                });
            }
            let observer = std::sync::Arc::clone(&observer);
            scope.spawn(move || {
                for _ in 0..5_000 {
                    observer.decay();
                }
            });
        });
        let ceiling = (threads * total_per_thread) as u64;
        let (inserts, deletes, lookups) = observer.totals();
        assert!(inserts <= ceiling, "inserts underflowed: {inserts}");
        assert!(deletes <= ceiling, "deletes underflowed: {deletes}");
        assert_eq!(lookups, 0);
        // And decay still drives everything to zero once traffic stops.
        for _ in 0..64 {
            observer.decay();
        }
        assert_eq!(observer.totals(), (0, 0, 0));
    }

    #[test]
    fn sustained_cold_drift_confirms_a_family_flip() {
        let mut readvisor = Readvisor::new(&ReadviseOptions {
            consecutive: 3,
            ..ReadviseOptions::default()
        });
        let incumbent = bloom();
        let mut confirmed = None;
        for round in 0..3 {
            confirmed = readvisor.evaluate(&cold_spec(), &incumbent, true);
            if round < 2 {
                assert!(confirmed.is_none(), "confirmed before the streak completed");
            }
        }
        let target = confirmed.expect("three consecutive cold evaluations must confirm");
        assert_eq!(target.config.kind(), pof_filter::FilterKind::Fuse);
        assert!(!target.counting);
    }

    #[test]
    fn oscillating_borderline_stats_never_confirm() {
        let mut readvisor = Readvisor::new(&ReadviseOptions {
            min_improvement: 0.95,
            consecutive: 2,
            ..ReadviseOptions::default()
        });
        let incumbent = bloom();
        for round in 0..12 {
            let spec = if round % 2 == 0 {
                cold_spec()
            } else {
                hot_spec()
            };
            assert!(
                readvisor.evaluate(&spec, &incumbent, true).is_none(),
                "oscillating stats must never complete a streak (round {round})"
            );
        }
    }
}
