//! Consolidated construction options for sharded stores.
//!
//! The store's constructors historically accumulated positional parameters —
//! filter config, shard count, capacity, budget, policy, rebuild mode,
//! delete mode — one per feature PR, peaking at the 7-positional
//! `with_options`. This module replaces that sprawl with three small structs:
//!
//! * [`StoreOptions`] — everything a [`ShardedFilterStore`] needs, with
//!   [`Default`]s matching the classic constructor defaults, consumed by
//!   [`ShardedFilterStore::from_options`],
//! * [`LifecycleOptions`] — the rebuild policy/execution pair shared by
//!   [`StoreBuilder`](crate::StoreBuilder) and
//!   [`TieredStoreBuilder`](crate::TieredStoreBuilder) (which used to
//!   duplicate the knobs),
//! * [`ReadviseOptions`] — the online re-advising knobs: hysteresis
//!   threshold and streak, the minimum observed traffic per evaluation, and
//!   the initial workload hint.
//!
//! [`ShardedFilterStore`]: crate::ShardedFilterStore
//! [`ShardedFilterStore::from_options`]: crate::ShardedFilterStore::from_options

use crate::maintainer::RebuildMode;
use crate::policy::{RebuildPolicy, SaturationDoubling};
use crate::shard::BloomDeleteMode;
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{FilterConfig, LevelSpec};
use std::sync::Arc;

/// The shard-lifecycle pair every store (flat or per tiered level) needs:
/// *when* shards rebuild (the [`RebuildPolicy`]) and *where* the rebuild
/// runs (the [`RebuildMode`]). One instance is shared by all shards.
#[derive(Debug, Clone)]
pub struct LifecycleOptions {
    /// When shards rebuild their filters and how rebuild capacity is chosen.
    pub policy: Arc<dyn RebuildPolicy>,
    /// Where policy-triggered rebuilds execute: inline under the shard lock,
    /// on a background maintainer thread, or queued for a deterministic
    /// harness.
    pub rebuild_mode: RebuildMode,
}

impl Default for LifecycleOptions {
    /// [`SaturationDoubling`] with inline rebuilds — the store's classic
    /// synchronous behavior.
    fn default() -> Self {
        Self {
            policy: Arc::new(SaturationDoubling),
            rebuild_mode: RebuildMode::Inline,
        }
    }
}

/// Knobs for online re-advising (see the crate docs' "Online re-advising"
/// story): how much modeled improvement a family flip must show, for how
/// many consecutive evaluations, before the store migrates live.
#[derive(Debug, Clone, Copy)]
pub struct ReadviseOptions {
    /// Minimum relative reduction of the modeled maintenance-weighted
    /// objective (`(incumbent − candidate) / incumbent`) a family flip must
    /// clear. Delete-mode flips within the Bloom family are exempt (their
    /// objective difference is structurally small).
    pub min_improvement: f64,
    /// Consecutive above-threshold evaluations (all proposing the same
    /// target family) required before a migration is confirmed.
    pub consecutive: u32,
    /// Minimum observed operations (inserts + deletes + lookups) since the
    /// last evaluation for an evaluation to run at all — a near-idle store
    /// neither advances nor resets the hysteresis streak.
    pub min_ops: u64,
    /// Initial workload hint: `work_saved_cycles` (`t_w`) and `sigma` cannot
    /// be observed from the store's own traffic, so they are seeded here and
    /// updated via
    /// [`ShardedFilterStore::set_workload_hint`](crate::ShardedFilterStore::set_workload_hint)
    /// as the deployment's miss cost drifts.
    pub workload: LevelSpec,
}

impl Default for ReadviseOptions {
    /// 20 % modeled improvement sustained for 3 evaluations, at least 64
    /// observed operations per evaluation, default workload hint.
    fn default() -> Self {
        Self {
            min_improvement: 0.2,
            consecutive: 3,
            min_ops: 64,
            workload: LevelSpec::default(),
        }
    }
}

/// Everything [`ShardedFilterStore::from_options`] needs — the struct that
/// replaces the store's former positional constructors. Start from
/// [`Default`] and override what differs:
///
/// ```
/// use pof_store::{RebuildMode, ShardedFilterStore, StoreOptions};
///
/// let store = ShardedFilterStore::from_options(StoreOptions {
///     shard_count: 4,
///     capacity_per_shard: 1 << 12,
///     lifecycle: pof_store::LifecycleOptions {
///         rebuild_mode: RebuildMode::Queued,
///         ..Default::default()
///     },
///     ..Default::default()
/// });
/// assert_eq!(store.shard_count(), 4);
/// ```
///
/// [`ShardedFilterStore::from_options`]: crate::ShardedFilterStore::from_options
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Filter configuration every shard builds from.
    pub config: FilterConfig,
    /// Number of shards (rounded up to a power of two at build time).
    pub shard_count: usize,
    /// Keys each shard's initial filter is sized for (shards grow on
    /// demand, so this is a sizing hint, not a limit).
    pub capacity_per_shard: usize,
    /// Per-shard filter budget in bits per key.
    pub bits_per_key: f64,
    /// The shard-lifecycle pair: rebuild policy and execution mode.
    pub lifecycle: LifecycleOptions,
    /// How Bloom shards honor deletes (tombstone or counting sidecar).
    pub delete_mode: BloomDeleteMode,
    /// Enable online re-advising with these knobs; `None` (the default)
    /// keeps the family fixed at construction time.
    pub readvise: Option<ReadviseOptions>,
}

impl Default for StoreOptions {
    /// The classic store defaults: the paper's canonical high-throughput
    /// Bloom configuration (cache-sectorized, 512-bit blocks, 64-bit
    /// sectors, z = 2, k = 8, magic addressing), 8 shards sized for 8k keys
    /// each at 12 bits/key, [`LifecycleOptions::default`], tombstone
    /// deletes, no re-advising.
    fn default() -> Self {
        Self {
            config: FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
            shard_count: 8,
            capacity_per_shard: 8 * 1024,
            bits_per_key: 12.0,
            lifecycle: LifecycleOptions::default(),
            delete_mode: BloomDeleteMode::Tombstone,
            readvise: None,
        }
    }
}
