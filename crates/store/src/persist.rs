//! Store-side durability: per-shard write-ahead journaling and checkpointed
//! snapshots, built on `pof-persist`'s file formats.
//!
//! # The generation protocol
//!
//! Each shard owns an independent sequence of *generations*. Generation `g`
//! names a consistent cut: snapshot `shard-NNNN.gen-GGGGGGGG.snap` holds the
//! shard's complete state at the cut, and WAL segment `.gen-GGGGGGGG.wal`
//! journals every mutation *after* it. The write path appends to the WAL
//! **before** applying to memory (under the same per-shard journal lock, so
//! a checkpoint can never slide between append and apply); a checkpoint
//! captures the shard state and rotates the WAL to `g + 1` under that lock,
//! then writes snapshot `g + 1` and prunes everything older than `g` — the
//! previous generation is deliberately retained as the fallback for a torn
//! newest snapshot.
//!
//! Recovery (see [`ShardedFilterStore::open`](crate::ShardedFilterStore::open))
//! inverts this: map the newest snapshot whose CRCs validate, fall back one
//! generation past any torn one, replay every WAL segment at or after that
//! snapshot's generation (oldest first, torn tail dropped), and continue
//! appending on the newest segment.
//!
//! # Crash modeling
//!
//! A [`FaultInjector`] armed at one of the four [`FaultPoint`]s kills the
//! instrumented operation exactly once. After any fault fires the layer is
//! *dead* — every later persistence call is a silent no-op — so a test can
//! keep the process alive, drop the store, and reopen the directory as if
//! the process had crashed at the fault. The faulted batch itself is **not**
//! applied in memory (a crashed process would not have applied it either),
//! which keeps the live store and the journal telling the same story.

use crate::shard::Shard;
use pof_persist::{
    prune_generations, snapshot_file, wal_file, write_snapshot, FaultInjector, FaultPoint,
    FsyncPolicy, PersistError, WalOp, WalWriter, WAL_RECORD_BYTES,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Durability knobs for a store opened with
/// [`ShardedFilterStore::open_with`](crate::ShardedFilterStore::open_with)
/// or [`TieredStore::open_with`](crate::TieredStore::open_with).
#[derive(Debug, Clone, Default)]
pub struct PersistOptions {
    /// When WAL appends reach stable storage. [`FsyncPolicy::EveryBatch`]
    /// (default) makes every acknowledged batch crash-durable;
    /// [`FsyncPolicy::OnCheckpoint`] trades the tail since the last
    /// checkpoint for append throughput.
    pub fsync: FsyncPolicy,
    /// Checkpoint a shard automatically once its WAL segment holds this many
    /// records (`0` disables the automatic rotation — segments then only
    /// rotate on [`maintain`](crate::ShardedFilterStore::maintain) or an
    /// explicit
    /// [`persist_checkpoint`](crate::ShardedFilterStore::persist_checkpoint)).
    pub wal_rotate_records: u64,
    /// Checkpoint every shard as part of
    /// [`maintain`](crate::ShardedFilterStore::maintain). Defaults off: a
    /// maintenance round is a latency tool, and a snapshot write per shard
    /// is exactly the kind of stall it exists to avoid.
    pub checkpoint_on_maintain: bool,
    /// Crash-test hook: an armed injector kills the instrumented operation
    /// once, after which the persistence layer plays dead (see the module
    /// docs). `None` in production.
    pub fault: Option<Arc<FaultInjector>>,
}

impl PersistOptions {
    /// Default automatic-rotation threshold: checkpoint a shard once its
    /// WAL holds 64Ki records (~576 KiB of journal to replay on recovery).
    pub const DEFAULT_WAL_ROTATE_RECORDS: u64 = 64 * 1024;

    /// Durable defaults: fsync every batch, rotate at
    /// [`Self::DEFAULT_WAL_ROTATE_RECORDS`], no checkpoint on maintain, no
    /// fault injection.
    #[must_use]
    pub fn durable() -> Self {
        Self {
            fsync: FsyncPolicy::EveryBatch,
            wal_rotate_records: Self::DEFAULT_WAL_ROTATE_RECORDS,
            checkpoint_on_maintain: false,
            fault: None,
        }
    }
}

/// One shard's journaling state. The mutex is held from WAL append through
/// the in-memory apply, and for the capture + rotate half of a checkpoint —
/// the lock is what makes "everything in WALs `< g` is inside snapshot `g`"
/// an invariant rather than a race.
#[derive(Debug)]
struct ShardJournal {
    /// Generation of the segment `wal` appends to.
    generation: u64,
    /// The open segment.
    wal: WalWriter,
    /// Records appended since the last checkpoint, for the rotation policy.
    records_since_checkpoint: u64,
}

/// The store's persistence engine: one [`ShardJournal`] per shard plus the
/// directory and policy they share. Lives behind an `Arc` on the store;
/// every public store mutation that must survive a crash funnels through
/// [`Self::journal_apply`].
#[derive(Debug)]
pub(crate) struct StorePersistence {
    dir: PathBuf,
    options: PersistOptions,
    journals: Vec<Mutex<ShardJournal>>,
    /// Set the moment any fault or I/O error fires; all later persistence
    /// work no-ops (the modeled process is dead, only the in-memory store
    /// lives on).
    dead: AtomicBool,
}

impl StorePersistence {
    /// Fresh persistence state for a newly created store: one empty
    /// generation-0 WAL segment per shard.
    pub(crate) fn create(
        dir: &Path,
        shard_count: usize,
        options: PersistOptions,
    ) -> Result<Self, PersistError> {
        let mut journals = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let wal = WalWriter::create(&dir.join(wal_file(shard, 0)))?;
            journals.push(Mutex::new(ShardJournal {
                generation: 0,
                wal,
                records_since_checkpoint: 0,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            journals,
            dead: AtomicBool::new(false),
        })
    }

    /// Reattach to a recovered directory: continue appending on each shard's
    /// newest WAL segment (torn tail truncated away by `valid_len`).
    /// `segments` carries one `(generation, valid_len)` per shard, from
    /// [`pof_persist::recover_shard`].
    pub(crate) fn reattach(
        dir: &Path,
        segments: &[(u64, u64)],
        options: PersistOptions,
    ) -> Result<Self, PersistError> {
        let mut journals = Vec::with_capacity(segments.len());
        for (shard, &(generation, valid_len)) in segments.iter().enumerate() {
            let path = dir.join(wal_file(shard, generation));
            let wal = if path.exists() {
                WalWriter::open_append(&path, valid_len)?
            } else {
                // A shard checkpointed and pruned, then crashed before its
                // next append ever created the new segment.
                WalWriter::create(&path)?
            };
            journals.push(Mutex::new(ShardJournal {
                generation,
                wal,
                records_since_checkpoint: valid_len / WAL_RECORD_BYTES as u64,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            journals,
            dead: AtomicBool::new(false),
        })
    }

    /// Has a fault or I/O error killed the layer?
    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Journal one shard-routed batch, then run `apply` (the in-memory
    /// mutation) under the same journal lock. Returns `None` — without
    /// applying — when a fault fires inside the journaling window: the
    /// modeled process died before the apply, so the memory image must not
    /// get ahead of the story the journal tells.
    ///
    /// Once the layer is dead, the batch applies memory-only (`Some`), like
    /// writes against a store whose disk already failed.
    pub(crate) fn journal_apply<R>(
        &self,
        shard: usize,
        op: WalOp,
        keys: &[u32],
        apply: impl FnOnce() -> R,
    ) -> Option<R> {
        if keys.is_empty() || self.is_dead() {
            return Some(apply());
        }
        let mut journal = self.journals[shard].lock().expect("journal lock poisoned");
        let fault = self.options.fault.as_deref();
        if fault.is_some_and(|f| f.should_fire(FaultPoint::MidWalAppend)) {
            // Tear the first record of the batch and die: recovery must
            // drop the torn tail, and with it the whole never-applied batch.
            let _ = journal.wal.append_torn(op, keys[0]);
            self.dead.store(true, Ordering::Relaxed);
            return None;
        }
        let sync = self.options.fsync == FsyncPolicy::EveryBatch;
        if journal.wal.append(op, keys, sync).is_err() {
            self.dead.store(true, Ordering::Relaxed);
            return None;
        }
        if fault.is_some_and(|f| f.should_fire(FaultPoint::PostAppendPreApply)) {
            // The batch is fully durable; die before the in-memory apply.
            // Recovery must replay it — the log is the authority.
            let _ = journal.wal.sync();
            self.dead.store(true, Ordering::Relaxed);
            return None;
        }
        journal.records_since_checkpoint += keys.len() as u64;
        // `apply` runs with the journal lock still held: a checkpoint on
        // this shard serializes either entirely before the append or
        // entirely after the apply, never in between.
        Some(apply())
    }

    /// Does the rotation policy ask for a checkpoint of this shard?
    pub(crate) fn wants_rotation(&self, shard: usize) -> bool {
        if self.is_dead() || self.options.wal_rotate_records == 0 {
            return false;
        }
        self.journals[shard]
            .lock()
            .expect("journal lock poisoned")
            .records_since_checkpoint
            >= self.options.wal_rotate_records
    }

    /// Is `maintain()` expected to checkpoint every shard?
    pub(crate) fn checkpoint_on_maintain(&self) -> bool {
        self.options.checkpoint_on_maintain
    }

    /// Checkpoint one shard: capture its state and rotate the WAL to the
    /// next generation under the journal lock, write the new snapshot
    /// atomically, then prune everything older than the previous generation
    /// (which is kept as the torn-snapshot fallback).
    pub(crate) fn checkpoint_shard(&self, index: usize, shard: &Shard) -> Result<(), PersistError> {
        if self.is_dead() {
            return Ok(());
        }
        let mut journal = self.journals[index].lock().expect("journal lock poisoned");
        // The cut: state captured and segment rotated under one lock hold —
        // every journaled op is either inside the payload (old segment) or
        // after it (new segment), never both, never neither.
        let mut payload = Vec::new();
        shard.encode_state(&mut payload);
        let result = (|| -> Result<(), PersistError> {
            journal.wal.sync()?;
            let next = journal.generation + 1;
            journal.wal = WalWriter::create(&self.dir.join(wal_file(index, next)))?;
            journal.generation = next;
            journal.records_since_checkpoint = 0;
            write_snapshot(
                &self.dir.join(snapshot_file(index, next)),
                &payload,
                self.options.fault.as_deref(),
            )?;
            // Keep generations `next` and `next - 1`; a torn `next` falls
            // back to `next - 1` plus both WAL segments.
            let keep = next.saturating_sub(1);
            prune_generations(&self.dir, index, keep, keep)?;
            Ok(())
        })();
        if result.is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
        result
    }
}
