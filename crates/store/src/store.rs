//! The sharded filter store and its frozen read snapshot.

use crate::shard::Shard;
use crate::stats::{ShardStats, StoreStats};
use pof_core::{AnyFilter, FilterConfig};
use pof_filter::stats::measured_fpr;
use pof_filter::{Filter, FilterKind, SelectionVector};
use std::sync::Arc;

/// Compile-time audit that the store (and therefore `AnyFilter`) can be
/// shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnyFilter>();
    assert_send_sync::<ShardedFilterStore>();
    assert_send_sync::<StoreSnapshot>();
};

/// A concurrent approximate-membership store: `P` filter shards, batch-first
/// lookups, snapshot-isolated reads.
///
/// Routing: a key's shard is the top `log2(P)` bits of an avalanche mix of
/// the key ([`pof_hash::mix32`]) — deliberately a *different* hash family
/// than the multiplicative hashes the filters consume internally, so shard
/// routing does not correlate with intra-filter placement.
///
/// Readers ([`contains`](Self::contains) /
/// [`contains_batch`](Self::contains_batch)) never block on writers: they
/// probe the shard's last published snapshot. Writers
/// ([`insert_batch`](Self::insert_batch)) serialize per shard, mutate a
/// private write-side filter (rebuilding it when saturated) and publish a new
/// snapshot per batch. A key is therefore visible to readers once the
/// `insert_batch` call that carried it returns — and published snapshots
/// never lose keys, which the concurrency tests assert.
#[derive(Debug)]
pub struct ShardedFilterStore {
    shards: Vec<Shard>,
    /// `log2` of the shard count.
    shard_bits: u32,
}

impl ShardedFilterStore {
    /// Create a store with `shard_count` shards (rounded up to a power of
    /// two), each sized for `capacity_per_shard` keys at `bits_per_key`.
    ///
    /// Most callers should go through [`StoreBuilder`](crate::StoreBuilder).
    #[must_use]
    pub fn new(
        config: FilterConfig,
        shard_count: usize,
        capacity_per_shard: usize,
        bits_per_key: f64,
    ) -> Self {
        let shard_count = shard_count.max(1).next_power_of_two();
        let shards = (0..shard_count)
            .map(|_| Shard::new(config, capacity_per_shard, bits_per_key))
            .collect();
        Self {
            shards,
            shard_bits: shard_count.trailing_zeros(),
        }
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index of a key.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: u32) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (pof_hash::mix32(key) >> (32 - self.shard_bits)) as usize
        }
    }

    /// Insert a batch of keys, fanning out to the owning shards.
    ///
    /// Each shard's keys are applied under that shard's write lock and become
    /// visible to readers atomically (per shard) when its fresh snapshot is
    /// published at the end of the batch. Inserts never fail: a shard whose
    /// filter cannot accommodate a key (Cuckoo relocation failure, or growth
    /// past its sized capacity) rebuilds itself with more space. The store
    /// has *set* semantics — re-inserting a key already present is a no-op.
    pub fn insert_batch(&self, keys: &[u32]) {
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &key in keys {
            routed[self.shard_of(key)].push(key);
        }
        for (shard, keys) in self.shards.iter().zip(&routed) {
            shard.insert_batch(keys);
        }
    }

    /// Point lookup against the current snapshots.
    #[must_use]
    pub fn contains(&self, key: u32) -> bool {
        self.shards[self.shard_of(key)].load().contains(key)
    }

    /// Batched lookup: for every key in `keys` that tests positive, append
    /// its batch position to `sel`, in ascending order (`sel` is not cleared,
    /// matching [`Filter::contains_batch`]).
    ///
    /// The batch is routed per shard, each shard slice is probed through the
    /// shard filter's vectorised batch kernel against one consistent
    /// snapshot, and the per-shard position lists are merged back to batch
    /// order.
    pub fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        self.snapshot().contains_batch(keys, sel)
    }

    /// Freeze the current state of every shard into an immutable
    /// [`StoreSnapshot`].
    ///
    /// The snapshot observes each shard at its latest published state and is
    /// unaffected by later inserts — the right granularity for probing one
    /// logical scan against a stable view.
    #[must_use]
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            filters: self.shards.iter().map(Shard::load).collect(),
            shard_bits: self.shard_bits,
        }
    }

    /// Total number of distinct keys inserted across all shards.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(Shard::key_count).sum()
    }

    /// Total filter size in bits across all shards (current snapshots).
    #[must_use]
    pub fn size_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.load().size_bits()).sum()
    }

    /// Per-shard and aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                // One consistent view per shard: pairing a snapshot with
                // counters read under separate locks could mix a pre-rebuild
                // filter size with a post-rebuild key count.
                let (snapshot, keys, rebuilds) = shard.consistent_view();
                let keys = keys as u64;
                let size_bits = snapshot.size_bits();
                ShardStats {
                    shard: index,
                    keys,
                    size_bits,
                    bits_per_key: if keys == 0 {
                        0.0
                    } else {
                        size_bits as f64 / keys as f64
                    },
                    modeled_fpr: snapshot.modeled_fpr(),
                    rebuilds,
                    config_label: snapshot.config_label(),
                    kernel: snapshot.kernel_name(),
                }
            })
            .collect();
        StoreStats::aggregate(shards)
    }

    /// Measure the store's empirical false-positive rate: probe `probe_count`
    /// keys guaranteed to be non-members (relative to the full inserted key
    /// set) through the batch path and report the qualifying fraction.
    ///
    /// Delegates to [`pof_filter::stats::measured_fpr`] over a frozen
    /// [`StoreSnapshot`], so the measurement also exercises the per-shard
    /// SIMD kernels.
    #[must_use]
    pub fn observed_fpr(&self, probe_count: usize, seed: u64) -> f64 {
        // Freeze the probed view *before* gathering members: the member list
        // is then a superset of every key the snapshot can legitimately
        // report, so keys inserted concurrently between the two steps can
        // never be misclassified as false positives.
        let snapshot = self.snapshot();
        let members: Vec<u32> = self.shards.iter().flat_map(|shard| shard.keys()).collect();
        measured_fpr(&snapshot, &members, probe_count, seed).fpr
    }

    /// The filter configuration the shards build from.
    #[must_use]
    pub fn config(&self) -> FilterConfig {
        self.shards[0].config()
    }
}

impl Filter for ShardedFilterStore {
    /// Insert via the unified trait. Never fails (shards rebuild on
    /// saturation), so this always returns `true`.
    ///
    /// **Cost note:** every insert publishes a fresh shard snapshot, which
    /// clones the shard's whole filter — per-key point inserts through this
    /// trait are O(filter size) each. Loops should go through
    /// [`ShardedFilterStore::insert_batch`], which publishes once per batch.
    fn insert(&mut self, key: u32) -> bool {
        self.insert_batch(std::slice::from_ref(&key));
        true
    }

    fn contains(&self, key: u32) -> bool {
        ShardedFilterStore::contains(self, key)
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        ShardedFilterStore::contains_batch(self, keys, sel);
    }

    fn size_bits(&self) -> u64 {
        ShardedFilterStore::size_bits(self)
    }

    fn kind(&self) -> FilterKind {
        self.config().kind()
    }

    fn config_label(&self) -> String {
        format!(
            "sharded(P={},{})",
            self.shard_count(),
            self.config().label()
        )
    }
}

/// An immutable, consistent view of every shard at one point in time.
///
/// Snapshots are cheap (`P` atomic reference bumps), can outlive the store,
/// and implement [`Filter`]'s read side, so anything that probes a filter —
/// the LSM substrate, the measurement harness, a join pipeline — can probe a
/// whole sharded store through the same interface. The write side is inert:
/// [`Filter::insert`] on a snapshot reports failure rather than mutating.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    filters: Vec<Arc<AnyFilter>>,
    shard_bits: u32,
}

impl StoreSnapshot {
    /// Shard index of a key (same routing as the owning store).
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: u32) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (pof_hash::mix32(key) >> (32 - self.shard_bits)) as usize
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.filters.len()
    }

    /// The filter snapshot backing one shard.
    #[must_use]
    pub fn shard_filter(&self, shard: usize) -> &AnyFilter {
        &self.filters[shard]
    }
}

impl Filter for StoreSnapshot {
    /// Snapshots are read-only; inserting reports failure (the documented
    /// "could not accommodate the key" outcome) and changes nothing.
    fn insert(&mut self, _key: u32) -> bool {
        false
    }

    fn contains(&self, key: u32) -> bool {
        self.filters[self.shard_of(key)].contains(key)
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        if self.filters.len() == 1 {
            // Single shard: no routing, probe the batch kernel directly.
            self.filters[0].contains_batch(keys, sel);
            return;
        }
        // Route the batch with a counting sort into flat buffers: the number
        // of allocations is constant in the shard count, which matters on
        // this read hot path (the 2·P-vector alternative allocates per shard
        // per call).
        let shard_count = self.filters.len();
        let mut cursors = vec![0usize; shard_count + 1];
        for &key in keys {
            cursors[self.shard_of(key) + 1] += 1;
        }
        for shard in 0..shard_count {
            cursors[shard + 1] += cursors[shard];
        }
        let starts = cursors.clone();
        let mut routed_keys = vec![0u32; keys.len()];
        let mut routed_positions = vec![0u32; keys.len()];
        for (i, &key) in keys.iter().enumerate() {
            let slot = &mut cursors[self.shard_of(key)];
            routed_keys[*slot] = key;
            routed_positions[*slot] = i as u32;
            *slot += 1;
        }
        // Probe each shard's contiguous slice through its batch kernel,
        // marking the qualifying batch positions.
        let mut qualifies = vec![false; keys.len()];
        let mut shard_sel = SelectionVector::new();
        for shard in 0..shard_count {
            let (start, end) = (starts[shard], starts[shard + 1]);
            if start == end {
                continue;
            }
            shard_sel.clear();
            self.filters[shard].contains_batch(&routed_keys[start..end], &mut shard_sel);
            for &local in shard_sel.as_slice() {
                qualifies[routed_positions[start + local as usize] as usize] = true;
            }
        }
        // Emit in ascending batch order, per the SelectionVector contract.
        sel.reserve(keys.len());
        for (i, &hit) in qualifies.iter().enumerate() {
            sel.push_if(i as u32, hit);
        }
    }

    fn size_bits(&self) -> u64 {
        self.filters.iter().map(|f| f.size_bits()).sum()
    }

    fn kind(&self) -> FilterKind {
        self.filters[0].kind()
    }

    fn config_label(&self) -> String {
        format!(
            "sharded-snapshot(P={},{})",
            self.filters.len(),
            self.filters[0].config_label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    use pof_filter::KeyGen;

    fn bloom_config() -> FilterConfig {
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ))
    }

    fn cuckoo_config() -> FilterConfig {
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo))
    }

    #[test]
    fn no_false_negatives_across_shard_counts_and_families() {
        let mut gen = KeyGen::new(301);
        let keys = gen.distinct_keys(30_000);
        for config in [bloom_config(), cuckoo_config()] {
            for shard_count in [1usize, 2, 8, 32] {
                let store =
                    ShardedFilterStore::new(config, shard_count, keys.len() / shard_count, 20.0);
                store.insert_batch(&keys);
                assert_eq!(store.key_count(), keys.len());
                for &key in &keys {
                    assert!(
                        store.contains(key),
                        "false negative in {} with {shard_count} shards",
                        config.label()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_agrees_with_point_lookups() {
        let mut gen = KeyGen::new(302);
        let keys = gen.distinct_keys(20_000);
        let probes = gen.keys(50_000);
        let store = ShardedFilterStore::new(bloom_config(), 8, 4_000, 14.0);
        store.insert_batch(&keys);
        let mut sel = SelectionVector::new();
        store.contains_batch(&probes, &mut sel);
        let expected: Vec<u32> = probes
            .iter()
            .enumerate()
            .filter(|(_, &k)| store.contains(k))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.as_slice(), expected.as_slice());
    }

    #[test]
    fn batch_positions_are_ordered_and_in_range() {
        let mut gen = KeyGen::new(303);
        let keys = gen.distinct_keys(5_000);
        let probes = gen.keys(20_000);
        let store = ShardedFilterStore::new(cuckoo_config(), 4, 2_000, 20.0);
        store.insert_batch(&keys);
        let mut sel = SelectionVector::new();
        store.contains_batch(&probes, &mut sel);
        let positions = sel.as_slice();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        assert!(positions.iter().all(|&p| (p as usize) < probes.len()));
    }

    #[test]
    fn saturated_shards_rebuild_without_losing_keys() {
        // Size the store for far fewer keys than are inserted: every shard
        // must grow (Cuckoo shards may additionally rebuild on relocation
        // failure), and no key may be lost across those rebuilds.
        let mut gen = KeyGen::new(304);
        let keys = gen.distinct_keys(40_000);
        for config in [bloom_config(), cuckoo_config()] {
            let store = ShardedFilterStore::new(config, 4, 256, 16.0);
            for chunk in keys.chunks(1_000) {
                store.insert_batch(chunk);
            }
            let stats = store.stats();
            assert!(
                stats.total_rebuilds() >= 4,
                "{}: expected every shard to rebuild, stats: {stats:?}",
                config.label()
            );
            for &key in &keys {
                assert!(store.contains(key), "lost key in {}", config.label());
            }
        }
    }

    #[test]
    fn snapshots_are_stable_under_later_inserts() {
        let mut gen = KeyGen::new(305);
        let before = gen.distinct_keys(5_000);
        let after = gen.distinct_keys(5_000);
        let store = ShardedFilterStore::new(bloom_config(), 4, 4_000, 16.0);
        store.insert_batch(&before);
        let snapshot = store.snapshot();
        let bits_before = snapshot.size_bits();
        store.insert_batch(&after);
        // The frozen snapshot still answers for the first key set and did not
        // observe the second batch's growth.
        for &key in &before {
            assert!(snapshot.contains(key));
        }
        assert_eq!(snapshot.size_bits(), bits_before);
        // The live store sees both.
        for &key in before.iter().chain(&after) {
            assert!(store.contains(key));
        }
    }

    #[test]
    fn observed_fpr_tracks_the_model() {
        let mut gen = KeyGen::new(306);
        let keys = gen.distinct_keys(40_000);
        let store = ShardedFilterStore::new(bloom_config(), 8, 5_000, 12.0);
        store.insert_batch(&keys);
        let observed = store.observed_fpr(200_000, 17);
        let modeled = store.stats().weighted_modeled_fpr();
        assert!(
            pof_filter::stats::fpr_matches_model(observed, modeled, 0.5, 5e-4),
            "observed {observed}, modeled {modeled}"
        );
    }

    #[test]
    fn stats_expose_shard_occupancy() {
        let mut gen = KeyGen::new(307);
        let keys = gen.distinct_keys(16_000);
        let store = ShardedFilterStore::new(bloom_config(), 4, 8_000, 12.0);
        store.insert_batch(&keys);
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.total_keys(), keys.len() as u64);
        // The splitter hash should spread keys within ~3x of each other.
        let max = stats.shards.iter().map(|s| s.keys).max().unwrap();
        let min = stats.shards.iter().map(|s| s.keys).min().unwrap();
        assert!(
            max < 3 * min.max(1),
            "unbalanced shards: min {min}, max {max}"
        );
        for shard in &stats.shards {
            assert!(shard.size_bits > 0);
            assert!(shard.modeled_fpr > 0.0 && shard.modeled_fpr < 1.0);
            assert!(!shard.config_label.is_empty());
        }
    }

    #[test]
    fn store_implements_the_filter_trait() {
        let mut store = ShardedFilterStore::new(bloom_config(), 2, 1_000, 12.0);
        assert!(Filter::insert(&mut store, 42));
        assert!(Filter::contains(&store, 42));
        assert_eq!(Filter::kind(&store), FilterKind::Bloom);
        assert!(Filter::config_label(&store).starts_with("sharded(P=2,"));
        assert!(Filter::size_bits(&store) > 0);
        // Snapshots refuse writes.
        let mut snapshot = store.snapshot();
        assert!(!Filter::insert(&mut snapshot, 7));
    }

    #[test]
    fn duplicate_inserts_are_set_semantics_and_terminate() {
        // A Cuckoo filter is a bag bounded at 2·b copies per fingerprint, so
        // replaying unbounded duplicates could never fit at any capacity;
        // the store must treat re-inserts as no-ops instead of rebuilding
        // forever.
        for config in [bloom_config(), cuckoo_config()] {
            let store = ShardedFilterStore::new(config, 2, 64, 20.0);
            store.insert_batch(&vec![7u32; 100]);
            store.insert_batch(&[7, 8, 7, 9, 7]);
            assert!(store.contains(7) && store.contains(8) && store.contains(9));
            assert_eq!(store.key_count(), 3, "{}", config.label());
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let store = ShardedFilterStore::new(bloom_config(), 5, 100, 12.0);
        assert_eq!(store.shard_count(), 8);
        let store = ShardedFilterStore::new(bloom_config(), 0, 100, 12.0);
        assert_eq!(store.shard_count(), 1);
    }
}
