//! The sharded filter store and its frozen read snapshot.

use crate::maintainer::{Maintainer, RebuildMode};
use crate::options::StoreOptions;
use crate::persist::{PersistOptions, StorePersistence};
use crate::policy::RebuildPolicy;
use crate::readvise::{Readvisor, WorkloadObserver};
use crate::shard::{
    BloomDeleteMode, MaintainOutcome, MigrateOutcome, MigrationTarget, RebuildTicket, Shard,
    ShardSnapshot,
};
use crate::stats::{ShardStats, StoreStats};
use pof_core::{AnyFilter, FilterConfig, LevelSpec};
use pof_filter::probe::ProbePlan;
use pof_filter::stats::measured_fpr;
use pof_filter::{DeleteOutcome, Filter, FilterKind, SelectionVector};
use pof_persist::{PersistError, StoreMeta, WalOp};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Compile-time audit that the store (and therefore `AnyFilter`) can be
/// shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnyFilter>();
    assert_send_sync::<ShardedFilterStore>();
    assert_send_sync::<StoreSnapshot>();
};

/// Replay a recovered WAL tail into a freshly restored shard: consecutive
/// same-op runs batch together (the journal granularity is the original
/// batch, so runs are typically whole batches). Inserts of keys the
/// snapshot already holds and deletes of keys it never had are no-ops by
/// set semantics — replay is idempotent over the snapshot/WAL overlap a
/// generation fallback introduces. Shadow deletes were journaled as plain
/// deletes: replaying them physically is membership-equivalent, because the
/// key's reinsertion into the newer level is journaled (and replayed)
/// there.
fn replay_wal(shard: &Shard, ops: &[(WalOp, u32)]) {
    fn flush(shard: &Shard, op: Option<WalOp>, batch: &mut Vec<u32>) {
        match op {
            Some(WalOp::Insert) => {
                shard.insert_batch(batch);
            }
            Some(WalOp::Delete) => {
                shard.delete_batch(batch);
            }
            None => {}
        }
        batch.clear();
    }
    let mut batch: Vec<u32> = Vec::new();
    let mut current: Option<WalOp> = None;
    for &(op, key) in ops {
        if current != Some(op) {
            flush(shard, current, &mut batch);
            current = Some(op);
        }
        batch.push(key);
    }
    flush(shard, current, &mut batch);
}

/// A concurrent approximate-membership store: `P` filter shards, batch-first
/// lookups, snapshot-isolated reads, and a policy-driven shard lifecycle.
///
/// Routing: a key's shard is the top `log2(P)` bits of an avalanche mix of
/// the key ([`pof_hash::mix32`]) — deliberately a *different* hash family
/// than the multiplicative hashes the filters consume internally, so shard
/// routing does not correlate with intra-filter placement.
///
/// Readers ([`contains`](Self::contains) /
/// [`contains_batch`](Self::contains_batch)) never block on writers: they
/// probe the shard's last published snapshot. Writers
/// ([`insert_batch`](Self::insert_batch) /
/// [`delete_batch`](Self::delete_batch)) serialize per shard, mutate a
/// private write-side filter and publish a new snapshot per batch. A key is
/// therefore visible to readers once the `insert_batch` call that carried it
/// returns — and published snapshots never lose keys, which the concurrency
/// tests assert.
///
/// *When* a shard rebuilds its filter — inline doubling on saturation,
/// modeled-FPR drift, or deferred-until-[`maintain`](Self::maintain) — is
/// decided by the store's [`RebuildPolicy`] (see
/// [`StoreBuilder::rebuild_policy`](crate::StoreBuilder::rebuild_policy)).
/// *Where* it runs is the store's [`RebuildMode`]: inline under the shard
/// lock (default), or off-lock on a background maintainer that replays the
/// bounded write delta and swaps the replacement in atomically (see
/// [`StoreBuilder::rebuild_mode`](crate::StoreBuilder::rebuild_mode)).
///
/// With [`StoreOptions::readvise`] set, the store additionally observes its
/// own traffic and can *migrate* the filter family live: see
/// [`run_pending_readvise`](Self::run_pending_readvise).
#[derive(Debug)]
pub struct ShardedFilterStore {
    /// Shared with the maintainer's worker thread in background mode.
    shards: Arc<Vec<Shard>>,
    /// `log2` of the shard count.
    shard_bits: u32,
    /// The background rebuild executor; `None` in inline (synchronous) mode.
    maintainer: Option<Maintainer>,
    /// Decayed insert/delete/lookup counters feeding re-advising.
    observer: WorkloadObserver,
    /// The externally supplied half of the observed workload: `t_w`, σ, and
    /// the expectation terms lookups alone cannot reveal.
    workload_hint: Mutex<LevelSpec>,
    /// The online re-advising controller; `None` keeps the family fixed.
    readvisor: Option<Mutex<Readvisor>>,
    /// WAL journaling + checkpoint engine; `None` for a memory-only store.
    persistence: Option<Arc<StorePersistence>>,
}

/// Reusable scratch buffers for the batched read path.
///
/// [`StoreSnapshot::contains_batch_with`] routes a batch to its shards with a
/// counting sort through these buffers; holding one `ProbeScratch` (plus one
/// [`SelectionVector`]) per reader thread makes steady-state batched lookups
/// allocation-free, which the store's allocation-counting test asserts.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    cursors: Vec<usize>,
    starts: Vec<usize>,
    routed_keys: Vec<u32>,
    routed_positions: Vec<u32>,
    qualifies: Vec<bool>,
    shard_sel: SelectionVector,
    /// Scratch lanes for the staged (hash → prefetch → probe) kernels, so
    /// shard slices large enough to go staged stay allocation-free too.
    plan: ProbePlan,
}

impl ProbeScratch {
    /// Create an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ShardedFilterStore {
    /// Create a store with `shard_count` shards (rounded up to a power of
    /// two), each sized for `capacity_per_shard` keys at `bits_per_key`,
    /// using the default [`SaturationDoubling`](crate::SaturationDoubling) lifecycle policy.
    ///
    /// Most callers should go through [`StoreBuilder`](crate::StoreBuilder).
    #[must_use]
    pub fn new(
        config: FilterConfig,
        shard_count: usize,
        capacity_per_shard: usize,
        bits_per_key: f64,
    ) -> Self {
        Self::from_options(StoreOptions {
            config,
            shard_count,
            capacity_per_shard,
            bits_per_key,
            ..StoreOptions::default()
        })
    }

    /// Create a store from a consolidated [`StoreOptions`] — the primary
    /// constructor. [`StoreOptions::default`] matches [`Self::new`]'s
    /// defaults; override the fields that differ.
    ///
    /// On the lifecycle side, [`RebuildMode::Background`] spawns one
    /// maintainer thread owned by the store (joined on drop, after finishing
    /// any queued jobs) and [`RebuildMode::Queued`] queues jobs for
    /// [`run_pending_rebuilds`](Self::run_pending_rebuilds);
    /// [`BloomDeleteMode::Counting`] gives Bloom shards in-place deletes
    /// through a per-shard counting sidecar; a `Some` `readvise` enables
    /// online re-advising (see
    /// [`run_pending_readvise`](Self::run_pending_readvise)). Most callers
    /// should go through [`StoreBuilder`](crate::StoreBuilder).
    #[must_use]
    pub fn from_options(options: StoreOptions) -> Self {
        let StoreOptions {
            config,
            shard_count,
            capacity_per_shard,
            bits_per_key,
            lifecycle,
            delete_mode,
            readvise,
        } = options;
        let shard_count = shard_count.max(1).next_power_of_two();
        let background = lifecycle.rebuild_mode != RebuildMode::Inline;
        let shards: Arc<Vec<Shard>> = Arc::new(
            (0..shard_count)
                .map(|_| {
                    Shard::new(
                        config,
                        capacity_per_shard,
                        bits_per_key,
                        Arc::clone(&lifecycle.policy),
                        background,
                        delete_mode,
                    )
                })
                .collect(),
        );
        let maintainer = Maintainer::new(lifecycle.rebuild_mode, Arc::clone(&shards));
        let workload_hint = readvise.as_ref().map(|r| r.workload).unwrap_or_default();
        Self {
            shards,
            shard_bits: shard_count.trailing_zeros(),
            maintainer,
            observer: WorkloadObserver::default(),
            workload_hint: Mutex::new(workload_hint),
            readvisor: readvise.map(|r| Mutex::new(Readvisor::new(&r))),
            persistence: None,
        }
    }

    /// Open (or create) a durably persisted store at `dir` with the default
    /// durability knobs ([`PersistOptions::durable`]): every acknowledged
    /// batch is crash-safe the moment the call returns.
    ///
    /// An empty (or nonexistent) directory creates a fresh store shaped by
    /// `options` and starts journaling. A directory that already holds a
    /// store **recovers** it: each shard maps the newest snapshot whose
    /// header and payload CRCs validate (falling back one generation past a
    /// torn one), replays its WAL tail, and continues journaling where the
    /// crashed process stopped. The shard count is part of the durable
    /// layout (routing depends on it), so on recovery the persisted count
    /// wins over `options.shard_count`; policy, rebuild mode and re-advising
    /// remain runtime choices honored from `options`.
    ///
    /// # Errors
    ///
    /// Filesystem failures, and [`PersistError::Corrupt`] when the directory
    /// holds something that is not a flat store (e.g. a
    /// [`TieredStore`](crate::TieredStore) root) or no uncorrupted state
    /// survives.
    pub fn open(dir: impl AsRef<Path>, options: StoreOptions) -> Result<Self, PersistError> {
        Self::open_with(dir, options, PersistOptions::durable())
    }

    /// [`Self::open`] with explicit [`PersistOptions`] (fsync policy, WAL
    /// rotation threshold, checkpoint-on-maintain, fault injection).
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: StoreOptions,
        persist: PersistOptions,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        match pof_persist::read_meta(dir)? {
            None => {
                let mut store = Self::from_options(options);
                pof_persist::write_meta(
                    dir,
                    StoreMeta {
                        kind: StoreMeta::KIND_FLAT,
                        count: store.shards.len() as u32,
                    },
                )?;
                let persistence = StorePersistence::create(dir, store.shards.len(), persist)?;
                store.persistence = Some(Arc::new(persistence));
                Ok(store)
            }
            Some(meta) if meta.kind == StoreMeta::KIND_FLAT => {
                Self::recover(dir, meta.count as usize, options, persist)
            }
            Some(_) => Err(PersistError::Corrupt {
                path: dir.join("STORE.meta"),
                detail: "directory holds a tiered store; use TieredStore::open".to_owned(),
            }),
        }
    }

    /// Recovery half of [`Self::open_with`]: rebuild every shard from its
    /// newest valid snapshot plus WAL tail, then reattach the journals.
    fn recover(
        dir: &Path,
        shard_count: usize,
        options: StoreOptions,
        persist: PersistOptions,
    ) -> Result<Self, PersistError> {
        if shard_count == 0 || !shard_count.is_power_of_two() {
            return Err(PersistError::Corrupt {
                path: dir.join("STORE.meta"),
                detail: format!("persisted shard count {shard_count} is not a power of two"),
            });
        }
        let StoreOptions {
            config,
            shard_count: _,
            capacity_per_shard,
            bits_per_key,
            lifecycle,
            delete_mode,
            readvise,
        } = options;
        let background = lifecycle.rebuild_mode != RebuildMode::Inline;
        let files = pof_persist::scan_dir(dir, shard_count)?;
        let mut shards = Vec::with_capacity(shard_count);
        let mut segments = Vec::with_capacity(shard_count);
        for (index, shard_files) in files.iter().enumerate() {
            let recovered = pof_persist::recover_shard(dir, index, shard_files)?;
            // Shards recover in synchronous mode so the WAL replay below can
            // never park a background ticket nobody drains; the store's real
            // mode is restored once the shard is caught up.
            let shard = match &recovered.snapshot {
                Some(snapshot) => {
                    let path = dir.join(pof_persist::snapshot_file(
                        index,
                        recovered.snapshot_generation,
                    ));
                    let corrupt = |detail: String| PersistError::Corrupt {
                        path: path.clone(),
                        detail,
                    };
                    let mut cursor = pof_persist::codec::Cursor::new(snapshot.payload());
                    let shard =
                        Shard::decode_state(&mut cursor, Arc::clone(&lifecycle.policy), false)
                            .map_err(|err| corrupt(err.to_string()))?;
                    cursor.finish().map_err(|err| corrupt(err.to_string()))?;
                    shard
                }
                None => Shard::new(
                    config,
                    capacity_per_shard,
                    bits_per_key,
                    Arc::clone(&lifecycle.policy),
                    false,
                    delete_mode,
                ),
            };
            replay_wal(&shard, &recovered.replay);
            shard.set_background(background);
            segments.push((recovered.wal_generation, recovered.wal_valid_len));
            shards.push(shard);
        }
        let shards = Arc::new(shards);
        let maintainer = Maintainer::new(lifecycle.rebuild_mode, Arc::clone(&shards));
        let persistence = StorePersistence::reattach(dir, &segments, persist)?;
        let workload_hint = readvise.as_ref().map(|r| r.workload).unwrap_or_default();
        Ok(Self {
            shards,
            shard_bits: shard_count.trailing_zeros(),
            maintainer,
            observer: WorkloadObserver::default(),
            workload_hint: Mutex::new(workload_hint),
            readvisor: readvise.map(|r| Mutex::new(Readvisor::new(&r))),
            persistence: Some(Arc::new(persistence)),
        })
    }

    /// Checkpoint every shard now: capture its state, rotate its WAL segment
    /// to a fresh generation, and write the snapshot atomically. After this
    /// returns, reopening the directory recovers by mapping the snapshots
    /// instead of replaying the journal. A no-op `Ok(())` on a memory-only
    /// store.
    ///
    /// # Errors
    ///
    /// The first shard's filesystem or injected-fault failure; shards before
    /// it are checkpointed, shards after it keep their previous generation
    /// (both recover correctly — their WAL still covers them).
    pub fn persist_checkpoint(&self) -> Result<(), PersistError> {
        let Some(persistence) = &self.persistence else {
            return Ok(());
        };
        for (index, shard) in self.shards.iter().enumerate() {
            persistence.checkpoint_shard(index, shard)?;
        }
        Ok(())
    }

    /// Rotate this shard's journal if the automatic policy asks for it.
    /// Best-effort: an I/O failure flips the persistence layer dead and the
    /// in-memory store keeps serving.
    fn maybe_rotate(&self, index: usize, shard: &Shard) {
        if let Some(persistence) = &self.persistence {
            if persistence.wants_rotation(index) {
                let _ = persistence.checkpoint_shard(index, shard);
            }
        }
    }

    /// Create a store whose shards follow an explicit [`RebuildPolicy`],
    /// with rebuilds inline (synchronous mode).
    #[deprecated(
        since = "0.1.0",
        note = "use ShardedFilterStore::from_options(StoreOptions { .. }) or StoreBuilder"
    )]
    #[must_use]
    pub fn with_policy(
        config: FilterConfig,
        shard_count: usize,
        capacity_per_shard: usize,
        bits_per_key: f64,
        policy: Arc<dyn RebuildPolicy>,
    ) -> Self {
        Self::from_options(StoreOptions {
            config,
            shard_count,
            capacity_per_shard,
            bits_per_key,
            lifecycle: crate::options::LifecycleOptions {
                policy,
                rebuild_mode: RebuildMode::Inline,
            },
            ..StoreOptions::default()
        })
    }

    /// Create a store with an explicit policy, rebuild execution mode *and*
    /// Bloom delete mode, from positional arguments.
    #[deprecated(
        since = "0.1.0",
        note = "use ShardedFilterStore::from_options(StoreOptions { .. }) or StoreBuilder"
    )]
    #[must_use]
    pub fn with_options(
        config: FilterConfig,
        shard_count: usize,
        capacity_per_shard: usize,
        bits_per_key: f64,
        policy: Arc<dyn RebuildPolicy>,
        mode: RebuildMode,
        delete_mode: BloomDeleteMode,
    ) -> Self {
        Self::from_options(StoreOptions {
            config,
            shard_count,
            capacity_per_shard,
            bits_per_key,
            lifecycle: crate::options::LifecycleOptions {
                policy,
                rebuild_mode: mode,
            },
            delete_mode,
            ..StoreOptions::default()
        })
    }

    /// Hand a shard's rebuild ticket to the maintainer. Tickets are only
    /// ever produced by shards constructed in a background mode, so the
    /// maintainer must exist.
    fn enqueue_rebuild(&self, shard: usize, ticket: Option<RebuildTicket>) {
        if let Some(ticket) = ticket {
            self.maintainer
                .as_ref()
                .expect("rebuild tickets are only issued in background modes")
                .enqueue(shard, ticket);
        }
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index of a key.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: u32) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (pof_hash::mix32(key) >> (32 - self.shard_bits)) as usize
        }
    }

    /// Insert a batch of keys, fanning out to the owning shards.
    ///
    /// Each shard's keys are applied under that shard's write lock and become
    /// visible to readers atomically (per shard) when its fresh snapshot is
    /// published at the end of the batch; a shard whose slice of the batch
    /// was entirely duplicates skips the publish (nothing observable
    /// changed). Inserts never fail: a shard whose filter cannot accommodate
    /// a key rebuilds or defers per its [`RebuildPolicy`]. The store has
    /// *set* semantics — re-inserting a key already present is a no-op.
    pub fn insert_batch(&self, keys: &[u32]) {
        self.observer.note_inserts(keys.len());
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &key in keys {
            routed[self.shard_of(key)].push(key);
        }
        for (index, (shard, keys)) in self.shards.iter().zip(&routed).enumerate() {
            let ticket = match &self.persistence {
                Some(persistence) => persistence
                    .journal_apply(index, WalOp::Insert, keys, || shard.insert_batch(keys))
                    .flatten(),
                None => shard.insert_batch(keys),
            };
            self.enqueue_rebuild(index, ticket);
            self.maybe_rotate(index, shard);
        }
    }

    /// Delete a batch of keys, fanning out to the owning shards. Returns how
    /// many keys were actually removed (keys not present are no-ops).
    ///
    /// Cuckoo shards delete in place and republish immediately, and Bloom
    /// shards built with [`BloomDeleteMode::Counting`]
    /// ([`StoreBuilder::bloom_deletes`](crate::StoreBuilder::bloom_deletes))
    /// do the same through their counting sidecars. Bloom shards in the
    /// default tombstone mode *tombstone* — the key leaves the bookkeeping
    /// (and [`Self::key_count`]) at once, while its filter bits linger as
    /// false positives until the shard's [`RebuildPolicy`] next rebuilds,
    /// e.g. on the next saturation rebuild, an FPR-drift re-fit, or an
    /// explicit [`Self::maintain`] call.
    pub fn delete_batch(&self, keys: &[u32]) -> usize {
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &key in keys {
            routed[self.shard_of(key)].push(key);
        }
        let mut removed = 0;
        for (index, (shard, keys)) in self.shards.iter().zip(&routed).enumerate() {
            let (shard_removed, ticket) = match &self.persistence {
                Some(persistence) => persistence
                    .journal_apply(index, WalOp::Delete, keys, || shard.delete_batch(keys))
                    .unwrap_or((0, None)),
                None => shard.delete_batch(keys),
            };
            removed += shard_removed;
            self.enqueue_rebuild(index, ticket);
            self.maybe_rotate(index, shard);
        }
        // Only *successful* deletes feed the observer: a tiered store
        // shadow-deletes every freshly inserted key from its older levels,
        // and counting those misses would make a pure-insert workload look
        // delete-heavy to the readvisor.
        self.observer.note_deletes(removed);
        removed
    }

    /// Delete a batch from the bookkeeping only, leaving every published
    /// filter bit-identical — the no-false-negative delete the tiered store
    /// uses when a key moves up a level (see
    /// [`Shard::shadow_delete_batch`]). Journals like a physical delete: on
    /// replay the key is simply gone, which is the same membership outcome.
    pub(crate) fn shadow_delete_batch(&self, keys: &[u32]) -> usize {
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &key in keys {
            routed[self.shard_of(key)].push(key);
        }
        let mut removed = 0;
        for (index, (shard, keys)) in self.shards.iter().zip(&routed).enumerate() {
            removed += match &self.persistence {
                Some(persistence) => persistence
                    .journal_apply(index, WalOp::Delete, keys, || {
                        shard.shadow_delete_batch(keys)
                    })
                    .unwrap_or(0),
                None => shard.shadow_delete_batch(keys),
            };
        }
        self.observer.note_deletes(removed);
        removed
    }

    /// Run one maintenance round over every shard: fold deferred overflow
    /// buffers, purge tombstones, re-fit capacities — whatever the active
    /// [`RebuildPolicy`] decides is due. Returns the number of shards that
    /// rebuilt.
    ///
    /// In a background mode this is also the store's **deterministic
    /// barrier**: whatever the policy decided (including nothing at all —
    /// e.g. a clean [`SaturationDoubling`](crate::SaturationDoubling) store), `maintain()` drains every
    /// in-flight and newly requested background rebuild before returning, so
    /// callers (and tests) observe a fully swapped-in store afterwards.
    ///
    /// Readers are unaffected while this runs (they keep probing the last
    /// published snapshots); call it from an ingest pause, a timer, or after
    /// a delete wave.
    pub fn maintain(&self) -> usize {
        let mut rebuilt = 0;
        for (index, shard) in self.shards.iter().enumerate() {
            match shard.maintain() {
                MaintainOutcome::Idle => {}
                MaintainOutcome::Rebuilt => rebuilt += 1,
                MaintainOutcome::Requested(ticket) => {
                    self.enqueue_rebuild(index, Some(ticket));
                    rebuilt += 1;
                }
            }
        }
        // Re-advising rides the maintenance round (a no-op unless the store
        // was built with readvise options): migrations requested here are
        // background jobs like any other, so the drain below is their
        // barrier too.
        rebuilt += self.run_pending_readvise();
        if let Some(maintainer) = &self.maintainer {
            maintainer.drain();
        }
        // With `checkpoint_on_maintain` set, the maintenance round doubles
        // as the durability barrier: the post-drain state (folds, purges and
        // swaps included) is what lands in the snapshots, so the journals
        // rotate at their emptiest.
        if let Some(persistence) = &self.persistence {
            if persistence.checkpoint_on_maintain() {
                for (index, shard) in self.shards.iter().enumerate() {
                    let _ = persistence.checkpoint_shard(index, shard);
                }
            }
        }
        rebuilt
    }

    /// In [`RebuildMode::Queued`] mode, advance up to `limit` queued rebuild
    /// phases on the calling thread. Each rebuild is **two** phases — the
    /// brief key-set snapshot (which opens the shard's delta-replay window),
    /// then the off-lock build, delta replay and atomic swap — exactly what
    /// the maintainer thread does in one go, split so a deterministic
    /// harness can interleave writes in between. Returns how many phases
    /// ran; always `0` in the other modes ([`RebuildMode::Background`]'s
    /// worker owns execution, and inline stores never queue).
    pub fn run_pending_rebuilds(&self, limit: usize) -> usize {
        self.maintainer
            .as_ref()
            .map_or(0, |maintainer| maintainer.run_pending(limit))
    }

    /// Number of background rebuild jobs enqueued but not yet completed.
    /// Always `0` for inline (synchronous) stores.
    #[must_use]
    pub fn pending_rebuilds(&self) -> usize {
        self.maintainer
            .as_ref()
            .map_or(0, |maintainer| maintainer.pending())
    }

    /// Update the externally supplied half of the observed workload: the
    /// work saved per filtered probe (`t_w`), the true hit rate σ, and the
    /// expectation terms the store cannot measure from its own counters.
    /// Deployments call this as their miss cost drifts (e.g. the backing
    /// level moved from cache to disk); the next re-advising evaluation sees
    /// the new values.
    pub fn set_workload_hint(&self, hint: LevelSpec) {
        *self.workload_hint.lock().expect("workload hint poisoned") = hint;
    }

    /// The workload as the store currently sees it: live key count and the
    /// decayed observed delete fraction of the write traffic, with the
    /// forward-looking economic terms — `t_w`, σ and the expected lifetime
    /// probe volume per key — taken from the workload hint
    /// ([`Self::set_workload_hint`]). Traffic can reveal *churn*, but not
    /// what a miss costs downstream nor how many probes a filter will serve
    /// over its remaining life (the decayed window structurally
    /// underestimates it, which would bar the store from ever amortizing an
    /// immutable filter's build cost). This is exactly the [`LevelSpec`]
    /// each re-advising evaluation feeds the advisor.
    #[must_use]
    pub fn observed_level_spec(&self) -> LevelSpec {
        let (inserts, deletes, _lookups) = self.observer.totals();
        let hint = *self.workload_hint.lock().expect("workload hint poisoned");
        let writes = (inserts + deletes) as f64;
        LevelSpec {
            expected_keys: (self.key_count() as u64).max(1),
            work_saved_cycles: hint.work_saved_cycles,
            sigma: hint.sigma,
            delete_rate: deletes as f64 / writes.max(1.0),
            expected_probes_per_key: hint.expected_probes_per_key,
        }
    }

    /// Run one online re-advising step, mirroring how
    /// [`run_pending_rebuilds`](Self::run_pending_rebuilds) makes queued
    /// rebuilds deterministic. A no-op (returning `0`) unless the store was
    /// built with [`StoreOptions::readvise`].
    ///
    /// With no migration in flight and enough observed traffic, this
    /// re-runs the advisor against [`Self::observed_level_spec`] (decaying
    /// the counters) and feeds the verdict through the hysteresis gates; a
    /// confirmed family or delete-mode flip becomes the pending migration
    /// target. With a target pending, every shard is driven toward it: a
    /// migration is just a rebuild with a different target `FilterConfig`,
    /// so it goes through the same snapshot → off-lock build → delta replay
    /// → swap machinery as any other rebuild (inline stores migrate on the
    /// spot; background/queued stores enqueue the job). Returns the number
    /// of shards that advanced (migrated or had a migration requested); the
    /// target stays pending until every shard reports it is already there,
    /// so shards that were busy get picked up by the next call.
    ///
    /// [`maintain`](Self::maintain) calls this automatically, so stores on a
    /// maintenance cadence re-advise for free.
    pub fn run_pending_readvise(&self) -> usize {
        let Some(readvisor) = &self.readvisor else {
            return 0;
        };
        let mut readvisor = readvisor.lock().expect("readvisor lock poisoned");
        if readvisor.pending_target.is_none() {
            let (inserts, deletes, lookups) = self.observer.totals();
            if inserts + deletes + lookups < readvisor.min_ops() {
                return 0;
            }
            let observed = self.observed_level_spec();
            self.observer.decay();
            let incumbent = self.shards[0].config();
            let counting = self.shards[0].delete_mode() == BloomDeleteMode::Counting;
            readvisor.pending_target = readvisor.evaluate(&observed, &incumbent, counting);
        }
        let Some(target) = readvisor.pending_target else {
            return 0;
        };
        let (advanced, done) = self.drive_migration(target);
        if done {
            readvisor.pending_target = None;
        }
        advanced
    }

    /// Migrate every shard to a new filter family/configuration, bypassing
    /// the advisor and hysteresis — the manual counterpart of
    /// [`run_pending_readvise`](Self::run_pending_readvise) for callers that
    /// know where they are going (tests, operators forcing a layout).
    ///
    /// Inline stores rebuild and swap on the spot; background/queued stores
    /// enqueue migration jobs (drive them with
    /// [`run_pending_rebuilds`](Self::run_pending_rebuilds) or
    /// [`maintain`](Self::maintain)). Shards already at the target, or busy
    /// with an in-flight rebuild, are skipped. Returns the number of shards
    /// that migrated or had a migration requested.
    pub fn migrate_to(
        &self,
        config: FilterConfig,
        bits_per_key: f64,
        delete_mode: BloomDeleteMode,
    ) -> usize {
        let target = MigrationTarget {
            config,
            bits_per_key,
            counting: delete_mode == BloomDeleteMode::Counting,
        };
        self.drive_migration(target).0
    }

    /// Drive every shard toward `target`. Returns `(advanced, done)`:
    /// `advanced` counts shards that migrated or accepted a migration
    /// request this call; `done` is `true` only when every shard is already
    /// at the target (nothing in flight, nothing refused as busy).
    fn drive_migration(&self, target: MigrationTarget) -> (usize, bool) {
        let mut advanced = 0;
        let mut done = true;
        for (index, shard) in self.shards.iter().enumerate() {
            match shard.migrate(target) {
                MigrateOutcome::Unchanged => {}
                MigrateOutcome::Migrated => advanced += 1,
                MigrateOutcome::Requested(ticket) => {
                    self.enqueue_rebuild(index, Some(ticket));
                    advanced += 1;
                    done = false;
                }
                MigrateOutcome::Busy => done = false,
            }
        }
        (advanced, done)
    }

    /// How the store's Bloom shards currently honor deletes. Unlike the
    /// construction-time option, this tracks live migrations (a counting
    /// level that migrated to fuse reports [`BloomDeleteMode::Tombstone`]).
    #[must_use]
    pub fn delete_mode(&self) -> BloomDeleteMode {
        self.shards[0].delete_mode()
    }

    /// The bits-per-key budget the shards currently build from (tracks live
    /// migrations).
    #[must_use]
    pub fn bits_per_key(&self) -> f64 {
        self.shards[0].bits_per_key()
    }

    /// Point lookup against the current snapshots.
    #[must_use]
    pub fn contains(&self, key: u32) -> bool {
        self.observer.note_lookups(1);
        self.shards[self.shard_of(key)].load().contains(key)
    }

    /// Batched lookup: for every key in `keys` that tests positive, append
    /// its batch position to `sel`, in ascending order (`sel` is not cleared,
    /// matching [`Filter::contains_batch`]).
    ///
    /// The batch is routed per shard, each shard slice is probed through the
    /// shard filter's vectorised batch kernel against one consistent
    /// snapshot, and the per-shard position lists are merged back to batch
    /// order. Steady-state readers that want the allocation-free path should
    /// hold a [`StoreSnapshot`] and a [`ProbeScratch`] and call
    /// [`StoreSnapshot::contains_batch_with`].
    pub fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        self.observer.note_lookups(keys.len());
        self.snapshot().contains_batch(keys, sel)
    }

    /// Credit `count` lookups to the workload observer on behalf of a caller
    /// probing this store's snapshots directly (the tiered cascade probes
    /// level snapshots without going through [`Self::contains_batch`]).
    /// Readers holding a long-lived [`StoreSnapshot`] are otherwise
    /// invisible to re-advising.
    pub(crate) fn note_probed(&self, count: usize) {
        self.observer.note_lookups(count);
    }

    /// Freeze the current state of every shard into an immutable
    /// [`StoreSnapshot`].
    ///
    /// The snapshot observes each shard at its latest published state and is
    /// unaffected by later inserts — the right granularity for probing one
    /// logical scan against a stable view.
    #[must_use]
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            shards: self.shards.iter().map(Shard::load).collect(),
            shard_bits: self.shard_bits,
        }
    }

    /// Total number of live (inserted and not deleted) keys across all
    /// shards. Tombstoned keys are *not* counted — a deleted key leaves the
    /// count immediately even while its bits linger in a Bloom shard.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(Shard::key_count).sum()
    }

    /// Copy of the store's authoritative live key set, shard by shard in
    /// per-shard insertion order.
    ///
    /// This reads the exact write-side bookkeeping, not the filters: deleted
    /// keys are absent even while their bits linger as tombstones, and keys
    /// parked in overflow buffers are included. It is how a
    /// [`TieredStore`](crate::TieredStore) compaction merges one level's
    /// membership into the next, and how [`Self::observed_fpr`] knows the
    /// ground truth.
    #[must_use]
    pub fn live_keys(&self) -> Vec<u32> {
        self.shards.iter().flat_map(|shard| shard.keys()).collect()
    }

    /// Total published size in bits across all shards (filter bits plus any
    /// overflow-buffer keys).
    #[must_use]
    pub fn size_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.load().size_bits()).sum()
    }

    /// Per-shard and aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                // One consistent view per shard: pairing a snapshot with
                // counters read under separate locks could mix a pre-rebuild
                // filter size with a post-rebuild key count.
                let view = shard.consistent_view();
                let keys = view.keys as u64;
                let size_bits = view.snapshot.size_bits();
                ShardStats {
                    shard: index,
                    keys,
                    size_bits,
                    bits_per_key: if keys == 0 {
                        0.0
                    } else {
                        size_bits as f64 / keys as f64
                    },
                    modeled_fpr: view.snapshot.filter.modeled_fpr(),
                    rebuilds: view.rebuilds,
                    rebuilds_background: view.rebuilds_background,
                    migrations: view.migrations,
                    rebuild_wait_ns: view.rebuild_wait_ns,
                    max_writer_stall_ns: view.max_writer_stall_ns,
                    writer_rebuild_stall_ns: view.writer_rebuild_stall_ns,
                    rebuild_pending: view.rebuild_pending,
                    tombstones: view.tombstones as u64,
                    overflow: view.overflow as u64,
                    bookkeeping_bytes: view.bookkeeping_bytes as u64,
                    counting_sidecar_bytes: view.counting_sidecar_bytes as u64,
                    policy: view.policy,
                    config_label: view.snapshot.filter.config_label(),
                    kernel: view.snapshot.filter.kernel_name(),
                    fingerprint_bits: view.snapshot.filter.config().fingerprint_bits(),
                    construction_retries: view.snapshot.filter.construction_retries(),
                }
            })
            .collect();
        StoreStats::aggregate(shards)
    }

    /// Measure the store's empirical false-positive rate: probe `probe_count`
    /// keys guaranteed to be non-members (relative to the full live key set)
    /// through the batch path and report the qualifying fraction.
    ///
    /// Delegates to [`pof_filter::stats::measured_fpr`] over a frozen
    /// [`StoreSnapshot`], so the measurement also exercises the per-shard
    /// SIMD kernels. Note that recently deleted keys on Bloom shards count as
    /// false positives until their tombstones are purged — that is the honest
    /// read-path behavior.
    #[must_use]
    pub fn observed_fpr(&self, probe_count: usize, seed: u64) -> f64 {
        // Freeze the probed view *before* gathering members: the member list
        // is then a superset of every key the snapshot can legitimately
        // report, so keys inserted concurrently between the two steps can
        // never be misclassified as false positives.
        let snapshot = self.snapshot();
        let members = self.live_keys();
        measured_fpr(&snapshot, &members, probe_count, seed).fpr
    }

    /// The filter configuration the shards build from.
    #[must_use]
    pub fn config(&self) -> FilterConfig {
        self.shards[0].config()
    }
}

impl Filter for ShardedFilterStore {
    /// Insert via the unified trait. Never fails (shards rebuild or defer on
    /// saturation), so this always returns `true`.
    ///
    /// **Cost note:** every fresh insert publishes a shard snapshot, which
    /// clones the shard's whole filter — per-key point inserts through this
    /// trait are O(filter size) each. Loops should go through
    /// [`ShardedFilterStore::insert_batch`], which publishes once per batch.
    fn insert(&mut self, key: u32) -> bool {
        self.insert_batch(std::slice::from_ref(&key));
        true
    }

    fn contains(&self, key: u32) -> bool {
        ShardedFilterStore::contains(self, key)
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        ShardedFilterStore::contains_batch(self, keys, sel);
    }

    /// The store supports deletion for *every* shard family: Cuckoo shards
    /// remove the signature in place, Bloom shards tombstone and leave the
    /// purge to the rebuild policy. See [`ShardedFilterStore::delete_batch`].
    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        if self.delete_batch(std::slice::from_ref(&key)) == 1 {
            DeleteOutcome::Removed
        } else {
            DeleteOutcome::NotFound
        }
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn size_bits(&self) -> u64 {
        ShardedFilterStore::size_bits(self)
    }

    fn kind(&self) -> FilterKind {
        self.config().kind()
    }

    fn config_label(&self) -> String {
        format!(
            "sharded(P={},{})",
            self.shard_count(),
            self.config().label()
        )
    }
}

/// An immutable, consistent view of every shard at one point in time.
///
/// Snapshots are cheap (`P` atomic reference bumps), can outlive the store,
/// and implement [`Filter`]'s read side, so anything that probes a filter —
/// the LSM substrate, the measurement harness, a join pipeline — can probe a
/// whole sharded store through the same interface. Each per-shard view
/// includes the shard's overflow side buffer (keys a deferring policy has
/// parked outside the filter), so deferred keys stay visible. The write side
/// is inert: [`Filter::insert`] on a snapshot reports failure rather than
/// mutating, and [`Filter::try_delete`] reports `Unsupported`.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    shards: Vec<Arc<ShardSnapshot>>,
    shard_bits: u32,
}

impl StoreSnapshot {
    /// Shard index of a key (same routing as the owning store).
    #[inline]
    #[must_use]
    pub fn shard_of(&self, key: u32) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (pof_hash::mix32(key) >> (32 - self.shard_bits)) as usize
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The filter snapshot backing one shard.
    ///
    /// Note: a shard under a deferring policy may also hold keys in its
    /// overflow side buffer, which this accessor does not expose — probe
    /// through [`Filter::contains`] / [`Filter::contains_batch`] for the
    /// complete membership answer.
    #[must_use]
    pub fn shard_filter(&self, shard: usize) -> &AnyFilter {
        &self.shards[shard].filter
    }

    /// Number of keys parked in one shard's overflow side buffer.
    #[must_use]
    pub fn shard_overflow_len(&self, shard: usize) -> usize {
        self.shards[shard].overflow.len()
    }

    /// Batched lookup through caller-owned scratch buffers: identical
    /// results to [`Filter::contains_batch`], but the routing buffers (and
    /// the caller's `sel`) are reused across calls, so steady-state batched
    /// lookups perform **zero heap allocations** once the buffers are warm.
    // pof-analyze: no-alloc
    pub fn contains_batch_with(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        scratch: &mut ProbeScratch,
    ) {
        let shard_count = self.shards.len();
        if shard_count == 1 && self.shards[0].overflow.is_empty() {
            // Single shard, no side buffer: no routing, probe the batch
            // kernel directly (staged when the batch and filter warrant it).
            self.shards[0]
                .filter
                .contains_batch_planned(keys, sel, &mut scratch.plan);
            return;
        }
        // Route the batch with a counting sort into flat reusable buffers:
        // no per-shard vectors, no allocations once the scratch is warm.
        scratch.cursors.clear();
        scratch.cursors.resize(shard_count + 1, 0);
        for &key in keys {
            scratch.cursors[self.shard_of(key) + 1] += 1;
        }
        for shard in 0..shard_count {
            scratch.cursors[shard + 1] += scratch.cursors[shard];
        }
        scratch.starts.clear();
        scratch.starts.extend_from_slice(&scratch.cursors);
        // The scatter below writes every slot in `[0, keys.len())` exactly
        // once (the cursors partition the range), so the routed buffers only
        // ever need to *grow* — no clear-and-rezero pass.
        if scratch.routed_keys.len() < keys.len() {
            scratch.routed_keys.resize(keys.len(), 0);
            scratch.routed_positions.resize(keys.len(), 0);
        }
        for (i, &key) in keys.iter().enumerate() {
            let slot = &mut scratch.cursors[self.shard_of(key)];
            scratch.routed_keys[*slot] = key;
            scratch.routed_positions[*slot] = i as u32;
            *slot += 1;
        }
        // Probe each shard's contiguous slice through its batch kernel
        // (staged when the slice and filter warrant it), marking the
        // qualifying batch positions. Before scanning a shard, stream the
        // next populated shard's filter toward the cache so its leading
        // lines are warm by the time its slice is probed.
        scratch.qualifies.clear();
        scratch.qualifies.resize(keys.len(), false);
        for (shard, snapshot) in self.shards.iter().enumerate() {
            let (start, end) = (scratch.starts[shard], scratch.starts[shard + 1]);
            if start == end {
                continue;
            }
            if let Some(next) =
                (shard + 1..shard_count).find(|&s| scratch.starts[s] < scratch.starts[s + 1])
            {
                self.shards[next].filter.prefetch_storage();
            }
            scratch.shard_sel.clear();
            snapshot.filter.contains_batch_planned(
                &scratch.routed_keys[start..end],
                &mut scratch.shard_sel,
                &mut scratch.plan,
            );
            for &local in scratch.shard_sel.as_slice() {
                scratch.qualifies[scratch.routed_positions[start + local as usize] as usize] = true;
            }
        }
        // Second pass for overflow side buffers (keys a deferring policy has
        // parked outside the filter): positions the filters already marked
        // qualifying skip the exact binary search.
        if self.shards.iter().any(|s| !s.overflow.is_empty()) {
            for (shard, snapshot) in self.shards.iter().enumerate() {
                if snapshot.overflow.is_empty() {
                    continue;
                }
                for i in scratch.starts[shard]..scratch.starts[shard + 1] {
                    let position = scratch.routed_positions[i] as usize;
                    if !scratch.qualifies[position]
                        && snapshot
                            .overflow
                            .binary_search(&scratch.routed_keys[i])
                            .is_ok()
                    {
                        scratch.qualifies[position] = true;
                    }
                }
            }
        }
        // Emit in ascending batch order, per the SelectionVector contract.
        sel.reserve(keys.len());
        for (i, &hit) in scratch.qualifies.iter().enumerate() {
            sel.push_if(i as u32, hit);
        }
    }

    /// Prefetch the leading cache lines of every shard's filter storage. The
    /// tiered store calls this on the *next* level's snapshot while the
    /// current level is still being scanned, so the miss cascade lands on
    /// warm lines.
    #[inline]
    pub(crate) fn prefetch_storage(&self) {
        for shard in &self.shards {
            shard.filter.prefetch_storage();
        }
    }
}

impl Filter for StoreSnapshot {
    /// Snapshots are read-only; inserting reports failure (the documented
    /// "could not accommodate the key" outcome) and changes nothing.
    fn insert(&mut self, _key: u32) -> bool {
        false
    }

    fn contains(&self, key: u32) -> bool {
        self.shards[self.shard_of(key)].contains(key)
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        self.contains_batch_with(keys, sel, &mut ProbeScratch::new());
    }

    fn size_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.size_bits()).sum()
    }

    fn kind(&self) -> FilterKind {
        self.shards[0].filter.kind()
    }

    fn config_label(&self) -> String {
        format!(
            "sharded-snapshot(P={},{})",
            self.shards.len(),
            self.shards[0].filter.config_label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{LifecycleOptions, ReadviseOptions, StoreOptions};
    use crate::policy::{DeferredBatch, FprDrift, SaturationDoubling};
    use pof_bloom::{Addressing, BloomConfig};
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    use pof_filter::KeyGen;

    fn bloom_config() -> FilterConfig {
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ))
    }

    fn cuckoo_config() -> FilterConfig {
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo))
    }

    fn fuse_config() -> FilterConfig {
        FilterConfig::Fuse(pof_core::FuseConfig::fuse8())
    }

    #[test]
    fn no_false_negatives_across_shard_counts_and_families() {
        let mut gen = KeyGen::new(301);
        let keys = gen.distinct_keys(30_000);
        for config in [bloom_config(), cuckoo_config(), fuse_config()] {
            for shard_count in [1usize, 2, 8, 32] {
                let store =
                    ShardedFilterStore::new(config, shard_count, keys.len() / shard_count, 20.0);
                store.insert_batch(&keys);
                assert_eq!(store.key_count(), keys.len());
                for &key in &keys {
                    assert!(
                        store.contains(key),
                        "false negative in {} with {shard_count} shards",
                        config.label()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_agrees_with_point_lookups() {
        let mut gen = KeyGen::new(302);
        let keys = gen.distinct_keys(20_000);
        let probes = gen.keys(50_000);
        let store = ShardedFilterStore::new(bloom_config(), 8, 4_000, 14.0);
        store.insert_batch(&keys);
        let mut sel = SelectionVector::new();
        store.contains_batch(&probes, &mut sel);
        let expected: Vec<u32> = probes
            .iter()
            .enumerate()
            .filter(|(_, &k)| store.contains(k))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.as_slice(), expected.as_slice());
    }

    #[test]
    fn batch_positions_are_ordered_and_in_range() {
        let mut gen = KeyGen::new(303);
        let keys = gen.distinct_keys(5_000);
        let probes = gen.keys(20_000);
        let store = ShardedFilterStore::new(cuckoo_config(), 4, 2_000, 20.0);
        store.insert_batch(&keys);
        let mut sel = SelectionVector::new();
        store.contains_batch(&probes, &mut sel);
        let positions = sel.as_slice();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        assert!(positions.iter().all(|&p| (p as usize) < probes.len()));
    }

    #[test]
    fn saturated_shards_rebuild_without_losing_keys() {
        // Size the store for far fewer keys than are inserted: every shard
        // must grow (Cuckoo shards may additionally rebuild on relocation
        // failure), and no key may be lost across those rebuilds.
        let mut gen = KeyGen::new(304);
        let keys = gen.distinct_keys(40_000);
        for config in [bloom_config(), cuckoo_config()] {
            let store = ShardedFilterStore::new(config, 4, 256, 16.0);
            for chunk in keys.chunks(1_000) {
                store.insert_batch(chunk);
            }
            let stats = store.stats();
            assert!(
                stats.total_rebuilds() >= 4,
                "{}: expected every shard to rebuild, stats: {stats:?}",
                config.label()
            );
            for &key in &keys {
                assert!(store.contains(key), "lost key in {}", config.label());
            }
        }
    }

    #[test]
    fn snapshots_are_stable_under_later_inserts() {
        let mut gen = KeyGen::new(305);
        let before = gen.distinct_keys(5_000);
        let after = gen.distinct_keys(5_000);
        let store = ShardedFilterStore::new(bloom_config(), 4, 4_000, 16.0);
        store.insert_batch(&before);
        let snapshot = store.snapshot();
        let bits_before = snapshot.size_bits();
        store.insert_batch(&after);
        // The frozen snapshot still answers for the first key set and did not
        // observe the second batch's growth.
        for &key in &before {
            assert!(snapshot.contains(key));
        }
        assert_eq!(snapshot.size_bits(), bits_before);
        // The live store sees both.
        for &key in before.iter().chain(&after) {
            assert!(store.contains(key));
        }
    }

    #[test]
    fn observed_fpr_tracks_the_model() {
        let mut gen = KeyGen::new(306);
        let keys = gen.distinct_keys(40_000);
        let store = ShardedFilterStore::new(bloom_config(), 8, 5_000, 12.0);
        store.insert_batch(&keys);
        let observed = store.observed_fpr(200_000, 17);
        let modeled = store.stats().weighted_modeled_fpr();
        assert!(
            pof_filter::stats::fpr_matches_model(observed, modeled, 0.5, 5e-4),
            "observed {observed}, modeled {modeled}"
        );
    }

    #[test]
    fn stats_expose_shard_occupancy() {
        let mut gen = KeyGen::new(307);
        let keys = gen.distinct_keys(16_000);
        let store = ShardedFilterStore::new(bloom_config(), 4, 8_000, 12.0);
        store.insert_batch(&keys);
        let stats = store.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.total_keys(), keys.len() as u64);
        // The splitter hash should spread keys within ~3x of each other.
        let max = stats.shards.iter().map(|s| s.keys).max().unwrap();
        let min = stats.shards.iter().map(|s| s.keys).min().unwrap();
        assert!(
            max < 3 * min.max(1),
            "unbalanced shards: min {min}, max {max}"
        );
        for shard in &stats.shards {
            assert!(shard.size_bits > 0);
            assert!(shard.modeled_fpr > 0.0 && shard.modeled_fpr < 1.0);
            assert!(!shard.config_label.is_empty());
            assert_eq!(shard.policy, "saturation-doubling");
            assert_eq!(shard.tombstones, 0);
            assert_eq!(shard.overflow, 0);
        }
    }

    #[test]
    fn store_implements_the_filter_trait() {
        let mut store = ShardedFilterStore::new(bloom_config(), 2, 1_000, 12.0);
        assert!(Filter::insert(&mut store, 42));
        assert!(Filter::contains(&store, 42));
        assert_eq!(Filter::kind(&store), FilterKind::Bloom);
        assert!(Filter::config_label(&store).starts_with("sharded(P=2,"));
        assert!(Filter::size_bits(&store) > 0);
        // The store deletes through the unified trait (tombstoning here —
        // Bloom shards), a snapshot refuses both writes and deletes.
        assert!(Filter::supports_delete(&store));
        assert_eq!(Filter::try_delete(&mut store, 42), DeleteOutcome::Removed);
        assert_eq!(Filter::try_delete(&mut store, 42), DeleteOutcome::NotFound);
        assert_eq!(store.key_count(), 0);
        let mut snapshot = store.snapshot();
        assert!(!Filter::insert(&mut snapshot, 7));
        assert!(!Filter::supports_delete(&snapshot));
        assert_eq!(
            Filter::try_delete(&mut snapshot, 7),
            DeleteOutcome::Unsupported
        );
    }

    #[test]
    fn duplicate_inserts_are_set_semantics_and_terminate() {
        // A Cuckoo filter is a bag bounded at 2·b copies per fingerprint, so
        // replaying unbounded duplicates could never fit at any capacity;
        // the store must treat re-inserts as no-ops instead of rebuilding
        // forever.
        for config in [bloom_config(), cuckoo_config(), fuse_config()] {
            let store = ShardedFilterStore::new(config, 2, 64, 20.0);
            store.insert_batch(&vec![7u32; 100]);
            store.insert_batch(&[7, 8, 7, 9, 7]);
            assert!(store.contains(7) && store.contains(8) && store.contains(9));
            assert_eq!(store.key_count(), 3, "{}", config.label());
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let store = ShardedFilterStore::new(bloom_config(), 5, 100, 12.0);
        assert_eq!(store.shard_count(), 8);
        let store = ShardedFilterStore::new(bloom_config(), 0, 100, 12.0);
        assert_eq!(store.shard_count(), 1);
    }

    #[test]
    fn all_duplicate_batches_skip_the_snapshot_publish() {
        let mut gen = KeyGen::new(308);
        let keys = gen.distinct_keys(2_000);
        let store = ShardedFilterStore::new(bloom_config(), 2, 2_000, 12.0);
        store.insert_batch(&keys);
        let before = store.snapshot();
        // Re-inserting only known keys must not publish fresh snapshots:
        // the shard snapshots are the very same allocations afterwards.
        store.insert_batch(&keys);
        let after = store.snapshot();
        for shard in 0..store.shard_count() {
            assert!(
                Arc::ptr_eq(&before.shards[shard], &after.shards[shard]),
                "all-duplicate batch republished shard {shard}"
            );
        }
        // A batch with one fresh key publishes again.
        let fresh_key = gen.distinct_keys(1)[0];
        let mut batch = keys[..10].to_vec();
        batch.push(fresh_key);
        store.insert_batch(&batch);
        let touched = store.shard_of(fresh_key);
        let republished = store.snapshot();
        assert!(!Arc::ptr_eq(
            &after.shards[touched],
            &republished.shards[touched]
        ));
        // Deleting keys that are not present is equally unobservable.
        let absent = gen.distinct_keys(50);
        let absent: Vec<u32> = absent.into_iter().filter(|k| !store.contains(*k)).collect();
        assert_eq!(store.delete_batch(&absent), 0);
        let after_noop_delete = store.snapshot();
        for shard in 0..store.shard_count() {
            assert!(Arc::ptr_eq(
                &republished.shards[shard],
                &after_noop_delete.shards[shard]
            ));
        }
    }

    #[test]
    fn cuckoo_deletes_are_immediately_observable() {
        let mut gen = KeyGen::new(309);
        let keys = gen.distinct_keys(8_000);
        let store = ShardedFilterStore::new(cuckoo_config(), 4, 4_000, 20.0);
        store.insert_batch(&keys);
        let (gone, kept) = keys.split_at(3_000);
        assert_eq!(store.delete_batch(gone), gone.len());
        assert_eq!(store.key_count(), kept.len());
        for &key in kept {
            assert!(store.contains(key), "delete took an unrelated key");
        }
        // Deleted keys leave the filter physically (modulo signature
        // collisions with surviving keys, which are false positives by
        // construction): with 16-bit signatures virtually none survive.
        let still_positive = gone.iter().filter(|&&k| store.contains(k)).count();
        assert!(
            still_positive < gone.len() / 100,
            "{still_positive} of {} deleted keys still positive",
            gone.len()
        );
        // Delete-then-reinsert round-trips.
        store.insert_batch(gone);
        assert_eq!(store.key_count(), keys.len());
        for &key in &keys {
            assert!(store.contains(key));
        }
    }

    #[test]
    fn bloom_deletes_tombstone_until_maintenance() {
        let mut gen = KeyGen::new(310);
        let keys = gen.distinct_keys(8_000);
        let store = ShardedFilterStore::new(bloom_config(), 4, 4_000, 14.0);
        store.insert_batch(&keys);
        let (gone, kept) = keys.split_at(3_000);
        assert_eq!(store.delete_batch(gone), gone.len());
        // Bookkeeping is tombstone-aware immediately...
        assert_eq!(store.key_count(), kept.len());
        assert_eq!(store.stats().total_tombstones(), gone.len() as u64);
        // ...while the filter bits linger (deleted keys still probe positive).
        assert!(store.contains(gone[0]));
        // The default policy purges tombstones on an explicit maintain().
        assert!(store.maintain() > 0);
        assert_eq!(store.stats().total_tombstones(), 0);
        for &key in kept {
            assert!(store.contains(key), "maintenance lost a live key");
        }
        // After the purge the deleted keys are gone modulo the filter's FPR.
        let still_positive = gone.iter().filter(|&&k| store.contains(k)).count();
        assert!(
            (still_positive as f64) < gone.len() as f64 * 0.05,
            "{still_positive} of {} purged keys still positive",
            gone.len()
        );
    }

    #[test]
    fn counting_bloom_deletes_in_place_with_zero_tombstones_and_no_purges() {
        let mut gen = KeyGen::new(314);
        let keys = gen.distinct_keys(8_000);
        let store = crate::builder::StoreBuilder::new()
            .shards(4)
            .expected_keys(16_000)
            .bits_per_key(14.0)
            .config(bloom_config())
            .bloom_deletes(BloomDeleteMode::Counting)
            .build();
        store.insert_batch(&keys);
        let (gone, kept) = keys.split_at(3_000);
        assert_eq!(store.delete_batch(gone), gone.len());
        assert_eq!(store.key_count(), kept.len());
        // In place: no tombstones, and the deleted keys are negative
        // *immediately* (modulo the filter's FPR), no maintain() needed.
        let stats = store.stats();
        assert_eq!(stats.total_tombstones(), 0);
        assert!(stats.total_counting_sidecar_bytes() > 0);
        let still = gone.iter().filter(|&&k| store.contains(k)).count();
        assert!(
            (still as f64) < gone.len() as f64 * 0.05,
            "{still} of {} deleted keys still positive without a rebuild",
            gone.len()
        );
        for &key in kept {
            assert!(store.contains(key), "counting delete took a live key");
        }
        // With nothing tombstoned there is no purge work: maintain() finds
        // every shard clean (the delete-heavy regime stops rebuilding).
        assert_eq!(store.maintain(), 0);
        assert_eq!(store.stats().total_rebuilds(), 0);
        // Delete-then-reinsert round-trips through the counters.
        store.insert_batch(gone);
        assert_eq!(store.key_count(), keys.len());
        for &key in &keys {
            assert!(store.contains(key));
        }
        // Snapshots stay lean: the sidecar is write-side only, so published
        // shard filters report no counting memory... which the store-level
        // accounting already proved (> 0 comes from the write side; the
        // snapshot's size_bits is pure filter bits and unchanged by mode).
        let tombstone_twin = ShardedFilterStore::new(bloom_config(), 4, 4_000, 14.0);
        tombstone_twin.insert_batch(&keys);
        assert_eq!(store.size_bits(), tombstone_twin.size_bits());
    }

    #[test]
    fn deferred_policy_parks_overflow_and_folds_on_maintain() {
        let mut gen = KeyGen::new(311);
        let keys = gen.distinct_keys(4_000);
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: bloom_config(),
            shard_count: 2,
            capacity_per_shard: 512,
            bits_per_key: 14.0,
            lifecycle: LifecycleOptions {
                policy: Arc::new(DeferredBatch::new(4_096)),
                ..LifecycleOptions::default()
            },
            ..StoreOptions::default()
        });
        store.insert_batch(&keys);
        // Shards saturated far past their 512-key capacity: the excess is
        // parked, not rebuilt — and every key still answers positive.
        let stats = store.stats();
        assert_eq!(stats.total_rebuilds(), 0, "deferred policy rebuilt inline");
        assert!(stats.total_overflow() > 0);
        for &key in &keys {
            assert!(store.contains(key), "parked key went missing");
        }
        // Snapshots expose the parked keys; batch and point lookups agree.
        let snapshot = store.snapshot();
        let mut sel = SelectionVector::new();
        snapshot.contains_batch(&keys, &mut sel);
        assert_eq!(sel.len(), keys.len());
        // Maintenance folds everything into right-sized filters.
        assert!(store.maintain() > 0);
        let stats = store.stats();
        assert_eq!(stats.total_overflow(), 0);
        assert!(stats.total_rebuilds() > 0);
        for &key in &keys {
            assert!(store.contains(key), "fold lost a key");
        }
    }

    #[test]
    fn fpr_drift_policy_shrinks_after_heavy_deletes() {
        let mut gen = KeyGen::new(312);
        let keys = gen.distinct_keys(16_000);
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: bloom_config(),
            shard_count: 2,
            capacity_per_shard: 1_024,
            bits_per_key: 14.0,
            lifecycle: LifecycleOptions {
                policy: Arc::new(FprDrift::new(2.0)),
                ..LifecycleOptions::default()
            },
            ..StoreOptions::default()
        });
        store.insert_batch(&keys);
        let grown_bits = store.size_bits();
        // Delete 97% of the keys: the drift policy re-fits shards downward.
        let (gone, kept) = keys.split_at(keys.len() - keys.len() / 32);
        assert_eq!(store.delete_batch(gone), gone.len());
        store.maintain();
        assert!(
            store.size_bits() < grown_bits / 4,
            "expected a shrink: {} -> {}",
            grown_bits,
            store.size_bits()
        );
        assert_eq!(store.key_count(), kept.len());
        for &key in kept {
            assert!(store.contains(key), "shrink lost a live key");
        }
    }

    #[test]
    fn background_rebuilds_lose_no_keys_and_record_stats() {
        // The background twin of `saturated_shards_rebuild_without_losing_
        // keys`: undersized shards, heavy growth, rebuilds swapped in by the
        // maintainer thread — and still not a single key missing.
        let mut gen = KeyGen::new(401);
        let keys = gen.distinct_keys(40_000);
        for config in [bloom_config(), cuckoo_config()] {
            let store = ShardedFilterStore::from_options(StoreOptions {
                config,
                shard_count: 4,
                capacity_per_shard: 256,
                bits_per_key: 16.0,
                lifecycle: LifecycleOptions {
                    policy: Arc::new(SaturationDoubling),
                    rebuild_mode: RebuildMode::Background,
                },
                ..StoreOptions::default()
            });
            for chunk in keys.chunks(1_000) {
                store.insert_batch(chunk);
            }
            // Deterministic barrier: every in-flight swap lands before the
            // assertions run.
            store.maintain();
            assert_eq!(store.pending_rebuilds(), 0);
            assert_eq!(store.key_count(), keys.len(), "{}", config.label());
            for &key in &keys {
                assert!(store.contains(key), "lost key in {}", config.label());
            }
            let stats = store.stats();
            assert!(
                stats.total_background_rebuilds() > 0,
                "{}: no rebuild ran off-lock, stats: {stats:?}",
                config.label()
            );
            assert!(stats.total_rebuild_wait_ns() > 0);
            assert!(stats.max_writer_stall_ns() > 0);
        }
    }

    #[test]
    fn queued_rebuild_replays_the_delta_window() {
        // Deterministic walk through the snapshot-swap handoff: open the
        // delta window with the snapshot phase, mutate the shard inside it,
        // then swap and verify the replay reconciled everything.
        for config in [bloom_config(), cuckoo_config()] {
            let store = ShardedFilterStore::from_options(StoreOptions {
                config,
                shard_count: 1,
                capacity_per_shard: 64,
                bits_per_key: 16.0,
                lifecycle: LifecycleOptions {
                    policy: Arc::new(SaturationDoubling),
                    rebuild_mode: RebuildMode::Queued,
                },
                ..StoreOptions::default()
            });
            let mut gen = KeyGen::new(402);
            let keys = gen.distinct_keys(100);
            store.insert_batch(&keys); // 100 > 64: a rebuild is requested
            assert_eq!(store.pending_rebuilds(), 1, "{}", config.label());
            // Phase one: key-set snapshot; the writer now delta-logs.
            assert_eq!(store.run_pending_rebuilds(1), 1);
            // Mutations inside the delta-replay window.
            let late = gen.distinct_keys(50);
            store.insert_batch(&late);
            let doomed = &keys[..30];
            assert_eq!(store.delete_batch(doomed), doomed.len());
            // Phase two: off-lock build, delta replay, atomic swap.
            assert_eq!(store.run_pending_rebuilds(usize::MAX), 1);
            assert_eq!(store.pending_rebuilds(), 0);
            assert_eq!(store.stats().total_background_rebuilds(), 1);
            let live: Vec<u32> = keys[30..].iter().chain(&late).copied().collect();
            assert_eq!(store.key_count(), live.len(), "{}", config.label());
            for &key in &live {
                assert!(
                    store.contains(key),
                    "replay lost {key} in {}",
                    config.label()
                );
            }
            if config.kind() == FilterKind::Cuckoo {
                // Deletes replayed into the replacement removed signatures
                // physically: the doomed keys answer negative (16-bit
                // signatures make residual collisions vanishingly rare).
                let still = doomed.iter().filter(|&&k| store.contains(k)).count();
                assert!(still <= 1, "{still} deleted keys survived the replay");
            }
        }
    }

    #[test]
    fn maintain_is_a_drain_barrier_even_when_no_policy_work_is_due() {
        // A clean SaturationDoubling store has nothing for the policy to do
        // on maintain() — but maintain() must still drain queued background
        // work (the deterministic barrier the tests and callers rely on).
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: bloom_config(),
            shard_count: 1,
            capacity_per_shard: 64,
            bits_per_key: 16.0,
            lifecycle: LifecycleOptions {
                policy: Arc::new(SaturationDoubling),
                rebuild_mode: RebuildMode::Queued,
            },
            ..StoreOptions::default()
        });
        let mut gen = KeyGen::new(403);
        store.insert_batch(&gen.distinct_keys(100));
        assert_eq!(store.pending_rebuilds(), 1);
        store.maintain();
        assert_eq!(store.pending_rebuilds(), 0);
        assert_eq!(store.stats().total_background_rebuilds(), 1);
    }

    #[test]
    fn stale_rebuild_tickets_are_discarded_after_inline_fallback() {
        // Force the backpressure path: request a rebuild, then stuff the
        // shard far past the delta bound *inside* the replay window so the
        // writer falls back inline. The queued job's swap must then be
        // refused — the fallback's filter stays, nothing is lost.
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: bloom_config(),
            shard_count: 1,
            capacity_per_shard: 64,
            bits_per_key: 16.0,
            lifecycle: LifecycleOptions {
                policy: Arc::new(SaturationDoubling),
                rebuild_mode: RebuildMode::Queued,
            },
            ..StoreOptions::default()
        });
        let mut gen = KeyGen::new(404);
        let first = gen.distinct_keys(100);
        store.insert_batch(&first);
        assert_eq!(store.pending_rebuilds(), 1);
        assert_eq!(store.run_pending_rebuilds(1), 1); // snapshot: delta opens
                                                      // The delta bound is max(capacity, 4096): exceed it (forcing the
                                                      // inline fallback) without outgrowing the fallback's refit capacity,
                                                      // which would legitimately request a second rebuild.
        let flood = gen.distinct_keys(6_000);
        store.insert_batch(&flood);
        let stats = store.stats();
        assert!(
            stats.total_rebuilds() > 0 && stats.total_background_rebuilds() == 0,
            "flood should have rebuilt inline: {stats:?}"
        );
        assert!(!stats.shards[0].rebuild_pending);
        // The staged swap is now stale; draining discards it.
        store.run_pending_rebuilds(usize::MAX);
        assert_eq!(store.stats().total_background_rebuilds(), 0);
        assert_eq!(store.key_count(), first.len() + flood.len());
        for &key in first.iter().chain(&flood) {
            assert!(store.contains(key), "fallback lost {key}");
        }
    }

    #[test]
    fn runaway_overflow_forces_inline_fallback_while_pending() {
        // DeferredBatch promises its overflow buffer never balloons past 4x
        // the cap. That hard bound must hold even while a background fold is
        // in flight (policy decisions are otherwise suppressed): a Cuckoo
        // shard whose saturated filter refuses keys mid-window grows the
        // buffer, and at 4x the urgency hook forces an inline fallback.
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: cuckoo_config(),
            shard_count: 1,
            capacity_per_shard: 64,
            bits_per_key: 20.0,
            lifecycle: LifecycleOptions {
                policy: Arc::new(DeferredBatch::new(4)),
                rebuild_mode: RebuildMode::Queued,
            },
            ..StoreOptions::default()
        });
        let mut gen = KeyGen::new(405);
        let keys = gen.distinct_keys(400);
        store.insert_batch(&keys);
        assert!(
            store.stats().total_overflow() <= 16,
            "overflow hard bound violated during the in-flight window: {:?}",
            store.stats()
        );
        assert!(
            store.stats().total_rebuilds() >= 1,
            "the runaway buffer should have forced an inline fallback"
        );
        store.maintain();
        assert_eq!(store.key_count(), keys.len());
        for &key in &keys {
            assert!(store.contains(key), "fallback lost {key}");
        }
    }

    #[test]
    fn writer_bookkeeping_is_compact() {
        // The acceptance bar for the compact key set: at most ~2x the raw
        // key bytes per shard (ordered log + sorted run), where the former
        // Vec + HashSet pair paid ~3x.
        let mut gen = KeyGen::new(313);
        let keys = gen.distinct_keys(64_000);
        let store = ShardedFilterStore::new(bloom_config(), 4, 8_000, 12.0);
        store.insert_batch(&keys);
        let stats = store.stats();
        let raw_bytes = 4 * keys.len() as u64;
        let bookkeeping = stats.total_bookkeeping_bytes();
        assert!(
            bookkeeping <= raw_bytes * 2,
            "bookkeeping {bookkeeping} bytes exceeds 2x raw key bytes {raw_bytes}"
        );
        assert!(bookkeeping >= raw_bytes, "accounting undercounts");
    }

    fn hot_churny_spec() -> LevelSpec {
        LevelSpec {
            expected_keys: 1 << 12,
            work_saved_cycles: 32.0,
            sigma: 0.5,
            delete_rate: 0.4,
            expected_probes_per_key: 4.0,
        }
    }

    fn cold_static_spec() -> LevelSpec {
        LevelSpec {
            expected_keys: 1 << 12,
            work_saved_cycles: 16_000_000.0,
            sigma: 0.0,
            delete_rate: 0.0,
            expected_probes_per_key: 1_000_000.0,
        }
    }

    #[test]
    fn readvising_migrates_a_cooling_store_without_false_negatives() {
        // The tentpole end to end: a counting-Bloom store under churn stays
        // Bloom; when the workload turns cold and static (hint drifts, churn
        // stops, counters decay), re-advising walks it to the immutable fuse
        // family — live, with every surviving key answering positive at
        // every step.
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: bloom_config(),
            shard_count: 2,
            capacity_per_shard: 16_384,
            bits_per_key: 14.0,
            delete_mode: BloomDeleteMode::Counting,
            readvise: Some(ReadviseOptions {
                workload: hot_churny_spec(),
                ..ReadviseOptions::default()
            }),
            ..StoreOptions::default()
        });
        let mut gen = KeyGen::new(501);
        // Fuse only pays off at scale: the advisor's build-cost term keeps
        // small sets on mutable families, so the cooling story needs a
        // population comfortably past the crossover (~16k live keys).
        let keys = gen.distinct_keys(24_000);
        store.insert_batch(&keys);
        let (gone, live) = keys.split_at(4_000);
        assert_eq!(store.delete_batch(gone), gone.len());
        let mut sel = SelectionVector::new();
        for _ in 0..4 {
            sel.clear();
            store.contains_batch(live, &mut sel);
            assert_eq!(sel.len(), live.len(), "false negative while hot");
            store.run_pending_readvise();
        }
        assert_eq!(
            store.config().kind(),
            FilterKind::Bloom,
            "a hot churny workload must not migrate away from Bloom"
        );
        assert_eq!(store.stats().total_migrations(), 0);
        // The workload cools: misses now cost a disk probe, churn stops.
        store.set_workload_hint(cold_static_spec());
        let mut migrated_at = None;
        for round in 0..40 {
            sel.clear();
            store.contains_batch(live, &mut sel);
            assert_eq!(sel.len(), live.len(), "false negative at round {round}");
            store.run_pending_readvise();
            if store.config().kind() == FilterKind::Fuse {
                migrated_at = Some(round);
                break;
            }
        }
        assert!(
            migrated_at.is_some(),
            "store never reached fuse; still {:?}",
            store.config().kind()
        );
        let stats = store.stats();
        assert!(stats.total_migrations() >= store.shard_count() as u64);
        assert_eq!(store.delete_mode(), BloomDeleteMode::Tombstone);
        assert_eq!(stats.total_counting_sidecar_bytes(), 0);
        assert!(stats.shards[0].fingerprint_bits > 0);
        sel.clear();
        store.contains_batch(live, &mut sel);
        assert_eq!(sel.len(), live.len(), "false negative after migration");
        // The migrated store still takes writes (immutable shards park fresh
        // keys in overflow until the next fold).
        let fresh = gen.distinct_keys(100);
        store.insert_batch(&fresh);
        for &key in &fresh {
            assert!(store.contains(key), "post-migration insert lost {key}");
        }
    }

    #[test]
    fn borderline_oscillating_workload_never_flaps() {
        // The no-flap acceptance bar: a workload oscillating around the
        // family crossover, with the improvement threshold set above what
        // the oscillation can sustain, must complete zero migrations.
        let store = ShardedFilterStore::from_options(StoreOptions {
            config: bloom_config(),
            shard_count: 1,
            capacity_per_shard: 2_048,
            bits_per_key: 14.0,
            readvise: Some(ReadviseOptions {
                min_improvement: 0.95,
                consecutive: 2,
                workload: hot_churny_spec(),
                ..ReadviseOptions::default()
            }),
            ..StoreOptions::default()
        });
        let mut gen = KeyGen::new(502);
        let keys = gen.distinct_keys(1_000);
        store.insert_batch(&keys);
        let mut sel = SelectionVector::new();
        for round in 0..12 {
            store.set_workload_hint(if round % 2 == 0 {
                cold_static_spec()
            } else {
                hot_churny_spec()
            });
            sel.clear();
            store.contains_batch(&keys, &mut sel);
            assert_eq!(sel.len(), keys.len());
            store.run_pending_readvise();
        }
        assert_eq!(
            store.stats().total_migrations(),
            0,
            "oscillating borderline stats flapped the family"
        );
        assert_eq!(store.config().kind(), FilterKind::Bloom);
    }

    #[test]
    fn migrate_to_is_the_manual_path_and_respects_busy_shards() {
        let store = ShardedFilterStore::new(cuckoo_config(), 2, 1_024, 16.0);
        let mut gen = KeyGen::new(503);
        let keys = gen.distinct_keys(2_000);
        store.insert_batch(&keys);
        // Manual migration, no advisor involved: Cuckoo -> fuse inline.
        assert_eq!(
            store.migrate_to(fuse_config(), 10.0, BloomDeleteMode::Tombstone),
            2
        );
        assert_eq!(store.config().kind(), FilterKind::Fuse);
        assert_eq!(store.stats().total_migrations(), 2);
        for &key in &keys {
            assert!(store.contains(key), "manual migration lost {key}");
        }
        // Already at the target: a repeat is a no-op.
        assert_eq!(
            store.migrate_to(fuse_config(), 10.0, BloomDeleteMode::Tombstone),
            0
        );
        assert_eq!(store.stats().total_migrations(), 2);
    }
}
