//! Compact writer-side key bookkeeping: one order-preserving set.
//!
//! Each shard must remember every live key it holds, for two reasons: keys
//! are replayed (in their original insertion order, which keeps Cuckoo
//! rebuilds deterministic) whenever the shard's filter is rebuilt, and
//! duplicate inserts must be detected so the store keeps *set* semantics.
//! The previous implementation paid for this twice over — a `Vec<u32>` for
//! order plus a `HashSet<u32>` for O(1) dedup, roughly 3x the raw key bytes.
//!
//! [`CompactKeySet`] replaces the pair with a single structure at ~2x the raw
//! key bytes: the authoritative insertion-ordered log, plus a *sorted run*
//! over an indexed prefix of it. Membership is a binary search of the sorted
//! run plus a linear scan of the short unindexed tail (the insertion-ordered
//! append log); the tail is folded into the sorted run whenever it outgrows
//! [`LOG_LIMIT`], and fully at every shard rebuild.

/// Maximum length of the unindexed tail before it is folded into the sorted
/// run. Bounds the linear-scan cost of a membership check; folding is
/// amortized O(log n) per key (pdqsort on an almost-sorted buffer).
const LOG_LIMIT: usize = 256;

/// An order-preserving set of `u32` keys with compact bookkeeping.
///
/// Invariants:
/// * `ordered` holds every live key exactly once, in insertion order;
/// * `sorted` is a sorted copy of `ordered[..indexed]`;
/// * `ordered[indexed..]` (the append log) is at most [`LOG_LIMIT`] long
///   between folds.
#[derive(Debug, Default)]
pub(crate) struct CompactKeySet {
    /// Authoritative key list, insertion order — the rebuild replay log.
    ordered: Vec<u32>,
    /// Sorted copy of `ordered[..indexed]`, binary-searched for dedup.
    sorted: Vec<u32>,
    /// How many leading keys of `ordered` are covered by `sorted`.
    indexed: usize,
}

impl CompactKeySet {
    /// Create an empty set.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Rebuild a set from a persisted insertion-ordered key log (assumed
    /// duplicate-free — it is the `as_ordered_slice()` of a former set). The
    /// whole log is indexed up front, so the restored set answers membership
    /// without a tail scan and replays rebuilds in the original order.
    pub(crate) fn from_ordered(ordered: Vec<u32>) -> Self {
        let mut sorted = ordered.clone();
        sorted.sort_unstable();
        let indexed = ordered.len();
        Self {
            ordered,
            sorted,
            indexed,
        }
    }

    /// Number of live keys.
    pub(crate) fn len(&self) -> usize {
        self.ordered.len()
    }

    /// The live keys in insertion order (the rebuild replay log).
    pub(crate) fn as_ordered_slice(&self) -> &[u32] {
        &self.ordered
    }

    /// Membership test: binary search of the sorted run, then a linear scan
    /// of the bounded append log.
    pub(crate) fn contains(&self, key: u32) -> bool {
        self.sorted.binary_search(&key).is_ok() || self.ordered[self.indexed..].contains(&key)
    }

    /// Insert a key; returns `true` if it was not already present.
    pub(crate) fn insert(&mut self, key: u32) -> bool {
        if self.contains(key) {
            return false;
        }
        self.ordered.push(key);
        if self.ordered.len() - self.indexed > LOG_LIMIT {
            self.fold();
        }
        true
    }

    /// Insert a whole batch: every key not already present is appended to
    /// the ordered log (in batch order, first occurrence wins) and the
    /// sorted run is refolded once. Returns the number of fresh keys; the
    /// new keys sit at `as_ordered_slice()[len_before..]`.
    ///
    /// One sort of the batch plus one refold of the run, instead of a
    /// membership probe and a [`LOG_LIMIT`]-cadence refold per key — the
    /// difference between O(n log n) and effectively quadratic work for a
    /// multi-million-key cold-tier bulk load.
    pub(crate) fn insert_bulk(&mut self, keys: &[u32]) -> usize {
        if keys.len() <= LOG_LIMIT {
            return keys.iter().filter(|&&key| self.insert(key)).count();
        }
        self.fold();
        // Distinct batch values not already in the sorted run.
        let mut candidates: Vec<u32> = keys.to_vec();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|key| self.sorted.binary_search(key).is_err());
        if candidates.is_empty() {
            return 0;
        }
        // Append each fresh value to the ordered log at its first
        // occurrence in the batch.
        let mut taken = vec![false; candidates.len()];
        let start = self.ordered.len();
        for &key in keys {
            if let Ok(position) = candidates.binary_search(&key) {
                if !taken[position] {
                    taken[position] = true;
                    self.ordered.push(key);
                }
            }
        }
        // Refold: the run and the candidates are two sorted runs back to
        // back, which pdqsort handles in near-linear time.
        self.sorted.extend_from_slice(&candidates);
        self.sorted.sort_unstable();
        self.indexed = self.ordered.len();
        self.ordered.len() - start
    }

    /// Remove every key in `doomed` (a **sorted, deduplicated** slice; keys
    /// not present are ignored).
    ///
    /// One compacting pass over the ordered log and one over the sorted run
    /// — O(n + k·log k) for the whole batch, instead of an O(n) scan per
    /// key. The insertion-ordered log has no per-key back-pointers (that
    /// index is exactly the memory this structure exists to avoid), so
    /// deletes are batch-first by design.
    pub(crate) fn remove_sorted_batch(&mut self, doomed: &[u32]) {
        debug_assert!(doomed.windows(2).all(|w| w[0] < w[1]), "must be sorted");
        if doomed.is_empty() {
            return;
        }
        let indexed = self.indexed;
        let mut surviving_prefix = 0;
        let mut out = 0;
        for read in 0..self.ordered.len() {
            let key = self.ordered[read];
            if doomed.binary_search(&key).is_ok() {
                continue;
            }
            self.ordered[out] = key;
            out += 1;
            if read < indexed {
                surviving_prefix += 1;
            }
        }
        self.ordered.truncate(out);
        self.indexed = surviving_prefix;
        self.sorted.retain(|key| doomed.binary_search(key).is_err());
    }

    /// Fold the append log into the sorted run ("sorted-run dedup"): extend
    /// with the tail and re-sort. The buffer is two sorted runs back to back,
    /// which pdqsort handles in near-linear time.
    pub(crate) fn fold(&mut self) {
        if self.indexed == self.ordered.len() {
            return;
        }
        self.sorted.extend_from_slice(&self.ordered[self.indexed..]);
        self.sorted.sort_unstable();
        self.indexed = self.ordered.len();
    }

    /// Bytes of key payload held by the bookkeeping: the ordered log plus the
    /// sorted run (at most ~2x the raw key bytes, vs ~3x for the former
    /// `Vec<u32>` + `HashSet<u32>` pair). Excludes `Vec` growth slack.
    pub(crate) fn bookkeeping_bytes(&self) -> usize {
        (self.ordered.len() + self.sorted.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_set_semantics_and_preserves_order() {
        let mut set = CompactKeySet::new();
        let keys = [5u32, 3, 9, 3, 5, 7, 9, 1];
        let mut fresh = 0;
        for &key in &keys {
            if set.insert(key) {
                fresh += 1;
            }
        }
        assert_eq!(fresh, 5);
        assert_eq!(set.len(), 5);
        assert_eq!(set.as_ordered_slice(), &[5, 3, 9, 7, 1]);
        for &key in &[5u32, 3, 9, 7, 1] {
            assert!(set.contains(key));
        }
        assert!(!set.contains(2));
    }

    #[test]
    fn dedup_spans_the_fold_boundary() {
        // Insert enough keys to force several folds, then re-insert every one
        // of them: all re-inserts must be rejected whether the key sits in
        // the sorted run or in the unindexed tail.
        let mut set = CompactKeySet::new();
        let keys: Vec<u32> = (0..(LOG_LIMIT as u32 * 3 + 17))
            .map(|i| i * 7 + 1)
            .collect();
        for &key in &keys {
            assert!(set.insert(key));
        }
        for &key in &keys {
            assert!(!set.insert(key), "duplicate accepted for {key}");
        }
        assert_eq!(set.len(), keys.len());
        assert_eq!(set.as_ordered_slice(), keys.as_slice());
    }

    #[test]
    fn insert_bulk_agrees_with_per_key_inserts() {
        // A batch with intra-batch duplicates, keys already resident (in
        // both the sorted run and the unindexed tail), and fresh keys: the
        // bulk path must leave exactly the state the per-key path would.
        let mut bulk = CompactKeySet::new();
        let mut per_key = CompactKeySet::new();
        let resident: Vec<u32> = (0..(LOG_LIMIT as u32 + 40)).map(|i| i * 11).collect();
        for &key in &resident {
            bulk.insert(key);
            per_key.insert(key);
        }
        let batch: Vec<u32> = (0..(LOG_LIMIT as u32 * 4))
            .map(|i| i.wrapping_mul(2_654_435_769) % 7_000)
            .collect();
        let fresh_bulk = bulk.insert_bulk(&batch);
        let fresh_per_key = batch.iter().filter(|&&key| per_key.insert(key)).count();
        assert_eq!(fresh_bulk, fresh_per_key);
        assert_eq!(bulk.as_ordered_slice(), per_key.as_ordered_slice());
        for &key in &batch {
            assert!(bulk.contains(key));
            assert!(!bulk.insert(key), "bulk-inserted {key} accepted again");
        }
        // A sub-LOG_LIMIT batch takes the per-key path; same agreement.
        let small: Vec<u32> = (0..40u32).map(|i| 100_000 + i * 3).collect();
        assert_eq!(bulk.insert_bulk(&small), small.len());
        assert_eq!(
            *bulk.as_ordered_slice().last().unwrap(),
            *small.last().unwrap()
        );
    }

    #[test]
    fn remove_updates_order_index_and_membership() {
        let mut set = CompactKeySet::new();
        let keys: Vec<u32> = (0..(LOG_LIMIT as u32 * 2)).map(|i| i * 3).collect();
        for &key in &keys {
            set.insert(key);
        }
        // Remove from the indexed prefix and from the fresh tail in one
        // batch; absent keys are ignored.
        set.insert(1_000_003); // tail key (just appended)
        set.remove_sorted_batch(&[keys[0], 999_999, 1_000_003]);
        assert!(!set.contains(keys[0]));
        assert!(!set.contains(1_000_003));
        assert_eq!(set.len(), keys.len() - 1);
        // A second batch with the same keys removes nothing further.
        set.remove_sorted_batch(&[keys[0], 1_000_003]);
        assert_eq!(set.len(), keys.len() - 1);
        // Order of the survivors is untouched, and reinsert works.
        assert_eq!(set.as_ordered_slice()[0], keys[1]);
        assert!(set.insert(keys[0]));
        assert_eq!(*set.as_ordered_slice().last().unwrap(), keys[0]);
        // Dedup still works across the whole structure after removals.
        for &key in set.as_ordered_slice().to_vec().iter() {
            assert!(!set.insert(key));
        }
    }

    #[test]
    fn bookkeeping_stays_within_two_words_per_key() {
        let mut set = CompactKeySet::new();
        for key in 0..10_000u32 {
            set.insert(key.wrapping_mul(2_654_435_769));
        }
        set.fold();
        let bytes_per_key = set.bookkeeping_bytes() as f64 / set.len() as f64;
        assert!(
            bytes_per_key <= 8.0 + 1e-9,
            "expected <= 8 bytes/key, got {bytes_per_key}"
        );
    }
}
