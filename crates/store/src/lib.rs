//! A sharded, concurrent filter store — the serving layer above the
//! performance-optimal filtering machinery.
//!
//! The paper's thesis is that filter choice is a *throughput* question; this
//! crate is the subsystem that turns one recommended filter configuration
//! into a structure that can serve millions of membership lookups per second
//! from many threads:
//!
//! * [`ShardedFilterStore`] — keys are partitioned across `P` shards by a
//!   cheap splitter hash (reusing `pof-hash`), each shard holds an
//!   [`AnyFilter`](pof_core::AnyFilter) chosen by the
//!   [`FilterAdvisor`](pof_core::FilterAdvisor) or pinned explicitly,
//! * reads are wait-free against writers: every lookup probes an immutable
//!   [`Arc`](std::sync::Arc) snapshot of the shard's filter, while inserts
//!   and rebuilds mutate a private write-side copy and publish a fresh
//!   snapshot when done (readers never observe a half-built filter),
//! * the API is **batch-first**: [`ShardedFilterStore::insert_batch`] and
//!   [`ShardedFilterStore::contains_batch`] fan a batch out to the shards,
//!   probe each shard through its vectorised kernel, and merge the per-shard
//!   position lists back into one batch-ordered
//!   [`SelectionVector`](pof_filter::SelectionVector),
//! * the shard **lifecycle is policy-driven**: a pluggable [`RebuildPolicy`]
//!   decides when shards rebuild their filters and how large the rebuild is.
//!   [`SaturationDoubling`] (the default) doubles inline the moment a shard
//!   outgrows its capacity or its filter refuses a key; [`FprDrift`] rebuilds
//!   when the modeled false-positive rate drifts past a budget multiple,
//!   re-fitting (growing *or shrinking*) to the live key count;
//!   [`DeferredBatch`] keeps writes latency-flat by parking overflow keys in
//!   an exact side buffer (probed by readers, so nothing goes missing) and
//!   folding them in on the next [`ShardedFilterStore::maintain`] call,
//! * rebuilds can run **off the write path**: with
//!   [`StoreBuilder::rebuild_mode`] ([`RebuildMode::Background`]) a
//!   saturating shard no longer
//!   stalls writers for a full filter replay — the writer records a
//!   pending-rebuild state, a background maintainer builds the replacement
//!   from the shard's replay log off-lock, re-acquires the shard briefly to
//!   replay the bounded delta of writes that raced the build, and publishes
//!   it with a single `Arc` swap. [`ShardedFilterStore::maintain`] doubles
//!   as a deterministic drain barrier, and
//!   [`ShardStats::max_writer_stall_ns`] /
//!   [`ShardStats::writer_rebuild_stall_ns`] make the tail-latency effect
//!   measurable ([`RebuildMode::Queued`] exposes the same machinery one
//!   phase at a time for deterministic interleaving tests),
//! * the store **deletes**: [`ShardedFilterStore::delete_batch`] removes
//!   Cuckoo signatures in place and republishes; Bloom shards *tombstone* by
//!   default — the key leaves [`ShardedFilterStore::key_count`] immediately
//!   while its bits linger as false positives until the policy's next
//!   rebuild — or, with [`StoreBuilder::bloom_deletes`]
//!   ([`BloomDeleteMode::Counting`]), delete **in place** through a
//!   per-shard counting sidecar (4 bits per filter bit on the write side;
//!   published snapshots never carry it), so tombstones stay at zero and a
//!   delete-heavy Bloom store stops rebuilding altogether. No policy ever
//!   loses a live key: the authoritative key bookkeeping lives on the write
//!   side in a compact order-preserving key set (~2x raw key bytes: an
//!   insertion-ordered replay log plus a sorted dedup run),
//! * steady-state reads are **allocation-free**: a reader holding a
//!   [`StoreSnapshot`] and a reusable [`ProbeScratch`] routes every batch
//!   through [`StoreSnapshot::contains_batch_with`] without touching the
//!   heap,
//! * [`StoreStats`] exposes per-shard occupancy, size, modeled FPR,
//!   tombstones, overflow and bookkeeping bytes, and
//!   [`ShardedFilterStore::observed_fpr`] measures the empirical rate through
//!   `pof-filter`'s measurement machinery,
//! * the store **tiers**: a [`TieredStore`] layers per-level sharded stores
//!   into an LSM-style hierarchy, each level's family, budget and delete
//!   mode pinned by the advisor from the level's `LevelSpec` (`expected_keys`,
//!   `t_w`, σ, delete rate) — register-blocked Bloom with counting deletes
//!   for hot churn levels, Cuckoo for cold simulated-disk levels — with
//!   newest→oldest short-circuit lookups, exact cross-level key accounting,
//!   and a [`CompactionPolicy`]-driven [`TieredStore::compact`] that merges
//!   a level into the next through the same policy/maintainer machinery,
//! * construction is **struct-first**: every store comes from
//!   [`ShardedFilterStore::from_options`] consuming a [`StoreOptions`]
//!   (shard count, budget, [`LifecycleOptions`], delete mode, re-advising
//!   knobs), with [`StoreBuilder`] / [`TieredStoreBuilder`] as the fluent
//!   fronts — the old positional constructors survive as deprecated shims,
//! * families are **not forever**: with [`StoreOptions::readvise`]
//!   ([`ReadviseOptions`]) the store observes its real insert/delete/lookup
//!   traffic in decayed counters, re-runs the per-level advisor against the
//!   observed [`LevelSpec`] on every
//!   [`ShardedFilterStore::run_pending_readvise`] (and `maintain()`) call,
//!   and — once the modeled improvement clears a hysteresis gate for enough
//!   consecutive evaluations — migrates each shard live to the new family
//!   through the same snapshot → off-lock build → delta replay → `Arc`-swap
//!   machinery rebuilds use (a hot counting-Bloom level that cools into a
//!   static tier ends up on an immutable fuse filter without a restart, and
//!   readers never observe a false negative on the way).
//!
//! # Example
//!
//! ```
//! use pof_store::StoreBuilder;
//! use pof_filter::SelectionVector;
//!
//! // An advisor-configured store for ~64k keys served by 4 shards, with
//! // latency-flat deferred maintenance.
//! let store = StoreBuilder::new()
//!     .shards(4)
//!     .expected_keys(64 * 1024)
//!     .advised(200.0, 0.1)
//!     .rebuild_policy(std::sync::Arc::new(pof_store::DeferredBatch::new(4_096)))
//!     .build();
//!
//! let keys: Vec<u32> = (0..10_000u32).map(|i| i * 2 + 1).collect();
//! store.insert_batch(&keys);
//!
//! let probes: Vec<u32> = (0..20_000u32).collect();
//! let mut sel = SelectionVector::new();
//! store.contains_batch(&probes, &mut sel);
//! // Every inserted key qualifies; non-members only as false positives.
//! assert!(sel.len() >= keys.len());
//!
//! // Deletes work for every family; folds/purges run on demand.
//! let removed = store.delete_batch(&keys[..1_000]);
//! assert_eq!(removed, 1_000);
//! store.maintain();
//! assert_eq!(store.key_count(), 9_000);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod builder;
mod keyset;
mod maintainer;
mod options;
mod persist;
mod policy;
mod readvise;
mod shard;
mod stats;
mod store;
mod tiered;

pub use builder::{ConfigSource, StoreBuilder, TieredStoreBuilder};
pub use maintainer::RebuildMode;
pub use options::{LifecycleOptions, ReadviseOptions, StoreOptions};
pub use persist::PersistOptions;
pub use policy::{
    DeferredBatch, FprDrift, RebuildDecision, RebuildPolicy, RebuildUrgency, SaturationDoubling,
    ShardObservation,
};
pub use shard::BloomDeleteMode;
pub use stats::{LevelStats, ShardStats, StoreStats, TieredStats};
pub use store::{ProbeScratch, ShardedFilterStore, StoreSnapshot};
pub use tiered::{
    CompactionPolicy, LevelObservation, ManualCompaction, SizeRatio, TieredProbeScratch,
    TieredStore,
};

/// Re-exported so tiered-store callers can describe levels without a direct
/// `pof-core` dependency.
pub use pof_core::{LevelRecommendation, LevelSpec};

/// Re-exported so persistence callers (and crash tests) can name the fsync
/// policy, error type, and fault-injection hooks without a direct
/// `pof-persist` dependency.
pub use pof_persist::{FaultInjector, FaultPoint, FsyncPolicy, PersistError};
