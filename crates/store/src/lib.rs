//! A sharded, concurrent filter store — the serving layer above the
//! performance-optimal filtering machinery.
//!
//! The paper's thesis is that filter choice is a *throughput* question; this
//! crate is the subsystem that turns one recommended filter configuration
//! into a structure that can serve millions of membership lookups per second
//! from many threads:
//!
//! * [`ShardedFilterStore`] — keys are partitioned across `P` shards by a
//!   cheap splitter hash (reusing `pof-hash`), each shard holds an
//!   [`AnyFilter`](pof_core::AnyFilter) chosen by the
//!   [`FilterAdvisor`](pof_core::FilterAdvisor) or pinned explicitly,
//! * reads are wait-free against writers: every lookup probes an immutable
//!   [`Arc`](std::sync::Arc) snapshot of the shard's filter, while inserts
//!   and rebuilds mutate a private write-side copy and publish a fresh
//!   snapshot when done (readers never observe a half-built filter),
//! * the API is **batch-first**: [`ShardedFilterStore::insert_batch`] and
//!   [`ShardedFilterStore::contains_batch`] fan a batch out to the shards,
//!   probe each shard through its vectorised kernel, and merge the per-shard
//!   position lists back into one batch-ordered
//!   [`SelectionVector`](pof_filter::SelectionVector),
//! * shards rebuild themselves when they saturate (a Cuckoo shard whose
//!   relocation search fails, or any shard growing past its sized capacity),
//!   without ever losing a key: the authoritative key list lives on the
//!   write side,
//! * [`StoreStats`] exposes per-shard occupancy, size and modeled FPR, and
//!   [`ShardedFilterStore::observed_fpr`] measures the empirical rate through
//!   `pof-filter`'s measurement machinery.
//!
//! # Example
//!
//! ```
//! use pof_store::StoreBuilder;
//! use pof_filter::SelectionVector;
//!
//! // An advisor-configured store for ~64k keys served by 4 shards.
//! let store = StoreBuilder::new()
//!     .shards(4)
//!     .expected_keys(64 * 1024)
//!     .advised(200.0, 0.1)
//!     .build();
//!
//! let keys: Vec<u32> = (0..10_000u32).map(|i| i * 2 + 1).collect();
//! store.insert_batch(&keys);
//!
//! let probes: Vec<u32> = (0..20_000u32).collect();
//! let mut sel = SelectionVector::new();
//! store.contains_batch(&probes, &mut sel);
//! // Every inserted key qualifies; non-members only as false positives.
//! assert!(sel.len() >= keys.len());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod builder;
mod shard;
mod stats;
mod store;

pub use builder::{ConfigSource, StoreBuilder};
pub use stats::{ShardStats, StoreStats};
pub use store::{ShardedFilterStore, StoreSnapshot};
