//! Construction of sharded stores — shard count, per-shard budget, and
//! either a pinned filter configuration or one chosen by the
//! `FilterAdvisor` — and of tiered stores, where the advisor makes that
//! choice once per level. Both builders share the same
//! [`LifecycleOptions`] (rebuild policy + execution mode) and the same
//! optional [`ReadviseOptions`] for online re-advising.

use crate::maintainer::RebuildMode;
use crate::options::{LifecycleOptions, ReadviseOptions, StoreOptions};
use crate::policy::RebuildPolicy;
use crate::shard::BloomDeleteMode;
use crate::store::ShardedFilterStore;
use crate::tiered::{CompactionPolicy, SizeRatio, TierLevel, TieredStore};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{ConfigSpace, FilterAdvisor, FilterConfig, LevelSpec, WorkloadSpec};
use pof_filter::FilterKind;
use std::sync::Arc;

/// Where the per-shard filter configuration comes from.
#[derive(Debug, Clone, Copy)]
pub enum ConfigSource {
    /// Use exactly this configuration for every shard.
    Pinned(FilterConfig),
    /// Ask the [`FilterAdvisor`] (synthetic calibration over the default
    /// configuration space) for the performance-optimal configuration, given
    /// the work each filtered-out lookup saves and the expected hit rate.
    ///
    /// This legacy form carries no delete-rate or probe-volume terms, so the
    /// advisor sweeps only the mutable families. Prefer
    /// [`AdvisedLevel`](Self::AdvisedLevel), which consumes a full
    /// [`LevelSpec`].
    Advised {
        /// Work (CPU cycles) saved for every probe a shard filter rejects.
        work_saved_cycles: f64,
        /// Fraction of probes that are true members.
        sigma: f64,
    },
    /// Ask [`FilterAdvisor::recommend_for_level`] over the fuse-enabled
    /// configuration space, honoring the spec's delete rate (which also
    /// selects the Bloom delete mode) and expected probe volume (which
    /// amortizes immutable build cost).
    AdvisedLevel(LevelSpec),
}

/// Builder for [`ShardedFilterStore`].
///
/// ```
/// use pof_store::StoreBuilder;
///
/// let store = StoreBuilder::new()
///     .shards(8)
///     .expected_keys(1 << 16)
///     .bits_per_key(14.0)
///     .build();
/// assert_eq!(store.shard_count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    shards: usize,
    expected_keys: usize,
    bits_per_key: f64,
    config: ConfigSource,
    lifecycle: LifecycleOptions,
    bloom_deletes: BloomDeleteMode,
    readvise: Option<ReadviseOptions>,
}

impl Default for StoreBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreBuilder {
    /// Defaults: 8 shards, 64k expected keys, 12 bits/key, the paper's
    /// canonical high-throughput Bloom configuration (cache-sectorized,
    /// 512-bit blocks, 64-bit sectors, z = 2, k = 8, magic addressing), and
    /// [`LifecycleOptions::default`] (saturation-doubling, inline rebuilds).
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: 8,
            expected_keys: 64 * 1024,
            bits_per_key: 12.0,
            config: ConfigSource::Pinned(FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            ))),
            lifecycle: LifecycleOptions::default(),
            bloom_deletes: BloomDeleteMode::Tombstone,
            readvise: None,
        }
    }

    /// Number of shards. Rounded up to the next power of two at build time.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Expected total key count, used to size each shard's initial filter
    /// (shards grow on demand, so this is a sizing hint, not a limit).
    #[must_use]
    pub fn expected_keys(mut self, keys: usize) -> Self {
        self.expected_keys = keys;
        self
    }

    /// Per-shard filter budget in bits per key.
    #[must_use]
    pub fn bits_per_key(mut self, bits_per_key: f64) -> Self {
        self.bits_per_key = bits_per_key;
        self
    }

    /// Pin an explicit filter configuration for every shard.
    #[must_use]
    pub fn config(mut self, config: FilterConfig) -> Self {
        self.config = ConfigSource::Pinned(config);
        self
    }

    /// Select the shard-lifecycle [`RebuildPolicy`]: when shards rebuild
    /// their filters, how rebuild capacity is chosen, and whether saturated
    /// writes are deferred to [`maintain`](ShardedFilterStore::maintain).
    ///
    /// Defaults to [`SaturationDoubling`](crate::SaturationDoubling) (inline
    /// doubling, the store's classic behavior). See
    /// [`FprDrift`](crate::FprDrift) and
    /// [`DeferredBatch`](crate::DeferredBatch) for the other built-ins; any
    /// `Arc<dyn RebuildPolicy>` works, one instance is shared by all shards.
    #[must_use]
    pub fn rebuild_policy(mut self, policy: Arc<dyn RebuildPolicy>) -> Self {
        self.lifecycle.policy = policy;
        self
    }

    /// Replace the whole shard-lifecycle pair (rebuild policy + execution
    /// mode) at once — the same struct [`StoreOptions`] carries, shared with
    /// [`TieredStoreBuilder::lifecycle`].
    #[must_use]
    pub fn lifecycle(mut self, lifecycle: LifecycleOptions) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// Run policy-triggered rebuilds on a background maintainer thread
    /// instead of inline under the shard's write lock.
    #[deprecated(
        since = "0.1.0",
        note = "use rebuild_mode(RebuildMode::Background) (or RebuildMode::Inline)"
    )]
    #[must_use]
    pub fn background_rebuilds(mut self, background: bool) -> Self {
        self.lifecycle.rebuild_mode = if background {
            RebuildMode::Background
        } else {
            RebuildMode::Inline
        };
        self
    }

    /// Select the rebuild execution mode: [`RebuildMode::Inline`] (the
    /// default — rebuilds run synchronously under the shard's write lock),
    /// [`RebuildMode::Background`] (a saturating shard no longer stalls
    /// writers for a full filter replay: the writer records a
    /// pending-rebuild state and keeps serving, the maintainer builds the
    /// replacement off-lock from the shard's replay log, re-acquires the
    /// shard briefly to replay the bounded delta of writes that raced the
    /// build, and publishes the replacement with a single `Arc` swap —
    /// readers are wait-free in both modes, and
    /// [`ShardedFilterStore::maintain`] doubles as a deterministic drain
    /// barrier), or [`RebuildMode::Queued`], where rebuild jobs queue until
    /// the caller runs them via
    /// [`ShardedFilterStore::run_pending_rebuilds`]. Queued is the
    /// deterministic harness the interleaving and property tests drive, and
    /// the hook for embedding rebuilds in an external executor.
    #[must_use]
    pub fn rebuild_mode(mut self, mode: RebuildMode) -> Self {
        self.lifecycle.rebuild_mode = mode;
        self
    }

    /// Select how Bloom shards honor deletes.
    ///
    /// The default, [`BloomDeleteMode::Tombstone`], costs no memory: deleted
    /// keys leave the bookkeeping at once while their filter bits linger
    /// until the policy's next (purge) rebuild. With
    /// [`BloomDeleteMode::Counting`] every Bloom shard filter carries a
    /// per-bit counting sidecar (4 bits per filter bit on the write side,
    /// 8 after counter saturation; snapshots never carry it) and deletes
    /// clear bits in place — tombstones stay at zero, policies stop
    /// scheduling purge rebuilds, and a delete-heavy Bloom store stops
    /// rebuilding at all, matching the in-place deletes Cuckoo shards always
    /// had. Cuckoo shards ignore this knob.
    #[must_use]
    pub fn bloom_deletes(mut self, mode: BloomDeleteMode) -> Self {
        self.bloom_deletes = mode;
        self
    }

    /// Let the [`FilterAdvisor`] choose the per-shard configuration *and*
    /// bits-per-key budget for the described workload (overriding
    /// [`bits_per_key`](Self::bits_per_key)).
    ///
    /// This form drops the workload's delete rate and probe volume, so it
    /// sweeps only the mutable families; [`advised_level`](Self::advised_level)
    /// takes the full [`LevelSpec`] and can also land on an immutable fuse
    /// filter or a counting-Bloom delete sidecar.
    #[must_use]
    pub fn advised(mut self, work_saved_cycles: f64, sigma: f64) -> Self {
        self.config = ConfigSource::Advised {
            work_saved_cycles,
            sigma,
        };
        self
    }

    /// Let the [`FilterAdvisor`] choose the configuration, bits-per-key
    /// budget *and* Bloom delete mode from a full [`LevelSpec`] — unlike
    /// [`advised`](Self::advised), the spec's `delete_rate` and
    /// `expected_probes_per_key` flow into the maintenance-weighted
    /// objective, so delete-heavy workloads get a counting sidecar and
    /// cold static ones may get an immutable fuse filter. A nonzero
    /// `spec.expected_keys` also overrides
    /// [`expected_keys`](Self::expected_keys) for sizing.
    #[must_use]
    pub fn advised_level(mut self, spec: LevelSpec) -> Self {
        self.config = ConfigSource::AdvisedLevel(spec);
        self
    }

    /// Enable online re-advising: the store observes its real traffic and
    /// [`ShardedFilterStore::run_pending_readvise`] (or `maintain()`)
    /// re-runs the advisor against it, migrating the filter family live once
    /// the hysteresis gate confirms a flip. For advised configurations the
    /// initial workload hint defaults to the advising spec; a
    /// pinned-configuration store uses `options.workload` as seeded.
    #[must_use]
    pub fn readvise(mut self, options: ReadviseOptions) -> Self {
        self.readvise = Some(options);
        self
    }

    /// Build the store.
    #[must_use]
    pub fn build(self) -> ShardedFilterStore {
        let shard_count = self.shards.max(1).next_power_of_two();
        let expected_keys = match self.config {
            ConfigSource::AdvisedLevel(spec) if spec.expected_keys > 0 => {
                spec.expected_keys as usize
            }
            _ => self.expected_keys,
        };
        let capacity_per_shard = (expected_keys / shard_count).max(64);
        let (config, bits_per_key, delete_mode, advised_hint) = match self.config {
            ConfigSource::Pinned(config) => (config, self.bits_per_key, self.bloom_deletes, None),
            ConfigSource::Advised {
                work_saved_cycles,
                sigma,
            } => {
                let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
                let recommendation = advisor.recommend(&WorkloadSpec {
                    n: capacity_per_shard as u64,
                    work_saved_cycles,
                    sigma,
                });
                let hint = LevelSpec {
                    expected_keys: capacity_per_shard as u64,
                    work_saved_cycles,
                    sigma,
                    ..LevelSpec::default()
                };
                (
                    recommendation.config,
                    recommendation.bits_per_key,
                    self.bloom_deletes,
                    Some(hint),
                )
            }
            ConfigSource::AdvisedLevel(spec) => {
                let spec = LevelSpec {
                    expected_keys: expected_keys as u64,
                    ..spec
                };
                let advisor =
                    FilterAdvisor::with_synthetic_calibration(ConfigSpace::default().with_fuse());
                let level = advisor.recommend_for_level(&spec);
                let delete_mode = if level.counting_deletes {
                    BloomDeleteMode::Counting
                } else {
                    BloomDeleteMode::Tombstone
                };
                (
                    level.recommendation.config,
                    level.recommendation.bits_per_key,
                    delete_mode,
                    Some(spec),
                )
            }
        };
        let readvise = self.readvise.map(|options| match advised_hint {
            Some(workload) => ReadviseOptions {
                workload,
                ..options
            },
            None => options,
        });
        ShardedFilterStore::from_options(StoreOptions {
            config,
            shard_count,
            capacity_per_shard,
            bits_per_key,
            lifecycle: self.lifecycle,
            delete_mode,
            readvise,
        })
    }
}

/// Where one tiered-store level's filter configuration comes from.
#[derive(Debug, Clone)]
enum LevelPlan {
    /// Ask [`FilterAdvisor::recommend_for_level`] for the family, budget and
    /// delete mode.
    Advised(LevelSpec),
    /// Use exactly this shape for the level.
    Pinned {
        spec: LevelSpec,
        config: FilterConfig,
        bits_per_key: f64,
        delete_mode: BloomDeleteMode,
    },
}

/// Builder for [`TieredStore`]: levels are declared newest-first, each
/// described by a [`LevelSpec`]; the advisor pins every advised level's
/// family (Bloom for hot/cheap-miss levels, an immutable fuse filter for
/// cold *static* expensive-miss levels, Cuckoo for cold levels that still
/// churn), bits-per-key budget and Bloom delete mode (counting for
/// delete-heavy Bloom levels, tombstone otherwise). Advised levels sweep
/// the fuse-enabled configuration space
/// ([`ConfigSpace::with_fuse`](pof_core::ConfigSpace::with_fuse)): the
/// build-cost term charges immutable candidates for their construction and
/// rebuild amplification, so fuse only wins where its memory/FPR edge pays
/// for the re-peels the level's churn would force.
///
/// ```
/// use pof_store::{LevelSpec, TieredStoreBuilder};
///
/// // A hot churn level in front of a cold simulated-disk level: the
/// // advisor picks a different family for each end of the t_w range.
/// let store = TieredStoreBuilder::new()
///     .level(LevelSpec {
///         expected_keys: 1 << 14,
///         work_saved_cycles: 32.0, // a skipped memtable probe
///         delete_rate: 0.5,
///         ..LevelSpec::default()
///     })
///     .level(LevelSpec {
///         expected_keys: 1 << 17,
///         work_saved_cycles: 16_000_000.0, // a skipped disk read
///         delete_rate: 0.0,
///         ..LevelSpec::default()
///     })
///     .build();
/// assert_eq!(store.level_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TieredStoreBuilder {
    levels: Vec<LevelPlan>,
    shards_per_level: usize,
    lifecycle: LifecycleOptions,
    compaction: Arc<dyn CompactionPolicy>,
    readvise: Option<ReadviseOptions>,
}

impl Default for TieredStoreBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TieredStoreBuilder {
    /// Defaults: no levels yet (add at least one), 4 shards per level,
    /// [`LifecycleOptions::default`] (saturation-doubling, inline rebuilds),
    /// and the [`SizeRatio`] compaction trigger.
    #[must_use]
    pub fn new() -> Self {
        Self {
            levels: Vec::new(),
            shards_per_level: 4,
            lifecycle: LifecycleOptions::default(),
            compaction: Arc::new(SizeRatio::default()),
            readvise: None,
        }
    }

    /// Append a level (newest first) whose family, bits-per-key budget and
    /// Bloom delete mode the advisor chooses from the level's workload shape
    /// via [`FilterAdvisor::recommend_for_level`].
    #[must_use]
    pub fn level(mut self, spec: LevelSpec) -> Self {
        self.levels.push(LevelPlan::Advised(spec));
        self
    }

    /// Append a level (newest first) with an explicitly pinned filter
    /// configuration, budget and delete mode — the deterministic path the
    /// oracle and interleaving tests drive.
    #[must_use]
    pub fn level_pinned(
        mut self,
        spec: LevelSpec,
        config: FilterConfig,
        bits_per_key: f64,
        delete_mode: BloomDeleteMode,
    ) -> Self {
        self.levels.push(LevelPlan::Pinned {
            spec,
            config,
            bits_per_key,
            delete_mode,
        });
        self
    }

    /// Shards per level store (rounded up to a power of two at build time).
    #[must_use]
    pub fn shards_per_level(mut self, shards: usize) -> Self {
        self.shards_per_level = shards;
        self
    }

    /// The shard-lifecycle [`RebuildPolicy`] every level's store uses.
    #[must_use]
    pub fn rebuild_policy(mut self, policy: Arc<dyn RebuildPolicy>) -> Self {
        self.lifecycle.policy = policy;
        self
    }

    /// Replace the whole shard-lifecycle pair every level's store uses —
    /// the same struct [`StoreBuilder::lifecycle`] takes.
    #[must_use]
    pub fn lifecycle(mut self, lifecycle: LifecycleOptions) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// Run every level's policy-triggered rebuilds on that store's
    /// background maintainer thread.
    #[deprecated(
        since = "0.1.0",
        note = "use rebuild_mode(RebuildMode::Background) (or RebuildMode::Inline)"
    )]
    #[must_use]
    pub fn background_rebuilds(mut self, background: bool) -> Self {
        self.lifecycle.rebuild_mode = if background {
            RebuildMode::Background
        } else {
            RebuildMode::Inline
        };
        self
    }

    /// Select the rebuild execution mode for every level (see
    /// [`StoreBuilder::rebuild_mode`]) — notably [`RebuildMode::Queued`],
    /// which lets a test interleave a [`TieredStore::compact`] into a
    /// pending shard rebuild's delta window via
    /// [`TieredStore::run_pending_rebuilds`].
    #[must_use]
    pub fn rebuild_mode(mut self, mode: RebuildMode) -> Self {
        self.lifecycle.rebuild_mode = mode;
        self
    }

    /// The [`CompactionPolicy`] deciding when levels spill. Defaults to
    /// [`SizeRatio`]; [`ManualCompaction`](crate::ManualCompaction) leaves
    /// every spill to explicit [`TieredStore::compact`] calls.
    #[must_use]
    pub fn compaction(mut self, policy: Arc<dyn CompactionPolicy>) -> Self {
        self.compaction = policy;
        self
    }

    /// Enable online re-advising on every level's store. Each level's
    /// initial workload hint is that level's declared [`LevelSpec`]
    /// (`options.workload` is ignored); update a live level's hint with
    /// [`TieredStore::set_level_workload_hint`] and drive evaluations with
    /// [`TieredStore::run_pending_readvise`].
    #[must_use]
    pub fn readvise(mut self, options: ReadviseOptions) -> Self {
        self.readvise = Some(options);
        self
    }

    /// Build the tiered store.
    ///
    /// # Panics
    /// If no level was declared.
    #[must_use]
    pub fn build(self) -> TieredStore {
        let (levels, compaction) = self.resolved();
        let levels = levels
            .into_iter()
            .map(|(spec, options)| TierLevel::new(ShardedFilterStore::from_options(options), spec))
            .collect();
        TieredStore::from_levels(levels, compaction)
    }

    /// Resolve every declared level to the [`StoreOptions`] its store would
    /// be built from, without constructing anything — the shared front half
    /// of [`Self::build`] and [`TieredStore::open_with`], so a recovered
    /// store and a freshly built one agree on every knob the disk does not
    /// record (policies, rebuild mode, re-advising).
    ///
    /// # Panics
    /// If no level was declared.
    pub(crate) fn resolved(self) -> (Vec<(LevelSpec, StoreOptions)>, Arc<dyn CompactionPolicy>) {
        assert!(
            !self.levels.is_empty(),
            "a tiered store needs at least one level"
        );
        let shard_count = self.shards_per_level.max(1).next_power_of_two();
        // One advisor shared by every advised level, built lazily so fully
        // pinned stores — the deterministic test path — skip the calibration
        // sweep entirely. Tiered stores sweep the fuse-enabled space: a
        // level's store routes every mutation on an immutable shard through
        // the snapshot→build→swap machinery, so the advisor is free to put
        // cold static levels on a fuse filter.
        let mut advisor: Option<FilterAdvisor> = None;
        let levels = self
            .levels
            .into_iter()
            .map(|plan| {
                let (spec, config, bits_per_key, delete_mode) = match plan {
                    LevelPlan::Pinned {
                        spec,
                        config,
                        bits_per_key,
                        delete_mode,
                    } => (spec, config, bits_per_key, delete_mode),
                    LevelPlan::Advised(spec) => {
                        let advisor = advisor.get_or_insert_with(|| {
                            FilterAdvisor::with_synthetic_calibration(
                                ConfigSpace::default().with_fuse(),
                            )
                        });
                        let level = advisor.recommend_for_level(&spec);
                        let delete_mode = if level.counting_deletes {
                            BloomDeleteMode::Counting
                        } else {
                            BloomDeleteMode::Tombstone
                        };
                        debug_assert!(
                            level.recommendation.config.kind() == FilterKind::Bloom
                                || delete_mode == BloomDeleteMode::Tombstone
                        );
                        (
                            spec,
                            level.recommendation.config,
                            level.recommendation.bits_per_key,
                            delete_mode,
                        )
                    }
                };
                let capacity_per_shard = (spec.expected_keys as usize / shard_count).max(64);
                let readvise = self.readvise.map(|options| ReadviseOptions {
                    workload: spec,
                    ..options
                });
                (
                    spec,
                    StoreOptions {
                        config,
                        shard_count,
                        capacity_per_shard,
                        bits_per_key,
                        lifecycle: self.lifecycle.clone(),
                        delete_mode,
                        readvise,
                    },
                )
            })
            .collect();
        (levels, self.compaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SaturationDoubling;

    #[test]
    fn pinned_builder_uses_requested_shape() {
        let config =
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo));
        let store = StoreBuilder::new()
            .shards(3)
            .expected_keys(10_000)
            .bits_per_key(10.0)
            .config(config)
            .build();
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.config(), config);
    }

    #[test]
    fn builder_selects_the_rebuild_policy() {
        use crate::policy::{DeferredBatch, FprDrift};
        for (policy, name) in [
            (
                Arc::new(SaturationDoubling) as Arc<dyn RebuildPolicy>,
                "saturation-doubling",
            ),
            (Arc::new(FprDrift::new(2.0)), "fpr-drift"),
            (Arc::new(DeferredBatch::new(512)), "deferred-batch"),
        ] {
            let store = StoreBuilder::new()
                .shards(2)
                .expected_keys(1_000)
                .rebuild_policy(policy)
                .build();
            store.insert_batch(&[1, 2, 3]);
            assert!(store.stats().shards.iter().all(|s| s.policy == name));
        }
    }

    #[test]
    fn advised_builder_picks_bloom_for_high_throughput() {
        let store = StoreBuilder::new()
            .shards(4)
            .expected_keys(1 << 18)
            .advised(64.0, 0.1)
            .build();
        assert_eq!(store.config().kind(), FilterKind::Bloom);
    }

    #[test]
    fn advised_builder_picks_cuckoo_for_expensive_misses() {
        let store = StoreBuilder::new()
            .shards(4)
            .expected_keys(1 << 18)
            .advised(20_000_000.0, 0.1)
            .build();
        assert_eq!(store.config().kind(), FilterKind::Cuckoo);
    }

    #[test]
    fn advised_level_keeps_the_delete_rate_the_flat_form_drops() {
        // The same cold expensive-miss workload, with and without churn:
        // `advised(w, sigma)` cannot see the delete rate, but
        // `advised_level` feeds it into the maintenance-weighted objective —
        // a churny cold level lands on Cuckoo (in-place deletes), a static
        // one on the immutable fuse family, and a delete-heavy hot level
        // gets a counting-Bloom sidecar.
        let churny = StoreBuilder::new()
            .shards(2)
            .advised_level(LevelSpec {
                expected_keys: 1 << 17,
                work_saved_cycles: 16_000_000.0,
                delete_rate: 0.5,
                ..LevelSpec::default()
            })
            .build();
        assert_eq!(churny.config().kind(), FilterKind::Cuckoo);

        let static_cold = StoreBuilder::new()
            .shards(2)
            .advised_level(LevelSpec {
                expected_keys: 1 << 17,
                work_saved_cycles: 16_000_000.0,
                delete_rate: 0.0,
                ..LevelSpec::default()
            })
            .build();
        assert_eq!(static_cold.config().kind(), FilterKind::Fuse);

        let hot_churny = StoreBuilder::new()
            .shards(2)
            .advised_level(LevelSpec {
                expected_keys: 1 << 14,
                work_saved_cycles: 32.0,
                delete_rate: 0.5,
                ..LevelSpec::default()
            })
            .build();
        assert_eq!(hot_churny.config().kind(), FilterKind::Bloom);
        assert_eq!(hot_churny.delete_mode(), BloomDeleteMode::Counting);
    }

    #[test]
    fn readvise_builder_seeds_the_workload_hint_from_the_advising_spec() {
        let spec = LevelSpec {
            expected_keys: 1 << 14,
            work_saved_cycles: 32.0,
            delete_rate: 0.5,
            ..LevelSpec::default()
        };
        let store = StoreBuilder::new()
            .shards(2)
            .advised_level(spec)
            .readvise(ReadviseOptions::default())
            .build();
        let observed = store.observed_level_spec();
        assert_eq!(observed.work_saved_cycles, spec.work_saved_cycles);
        assert_eq!(observed.sigma, spec.sigma);
    }

    #[test]
    fn advised_tiered_builder_flips_families_and_delete_modes_across_levels() {
        // The paper's per-level t_w story end to end, extended by the
        // build-cost term: a delete-heavy hot level with cheap misses gets a
        // counting Bloom filter; a *static* cold level behind simulated-disk
        // misses gets an immutable fuse filter (best memory/FPR, and no
        // churn to amplify its re-peel cost); a cold level that still churns
        // gets Cuckoo (in-place deletes beat repeated whole-set re-peels).
        let store = TieredStoreBuilder::new()
            .level(LevelSpec {
                expected_keys: 1 << 14,
                work_saved_cycles: 32.0,
                delete_rate: 0.5,
                ..LevelSpec::default()
            })
            .level(LevelSpec {
                expected_keys: 1 << 17,
                work_saved_cycles: 16_000_000.0,
                delete_rate: 0.5,
                ..LevelSpec::default()
            })
            .level(LevelSpec {
                expected_keys: 1 << 17,
                work_saved_cycles: 16_000_000.0,
                delete_rate: 0.0,
                ..LevelSpec::default()
            })
            .shards_per_level(2)
            .build();
        let stats = store.stats();
        assert_eq!(stats.levels[0].family, FilterKind::Bloom);
        assert_eq!(stats.levels[0].delete_mode, BloomDeleteMode::Counting);
        assert!(!store.level_store(0).config().immutable());
        assert_eq!(stats.levels[1].family, FilterKind::Cuckoo);
        assert_eq!(stats.levels[1].delete_mode, BloomDeleteMode::Tombstone);
        assert_eq!(stats.levels[2].family, FilterKind::Fuse);
        assert_eq!(stats.levels[2].delete_mode, BloomDeleteMode::Tombstone);
        assert!(store.level_store(2).config().immutable());
        assert!(stats.levels[2].fingerprint_bits > 0);
        assert_eq!(stats.compaction_policy, "size-ratio");
    }
}
