//! Construction of sharded stores — shard count, per-shard budget, and
//! either a pinned filter configuration or one chosen by the
//! `FilterAdvisor` — and of tiered stores, where the advisor makes that
//! choice once per level.

use crate::maintainer::RebuildMode;
use crate::policy::{RebuildPolicy, SaturationDoubling};
use crate::shard::BloomDeleteMode;
use crate::store::ShardedFilterStore;
use crate::tiered::{CompactionPolicy, SizeRatio, TierLevel, TieredStore};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{ConfigSpace, FilterAdvisor, FilterConfig, LevelSpec, WorkloadSpec};
use pof_filter::FilterKind;
use std::sync::Arc;

/// Where the per-shard filter configuration comes from.
#[derive(Debug, Clone, Copy)]
pub enum ConfigSource {
    /// Use exactly this configuration for every shard.
    Pinned(FilterConfig),
    /// Ask the [`FilterAdvisor`] (synthetic calibration over the default
    /// configuration space) for the performance-optimal configuration, given
    /// the work each filtered-out lookup saves and the expected hit rate.
    Advised {
        /// Work (CPU cycles) saved for every probe a shard filter rejects.
        work_saved_cycles: f64,
        /// Fraction of probes that are true members.
        sigma: f64,
    },
}

/// Builder for [`ShardedFilterStore`].
///
/// ```
/// use pof_store::StoreBuilder;
///
/// let store = StoreBuilder::new()
///     .shards(8)
///     .expected_keys(1 << 16)
///     .bits_per_key(14.0)
///     .build();
/// assert_eq!(store.shard_count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    shards: usize,
    expected_keys: usize,
    bits_per_key: f64,
    config: ConfigSource,
    policy: Arc<dyn RebuildPolicy>,
    rebuild_mode: RebuildMode,
    bloom_deletes: BloomDeleteMode,
}

impl Default for StoreBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreBuilder {
    /// Defaults: 8 shards, 64k expected keys, 12 bits/key, the paper's
    /// canonical high-throughput Bloom configuration (cache-sectorized,
    /// 512-bit blocks, 64-bit sectors, z = 2, k = 8, magic addressing), and
    /// the [`SaturationDoubling`] lifecycle policy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: 8,
            expected_keys: 64 * 1024,
            bits_per_key: 12.0,
            config: ConfigSource::Pinned(FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            ))),
            policy: Arc::new(SaturationDoubling),
            rebuild_mode: RebuildMode::Inline,
            bloom_deletes: BloomDeleteMode::Tombstone,
        }
    }

    /// Number of shards. Rounded up to the next power of two at build time.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Expected total key count, used to size each shard's initial filter
    /// (shards grow on demand, so this is a sizing hint, not a limit).
    #[must_use]
    pub fn expected_keys(mut self, keys: usize) -> Self {
        self.expected_keys = keys;
        self
    }

    /// Per-shard filter budget in bits per key.
    #[must_use]
    pub fn bits_per_key(mut self, bits_per_key: f64) -> Self {
        self.bits_per_key = bits_per_key;
        self
    }

    /// Pin an explicit filter configuration for every shard.
    #[must_use]
    pub fn config(mut self, config: FilterConfig) -> Self {
        self.config = ConfigSource::Pinned(config);
        self
    }

    /// Select the shard-lifecycle [`RebuildPolicy`]: when shards rebuild
    /// their filters, how rebuild capacity is chosen, and whether saturated
    /// writes are deferred to [`maintain`](ShardedFilterStore::maintain).
    ///
    /// Defaults to [`SaturationDoubling`] (inline doubling, the store's
    /// classic behavior). See [`FprDrift`](crate::FprDrift) and
    /// [`DeferredBatch`](crate::DeferredBatch) for the other built-ins; any
    /// `Arc<dyn RebuildPolicy>` works, one instance is shared by all shards.
    #[must_use]
    pub fn rebuild_policy(mut self, policy: Arc<dyn RebuildPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Run policy-triggered rebuilds on a background maintainer thread
    /// instead of inline under the shard's write lock.
    ///
    /// When on, a saturating shard no longer stalls writers for a full
    /// filter replay: the writer records a pending-rebuild state and keeps
    /// serving, the maintainer builds the replacement off-lock from the
    /// shard's replay log, re-acquires the shard briefly to replay the
    /// bounded delta of writes that raced the build, and publishes the
    /// replacement with a single `Arc` swap. Readers are wait-free in both
    /// modes. [`ShardedFilterStore::maintain`] doubles as a deterministic
    /// drain barrier. Defaults to `false`: the synchronous path is
    /// bit-for-bit the classic inline behavior.
    #[must_use]
    pub fn background_rebuilds(mut self, background: bool) -> Self {
        self.rebuild_mode = if background {
            RebuildMode::Background
        } else {
            RebuildMode::Inline
        };
        self
    }

    /// Select the rebuild execution mode explicitly — notably
    /// [`RebuildMode::Queued`], where rebuild jobs queue until the caller
    /// runs them via [`ShardedFilterStore::run_pending_rebuilds`]. That is
    /// the deterministic harness the interleaving and property tests drive,
    /// and the hook for embedding rebuilds in an external executor.
    #[must_use]
    pub fn rebuild_mode(mut self, mode: RebuildMode) -> Self {
        self.rebuild_mode = mode;
        self
    }

    /// Select how Bloom shards honor deletes.
    ///
    /// The default, [`BloomDeleteMode::Tombstone`], costs no memory: deleted
    /// keys leave the bookkeeping at once while their filter bits linger
    /// until the policy's next (purge) rebuild. With
    /// [`BloomDeleteMode::Counting`] every Bloom shard filter carries a
    /// per-bit counting sidecar (4 bits per filter bit on the write side,
    /// 8 after counter saturation; snapshots never carry it) and deletes
    /// clear bits in place — tombstones stay at zero, policies stop
    /// scheduling purge rebuilds, and a delete-heavy Bloom store stops
    /// rebuilding at all, matching the in-place deletes Cuckoo shards always
    /// had. Cuckoo shards ignore this knob.
    #[must_use]
    pub fn bloom_deletes(mut self, mode: BloomDeleteMode) -> Self {
        self.bloom_deletes = mode;
        self
    }

    /// Let the [`FilterAdvisor`] choose the per-shard configuration *and*
    /// bits-per-key budget for the described workload (overriding
    /// [`bits_per_key`](Self::bits_per_key)).
    #[must_use]
    pub fn advised(mut self, work_saved_cycles: f64, sigma: f64) -> Self {
        self.config = ConfigSource::Advised {
            work_saved_cycles,
            sigma,
        };
        self
    }

    /// Build the store.
    #[must_use]
    pub fn build(self) -> ShardedFilterStore {
        let shard_count = self.shards.max(1).next_power_of_two();
        let capacity_per_shard = (self.expected_keys / shard_count).max(64);
        let (config, bits_per_key) = match self.config {
            ConfigSource::Pinned(config) => (config, self.bits_per_key),
            ConfigSource::Advised {
                work_saved_cycles,
                sigma,
            } => {
                let advisor = FilterAdvisor::with_synthetic_calibration(ConfigSpace::default());
                let recommendation = advisor.recommend(&WorkloadSpec {
                    n: capacity_per_shard as u64,
                    work_saved_cycles,
                    sigma,
                });
                (recommendation.config, recommendation.bits_per_key)
            }
        };
        ShardedFilterStore::with_options(
            config,
            shard_count,
            capacity_per_shard,
            bits_per_key,
            self.policy,
            self.rebuild_mode,
            self.bloom_deletes,
        )
    }
}

/// Where one tiered-store level's filter configuration comes from.
#[derive(Debug, Clone)]
enum LevelPlan {
    /// Ask [`FilterAdvisor::recommend_for_level`] for the family, budget and
    /// delete mode.
    Advised(LevelSpec),
    /// Use exactly this shape for the level.
    Pinned {
        spec: LevelSpec,
        config: FilterConfig,
        bits_per_key: f64,
        delete_mode: BloomDeleteMode,
    },
}

/// Builder for [`TieredStore`]: levels are declared newest-first, each
/// described by a [`LevelSpec`]; the advisor pins every advised level's
/// family (Bloom for hot/cheap-miss levels, an immutable fuse filter for
/// cold *static* expensive-miss levels, Cuckoo for cold levels that still
/// churn), bits-per-key budget and Bloom delete mode (counting for
/// delete-heavy Bloom levels, tombstone otherwise). Advised levels sweep
/// the fuse-enabled configuration space
/// ([`ConfigSpace::with_fuse`](pof_core::ConfigSpace::with_fuse)): the
/// build-cost term charges immutable candidates for their construction and
/// rebuild amplification, so fuse only wins where its memory/FPR edge pays
/// for the re-peels the level's churn would force.
///
/// ```
/// use pof_store::{LevelSpec, TieredStoreBuilder};
///
/// // A hot churn level in front of a cold simulated-disk level: the
/// // advisor picks a different family for each end of the t_w range.
/// let store = TieredStoreBuilder::new()
///     .level(LevelSpec {
///         expected_keys: 1 << 14,
///         work_saved_cycles: 32.0, // a skipped memtable probe
///         delete_rate: 0.5,
///         ..LevelSpec::default()
///     })
///     .level(LevelSpec {
///         expected_keys: 1 << 17,
///         work_saved_cycles: 16_000_000.0, // a skipped disk read
///         delete_rate: 0.0,
///         ..LevelSpec::default()
///     })
///     .build();
/// assert_eq!(store.level_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TieredStoreBuilder {
    levels: Vec<LevelPlan>,
    shards_per_level: usize,
    policy: Arc<dyn RebuildPolicy>,
    rebuild_mode: RebuildMode,
    compaction: Arc<dyn CompactionPolicy>,
}

impl Default for TieredStoreBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TieredStoreBuilder {
    /// Defaults: no levels yet (add at least one), 4 shards per level, the
    /// [`SaturationDoubling`] shard lifecycle, inline rebuilds, and the
    /// [`SizeRatio`] compaction trigger.
    #[must_use]
    pub fn new() -> Self {
        Self {
            levels: Vec::new(),
            shards_per_level: 4,
            policy: Arc::new(SaturationDoubling),
            rebuild_mode: RebuildMode::Inline,
            compaction: Arc::new(SizeRatio::default()),
        }
    }

    /// Append a level (newest first) whose family, bits-per-key budget and
    /// Bloom delete mode the advisor chooses from the level's workload shape
    /// via [`FilterAdvisor::recommend_for_level`].
    #[must_use]
    pub fn level(mut self, spec: LevelSpec) -> Self {
        self.levels.push(LevelPlan::Advised(spec));
        self
    }

    /// Append a level (newest first) with an explicitly pinned filter
    /// configuration, budget and delete mode — the deterministic path the
    /// oracle and interleaving tests drive.
    #[must_use]
    pub fn level_pinned(
        mut self,
        spec: LevelSpec,
        config: FilterConfig,
        bits_per_key: f64,
        delete_mode: BloomDeleteMode,
    ) -> Self {
        self.levels.push(LevelPlan::Pinned {
            spec,
            config,
            bits_per_key,
            delete_mode,
        });
        self
    }

    /// Shards per level store (rounded up to a power of two at build time).
    #[must_use]
    pub fn shards_per_level(mut self, shards: usize) -> Self {
        self.shards_per_level = shards;
        self
    }

    /// The shard-lifecycle [`RebuildPolicy`] every level's store uses.
    #[must_use]
    pub fn rebuild_policy(mut self, policy: Arc<dyn RebuildPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Run every level's policy-triggered rebuilds on that store's
    /// background maintainer thread (see
    /// [`StoreBuilder::background_rebuilds`]).
    #[must_use]
    pub fn background_rebuilds(mut self, background: bool) -> Self {
        self.rebuild_mode = if background {
            RebuildMode::Background
        } else {
            RebuildMode::Inline
        };
        self
    }

    /// Select the rebuild execution mode for every level explicitly —
    /// notably [`RebuildMode::Queued`], which lets a test interleave a
    /// [`TieredStore::compact`] into a pending shard rebuild's delta window
    /// via [`TieredStore::run_pending_rebuilds`].
    #[must_use]
    pub fn rebuild_mode(mut self, mode: RebuildMode) -> Self {
        self.rebuild_mode = mode;
        self
    }

    /// The [`CompactionPolicy`] deciding when levels spill. Defaults to
    /// [`SizeRatio`]; [`ManualCompaction`](crate::ManualCompaction) leaves
    /// every spill to explicit [`TieredStore::compact`] calls.
    #[must_use]
    pub fn compaction(mut self, policy: Arc<dyn CompactionPolicy>) -> Self {
        self.compaction = policy;
        self
    }

    /// Build the tiered store.
    ///
    /// # Panics
    /// If no level was declared.
    #[must_use]
    pub fn build(self) -> TieredStore {
        assert!(
            !self.levels.is_empty(),
            "a tiered store needs at least one level"
        );
        let shard_count = self.shards_per_level.max(1).next_power_of_two();
        // One advisor shared by every advised level, built lazily so fully
        // pinned stores — the deterministic test path — skip the calibration
        // sweep entirely. Tiered stores sweep the fuse-enabled space: a
        // level's store routes every mutation on an immutable shard through
        // the snapshot→build→swap machinery, so the advisor is free to put
        // cold static levels on a fuse filter.
        let mut advisor: Option<FilterAdvisor> = None;
        let levels = self
            .levels
            .into_iter()
            .map(|plan| {
                let (spec, config, bits_per_key, delete_mode) = match plan {
                    LevelPlan::Pinned {
                        spec,
                        config,
                        bits_per_key,
                        delete_mode,
                    } => (spec, config, bits_per_key, delete_mode),
                    LevelPlan::Advised(spec) => {
                        let advisor = advisor.get_or_insert_with(|| {
                            FilterAdvisor::with_synthetic_calibration(
                                ConfigSpace::default().with_fuse(),
                            )
                        });
                        let level = advisor.recommend_for_level(&spec);
                        let delete_mode = if level.counting_deletes {
                            BloomDeleteMode::Counting
                        } else {
                            BloomDeleteMode::Tombstone
                        };
                        debug_assert!(
                            level.recommendation.config.kind() == FilterKind::Bloom
                                || delete_mode == BloomDeleteMode::Tombstone
                        );
                        (
                            spec,
                            level.recommendation.config,
                            level.recommendation.bits_per_key,
                            delete_mode,
                        )
                    }
                };
                let capacity_per_shard = (spec.expected_keys as usize / shard_count).max(64);
                let store = ShardedFilterStore::with_options(
                    config,
                    shard_count,
                    capacity_per_shard,
                    bits_per_key,
                    Arc::clone(&self.policy),
                    self.rebuild_mode,
                    delete_mode,
                );
                TierLevel::new(store, spec, delete_mode, bits_per_key)
            })
            .collect();
        TieredStore::from_levels(levels, self.compaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_builder_uses_requested_shape() {
        let config =
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo));
        let store = StoreBuilder::new()
            .shards(3)
            .expected_keys(10_000)
            .bits_per_key(10.0)
            .config(config)
            .build();
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.config(), config);
    }

    #[test]
    fn builder_selects_the_rebuild_policy() {
        use crate::policy::{DeferredBatch, FprDrift};
        for (policy, name) in [
            (
                Arc::new(SaturationDoubling) as Arc<dyn RebuildPolicy>,
                "saturation-doubling",
            ),
            (Arc::new(FprDrift::new(2.0)), "fpr-drift"),
            (Arc::new(DeferredBatch::new(512)), "deferred-batch"),
        ] {
            let store = StoreBuilder::new()
                .shards(2)
                .expected_keys(1_000)
                .rebuild_policy(policy)
                .build();
            store.insert_batch(&[1, 2, 3]);
            assert!(store.stats().shards.iter().all(|s| s.policy == name));
        }
    }

    #[test]
    fn advised_builder_picks_bloom_for_high_throughput() {
        let store = StoreBuilder::new()
            .shards(4)
            .expected_keys(1 << 18)
            .advised(64.0, 0.1)
            .build();
        assert_eq!(store.config().kind(), FilterKind::Bloom);
    }

    #[test]
    fn advised_builder_picks_cuckoo_for_expensive_misses() {
        let store = StoreBuilder::new()
            .shards(4)
            .expected_keys(1 << 18)
            .advised(20_000_000.0, 0.1)
            .build();
        assert_eq!(store.config().kind(), FilterKind::Cuckoo);
    }

    #[test]
    fn advised_tiered_builder_flips_families_and_delete_modes_across_levels() {
        // The paper's per-level t_w story end to end, extended by the
        // build-cost term: a delete-heavy hot level with cheap misses gets a
        // counting Bloom filter; a *static* cold level behind simulated-disk
        // misses gets an immutable fuse filter (best memory/FPR, and no
        // churn to amplify its re-peel cost); a cold level that still churns
        // gets Cuckoo (in-place deletes beat repeated whole-set re-peels).
        let store = TieredStoreBuilder::new()
            .level(LevelSpec {
                expected_keys: 1 << 14,
                work_saved_cycles: 32.0,
                delete_rate: 0.5,
                ..LevelSpec::default()
            })
            .level(LevelSpec {
                expected_keys: 1 << 17,
                work_saved_cycles: 16_000_000.0,
                delete_rate: 0.5,
                ..LevelSpec::default()
            })
            .level(LevelSpec {
                expected_keys: 1 << 17,
                work_saved_cycles: 16_000_000.0,
                delete_rate: 0.0,
                ..LevelSpec::default()
            })
            .shards_per_level(2)
            .build();
        let stats = store.stats();
        assert_eq!(stats.levels[0].family, FilterKind::Bloom);
        assert_eq!(stats.levels[0].delete_mode, BloomDeleteMode::Counting);
        assert!(!store.level_store(0).config().immutable());
        assert_eq!(stats.levels[1].family, FilterKind::Cuckoo);
        assert_eq!(stats.levels[1].delete_mode, BloomDeleteMode::Tombstone);
        assert_eq!(stats.levels[2].family, FilterKind::Fuse);
        assert_eq!(stats.levels[2].delete_mode, BloomDeleteMode::Tombstone);
        assert!(store.level_store(2).config().immutable());
        assert!(stats.levels[2].fingerprint_bits > 0);
        assert_eq!(stats.compaction_policy, "size-ratio");
    }
}
