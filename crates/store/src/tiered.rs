//! Tiered (LSM-style) stores: one [`ShardedFilterStore`] per level, each
//! level's filter family, bits-per-key budget and delete mode chosen by the
//! advisor from the level's workload shape.
//!
//! The paper's core result is that the performance-optimal family flips with
//! the per-tuple work `t_w` — exactly the quantity that differs per LSM
//! level. A hot level absorbs churn and its misses cost tens of cycles (a
//! skipped memtable probe): the skyline puts it on a blocked Bloom filter. A
//! cold level is large, mostly immutable, and a miss there costs a simulated
//! disk read: the skyline puts it on a Cuckoo filter — or, when the level is
//! fully static, on an immutable binary-fuse filter, whose whole-set re-peel
//! the level's store absorbs through its rebuild machinery. The [`TieredStore`]
//! makes that per-level story executable: each level is described by a
//! [`LevelSpec`] (`expected_keys`, `t_w`, σ, delete rate), fed through
//! [`FilterAdvisor::recommend_for_level`](pof_core::FilterAdvisor::recommend_for_level)
//! at build time, and served by its own sharded store — so every subsystem
//! the flat store already has (rebuild policies, background maintainers,
//! counting-Bloom deletes) composes per level.
//!
//! Semantics:
//!
//! * **Lookups** probe levels newest→oldest and short-circuit on the first
//!   positive level — the LSM read path, with the usual filter contract (no
//!   false negatives; a false positive costs one wasted level probe).
//! * **Inserts** land in level 0 and *shadow* older occurrences: the key is
//!   deleted from every older level, so each key lives in exactly one level
//!   and [`TieredStore::key_count`] stays exact. (The per-level stores keep
//!   exact write-side bookkeeping, which makes the shadow delete precise.)
//! * **Deletes** remove the key from whichever level holds it.
//! * **[`TieredStore::compact`]** merges a level's live key set into the
//!   next level's store. The destination grows through its own
//!   [`RebuildPolicy`](crate::RebuildPolicy) and rebuild mode — inline,
//!   threaded maintainer, or queued for a deterministic harness — so a
//!   compaction can race a pending shard rebuild, which the interleave suite
//!   enumerates. A [`CompactionPolicy`] (default: [`SizeRatio`]) decides
//!   *when* levels spill.

use crate::builder::TieredStoreBuilder;
use crate::persist::PersistOptions;
use crate::stats::{LevelStats, TieredStats};
use crate::store::{ProbeScratch, ShardedFilterStore};
use pof_core::LevelSpec;
use pof_filter::SelectionVector;
use pof_persist::{write_meta, PersistError, StoreMeta};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Compile-time audit that tiered stores can be shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TieredStore>();
};

/// What a [`CompactionPolicy`] sees when deciding whether one level should
/// spill into the next. Only non-terminal levels are offered (the oldest
/// level has nowhere to spill).
#[derive(Debug, Clone, Copy)]
pub struct LevelObservation {
    /// Index of the level under consideration (0 = newest).
    pub level: usize,
    /// Live keys currently resident in the level.
    pub live_keys: usize,
    /// Keys the level was sized for ([`LevelSpec::expected_keys`]).
    pub expected_keys: usize,
    /// Live keys in the next (older) level — the compaction destination.
    pub next_live_keys: usize,
    /// Keys the next level was sized for.
    pub next_expected_keys: usize,
}

/// Decides when a tiered store compacts a level into the next.
///
/// Consulted after every [`TieredStore::insert_batch`] and on
/// [`TieredStore::maintain`], level by level from newest to oldest (so one
/// pass propagates a cascade: level 0 spilling into level 1 can push level 1
/// over its own trigger, which the same pass then observes).
pub trait CompactionPolicy: std::fmt::Debug + Send + Sync {
    /// Should `observation.level` spill into the next level now?
    fn should_compact(&self, observation: &LevelObservation) -> bool;

    /// Short name for stats and logs.
    fn name(&self) -> &'static str;
}

/// The classic LSM size-ratio trigger: a level compacts into the next as
/// soon as its live key count exceeds `headroom ×` its
/// [`LevelSpec::expected_keys`] sizing. `headroom = 1.0` (the default)
/// spills exactly at the sizing; a larger headroom tolerates transient
/// overshoot between maintenance rounds.
#[derive(Debug, Clone, Copy)]
pub struct SizeRatio {
    headroom: f64,
}

impl SizeRatio {
    /// Trigger when `live_keys > headroom * expected_keys`.
    ///
    /// # Panics
    /// If `headroom` is not strictly positive.
    #[must_use]
    pub fn new(headroom: f64) -> Self {
        assert!(
            headroom > 0.0,
            "compaction headroom must be strictly positive"
        );
        Self { headroom }
    }
}

impl Default for SizeRatio {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl CompactionPolicy for SizeRatio {
    fn should_compact(&self, observation: &LevelObservation) -> bool {
        observation.live_keys as f64 > self.headroom * observation.expected_keys as f64
    }

    fn name(&self) -> &'static str {
        "size-ratio"
    }
}

/// Never compacts on its own: levels spill only on explicit
/// [`TieredStore::compact`] calls. The policy the oracle tests drive, so the
/// test controls exactly when keys change level.
#[derive(Debug, Clone, Copy, Default)]
pub struct ManualCompaction;

impl CompactionPolicy for ManualCompaction {
    fn should_compact(&self, _observation: &LevelObservation) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "manual"
    }
}

/// Reusable scratch buffers for the tiered batched read path
/// ([`TieredStore::contains_batch_with`]): the cascade's qualified flags,
/// the shrinking remaining-keys/positions pair, the per-level selection
/// vector, and the per-level shard-routing [`ProbeScratch`]. Holding one per
/// reader thread makes steady-state tiered batch lookups reuse every buffer
/// (the per-level snapshot `Arc` bumps remain, as in the flat store).
#[derive(Debug, Default)]
pub struct TieredProbeScratch {
    qualified: Vec<bool>,
    remaining_keys: Vec<u32>,
    remaining_positions: Vec<u32>,
    level_sel: SelectionVector,
    probe: ProbeScratch,
}

impl TieredProbeScratch {
    /// Create an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One level: its sharded store plus the workload description it was built
/// for. Family, budget and delete mode live in the store itself (they can
/// drift through live migration); the spec is the construction-time
/// description compaction sizing still keys off.
#[derive(Debug)]
pub(crate) struct TierLevel {
    pub(crate) store: ShardedFilterStore,
    pub(crate) spec: LevelSpec,
    /// Keys this level has received from compactions of the level above.
    compacted_in: AtomicU64,
    /// Keys compactions have moved out of this level.
    compacted_out: AtomicU64,
}

impl TierLevel {
    pub(crate) fn new(store: ShardedFilterStore, spec: LevelSpec) -> Self {
        Self {
            store,
            spec,
            compacted_in: AtomicU64::new(0),
            compacted_out: AtomicU64::new(0),
        }
    }
}

/// An LSM-style tiered filter store: levels of [`ShardedFilterStore`]s,
/// newest first, each with its own advisor-chosen (or pinned) family,
/// bits-per-key budget, rebuild policy execution mode and Bloom delete mode.
/// Built via [`TieredStoreBuilder`](crate::TieredStoreBuilder).
///
/// # Concurrency
///
/// Reads ([`contains`](Self::contains) / [`contains_batch`](Self::contains_batch))
/// are wait-free exactly like the flat store's: they probe the levels'
/// published snapshots and never take the tiered write lock. Write-side
/// operations span *multiple* levels (an insert shadow-deletes older
/// occurrences, a compaction moves a key set between two level stores), so
/// they serialize on one store-wide mutex — otherwise a `delete_batch`
/// racing a `compact` could observe a key mid-move in both levels (double
/// counting the removal) or in neither bookkeeping (resurrecting it), and
/// the each-key-lives-in-exactly-one-level invariant would be lost.
///
/// Levels publish their snapshots independently rather than through a
/// cross-level commit point, so both directions a key can move are made
/// safe by ordering alone. Upward moves (a re-insert of a key an older
/// level still holds) insert into level 0 first, then *shadow-delete* the
/// older occurrences: the older level's bookkeeping drops the key
/// immediately, but its published filter stays bit-identical until that
/// level's next rebuild — so a reader that probed level 0 before the
/// insert published still gets a positive from the older level, whatever
/// its family or delete mode (the delete-in-place clears Cuckoo and
/// counting-Bloom levels used to perform here were the one false-negative
/// window this store had). Downward moves ([`Self::compact`]) populate the
/// destination before clearing the source, and readers visit the
/// destination later. Stable keys (not mid-move) are never misreported in
/// any mode.
#[derive(Debug)]
pub struct TieredStore {
    levels: Vec<TierLevel>,
    compaction: Arc<dyn CompactionPolicy>,
    /// Completed compaction operations (explicit and policy-triggered).
    compactions: AtomicU64,
    /// Serializes the multi-level write paths (insert/delete/load/compact/
    /// maintain). Readers never touch it.
    write_lock: Mutex<()>,
}

impl TieredStore {
    pub(crate) fn from_levels(
        levels: Vec<TierLevel>,
        compaction: Arc<dyn CompactionPolicy>,
    ) -> Self {
        assert!(
            !levels.is_empty(),
            "a tiered store needs at least one level"
        );
        Self {
            levels,
            compaction,
            compactions: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        }
    }

    /// Open (or create) a persistent tiered store in `dir` with the durable
    /// default [`PersistOptions`] — see [`Self::open_with`].
    ///
    /// # Errors
    /// Propagates I/O failures, corruption the fallback generation cannot
    /// mask, and a directory whose metadata names a different store shape.
    pub fn open(dir: impl AsRef<Path>, builder: TieredStoreBuilder) -> Result<Self, PersistError> {
        Self::open_with(dir, builder, PersistOptions::durable())
    }

    /// Open (or create) a persistent tiered store in `dir`: each level lives
    /// in its own `level-NN/` subdirectory as a full persistent
    /// [`ShardedFilterStore`] (snapshots + WAL segments, recovered through
    /// [`ShardedFilterStore::open_with`]), tied together by a root
    /// `STORE.meta` recording the tiered shape and level count.
    ///
    /// The `builder` supplies everything the disk does not record — level
    /// specs, policies, rebuild mode, re-advising — and must declare the
    /// same number of levels the directory holds. Each recovered level keeps
    /// its *persisted* filter family and shard count (a level that migrated
    /// families before the crash stays migrated); a fresh directory builds
    /// each level exactly as [`TieredStoreBuilder::build`] would.
    ///
    /// # Errors
    /// Propagates I/O failures, corruption the fallback generation cannot
    /// mask, a level-count mismatch with the builder, and a directory whose
    /// metadata names a flat store.
    ///
    /// # Panics
    /// If the builder declares no levels.
    pub fn open_with(
        dir: impl AsRef<Path>,
        builder: TieredStoreBuilder,
        persist: PersistOptions,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (resolved, compaction) = builder.resolved();
        match pof_persist::read_meta(dir)? {
            None => {
                write_meta(
                    dir,
                    StoreMeta {
                        kind: StoreMeta::KIND_TIERED,
                        count: resolved.len() as u32,
                    },
                )?;
            }
            Some(meta) if meta.kind == StoreMeta::KIND_TIERED => {
                if meta.count as usize != resolved.len() {
                    return Err(PersistError::Corrupt {
                        path: dir.join("STORE.meta"),
                        detail: format!(
                            "directory holds {} levels but the builder declares {}",
                            meta.count,
                            resolved.len()
                        ),
                    });
                }
            }
            Some(_) => {
                return Err(PersistError::Corrupt {
                    path: dir.join("STORE.meta"),
                    detail: "directory holds a flat store; use ShardedFilterStore::open".to_owned(),
                });
            }
        }
        let levels = resolved
            .into_iter()
            .enumerate()
            .map(|(index, (spec, options))| {
                let level_dir = dir.join(format!("level-{index:02}"));
                let store = ShardedFilterStore::open_with(level_dir, options, persist.clone())?;
                Ok(TierLevel::new(store, spec))
            })
            .collect::<Result<Vec<_>, PersistError>>()?;
        Ok(Self::from_levels(levels, compaction))
    }

    /// Checkpoint every level's store (see
    /// [`ShardedFilterStore::persist_checkpoint`]): each shard's state is
    /// snapshotted to disk and its WAL rotated. A no-op for stores built in
    /// memory.
    ///
    /// # Errors
    /// Returns the first shard's failure; that level's persistence layer is
    /// dead from then on (later levels are still attempted).
    pub fn persist_checkpoint(&self) -> Result<(), PersistError> {
        let _guard = self.write_guard();
        let mut first_err = None;
        for level in &self.levels {
            if let Err(err) = level.store.persist_checkpoint() {
                first_err.get_or_insert(err);
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Acquire the store-wide write lock (multi-level mutations only).
    fn write_guard(&self) -> MutexGuard<'_, ()> {
        self.write_lock.lock().expect("tiered write lock poisoned")
    }

    /// Number of levels (level 0 is the newest/hottest).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The workload description level `level` was built for.
    ///
    /// # Panics
    /// If `level` is out of range.
    #[must_use]
    pub fn level_spec(&self, level: usize) -> LevelSpec {
        self.levels[level].spec
    }

    /// Direct read access to one level's store — the per-level probe the LSM
    /// substrate uses to answer "may this *level* contain the key?" without
    /// consulting the newer levels above it.
    ///
    /// # Panics
    /// If `level` is out of range.
    #[must_use]
    pub fn level_store(&self, level: usize) -> &ShardedFilterStore {
        &self.levels[level].store
    }

    /// Does level `level` (alone) possibly contain `key`?
    ///
    /// # Panics
    /// If `level` is out of range.
    #[must_use]
    pub fn level_contains(&self, level: usize, key: u32) -> bool {
        self.levels[level].store.contains(key)
    }

    /// Insert a batch into level 0, shadowing any older occurrences: a key
    /// re-inserted after it was compacted down leaves the older level's
    /// *bookkeeping* at once (so every key lives in exactly one level and
    /// [`Self::key_count`] stays exact) while the older level's published
    /// filter keeps answering positive until its next rebuild — readers
    /// racing the reinsertion can never observe the key in neither level.
    /// Afterwards the [`CompactionPolicy`] is consulted, newest level first,
    /// and due levels spill.
    pub fn insert_batch(&self, keys: &[u32]) {
        let guard = self.write_guard();
        self.levels[0].store.insert_batch(keys);
        for level in &self.levels[1..] {
            level.store.shadow_delete_batch(keys);
        }
        self.run_compaction_policy(&guard);
    }

    /// Delete a batch of keys from whichever levels hold them. Returns how
    /// many keys were actually removed (absent keys are no-ops).
    pub fn delete_batch(&self, keys: &[u32]) -> usize {
        let _guard = self.write_guard();
        self.levels
            .iter()
            .map(|level| level.store.delete_batch(keys))
            .sum()
    }

    /// Bulk-load keys directly into one level, bypassing level 0 and the
    /// shadowing pass — the bootstrap path for populating cold levels (e.g.
    /// from on-disk runs) without replaying the whole compaction history.
    /// The caller is responsible for keeping levels disjoint; a key loaded
    /// into two levels stays correct for lookups (newest wins) but is
    /// double-counted by [`Self::key_count`] until one copy is deleted.
    ///
    /// # Panics
    /// If `level` is out of range.
    pub fn load_level(&self, level: usize, keys: &[u32]) {
        let _guard = self.write_guard();
        self.levels[level].store.insert_batch(keys);
    }

    /// Point lookup: probe levels newest→oldest, short-circuiting on the
    /// first positive level.
    #[must_use]
    pub fn contains(&self, key: u32) -> bool {
        self.levels.iter().any(|level| level.store.contains(key))
    }

    /// Batched lookup across all levels: for every key that tests positive
    /// in *some* level, append its batch position to `sel` in ascending
    /// order (`sel` is not cleared, matching
    /// [`Filter::contains_batch`](pof_filter::Filter::contains_batch)).
    ///
    /// The batch cascades: level 0 is probed with the full batch through its
    /// vectorised path, and only the misses ride on to level 1, and so on —
    /// the batch equivalent of the point lookup's short-circuit, so a
    /// hot-heavy workload rarely touches the cold levels at all. Steady-state
    /// readers should hold a [`TieredProbeScratch`] and call
    /// [`Self::contains_batch_with`], which reuses every cascade buffer.
    pub fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        self.contains_batch_with(keys, sel, &mut TieredProbeScratch::new());
    }

    /// [`Self::contains_batch`] through caller-owned scratch buffers:
    /// identical results, but the cascade's routing buffers (and each
    /// level's shard-routing scratch) are reused across calls.
    // pof-analyze: no-alloc
    pub fn contains_batch_with(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        scratch: &mut TieredProbeScratch,
    ) {
        if self.levels.len() == 1 {
            self.levels[0].store.note_probed(keys.len());
            self.levels[0]
                .store
                .snapshot()
                .contains_batch_with(keys, sel, &mut scratch.probe);
            return;
        }
        scratch.qualified.clear();
        scratch.qualified.resize(keys.len(), false);
        scratch.remaining_keys.clear();
        scratch.remaining_keys.extend_from_slice(keys);
        scratch.remaining_positions.clear();
        scratch.remaining_positions.extend(0..keys.len() as u32);
        let mut snapshot = self.levels[0].store.snapshot();
        let mut index = 0usize;
        loop {
            // Credit each level's workload observer with exactly the keys it
            // is probed with (misses only, below level 0) — the cascade goes
            // through raw snapshots, which re-advising cannot see on its own.
            self.levels[index]
                .store
                .note_probed(scratch.remaining_keys.len());
            scratch.level_sel.clear();
            snapshot.contains_batch_with(
                &scratch.remaining_keys,
                &mut scratch.level_sel,
                &mut scratch.probe,
            );
            // If misses survive this level, snapshot the next one and start
            // streaming its shard filters toward the cache *before* the
            // hit-mark/miss-compact scan below — by the time the (smaller)
            // miss batch arrives there, its leading lines are warm.
            let missed = scratch.level_sel.len() < scratch.remaining_keys.len();
            let next_snapshot = if missed && index + 1 < self.levels.len() {
                let next = self.levels[index + 1].store.snapshot();
                next.prefetch_storage();
                Some(next)
            } else {
                None
            };
            // Mark the hits and compact the misses in place: they are the
            // (smaller) batch the next, older level sees.
            let hits = scratch.level_sel.as_slice();
            let mut write = 0usize;
            let mut hit_cursor = 0usize;
            for read in 0..scratch.remaining_keys.len() {
                if hit_cursor < hits.len() && hits[hit_cursor] as usize == read {
                    scratch.qualified[scratch.remaining_positions[read] as usize] = true;
                    hit_cursor += 1;
                } else {
                    scratch.remaining_keys[write] = scratch.remaining_keys[read];
                    scratch.remaining_positions[write] = scratch.remaining_positions[read];
                    write += 1;
                }
            }
            scratch.remaining_keys.truncate(write);
            scratch.remaining_positions.truncate(write);
            match next_snapshot {
                Some(next) => {
                    snapshot = next;
                    index += 1;
                }
                None => break,
            }
        }
        sel.reserve(keys.len());
        for (position, &hit) in scratch.qualified.iter().enumerate() {
            sel.push_if(position as u32, hit);
        }
    }

    /// Compact level `level` into level `level + 1`: the level's live key
    /// set (exact, from the write-side bookkeeping) is inserted into the
    /// next level's store, then deleted from the source. Returns how many
    /// keys moved.
    ///
    /// The destination absorbs the merged keys through its own
    /// [`RebuildPolicy`](crate::RebuildPolicy) and rebuild execution mode:
    /// inline stores rebuild under the shard lock inside this call,
    /// background stores hand the rebuild to their maintainer thread, and
    /// queued stores leave it for
    /// [`run_pending_rebuilds`](Self::run_pending_rebuilds) — so a
    /// compaction can land *inside* a pending rebuild's delta window, which
    /// the interleave suite enumerates. Compacting the oldest level folds it
    /// in place (one [`maintain`](ShardedFilterStore::maintain) round) and
    /// moves nothing.
    ///
    /// # Panics
    /// If `level` is out of range.
    pub fn compact(&self, level: usize) -> usize {
        let guard = self.write_guard();
        self.compact_locked(level, &guard)
    }

    /// [`Self::compact`] body, with the write lock already held (the policy
    /// pass inside `insert_batch`/`maintain` calls this re-entrantly).
    fn compact_locked(&self, level: usize, _guard: &MutexGuard<'_, ()>) -> usize {
        assert!(level < self.levels.len(), "compact: no level {level}");
        if level + 1 == self.levels.len() {
            // The oldest level has nowhere to spill: fold/purge in place,
            // and persist the folded state (a fuse terminal level's merged
            // filter goes straight to disk here).
            self.levels[level].store.maintain();
            let _ = self.levels[level].store.persist_checkpoint();
            return 0;
        }
        let keys = self.levels[level].store.live_keys();
        if keys.is_empty() {
            return 0;
        }
        // Insert into the destination first: a concurrent reader sees the
        // keys in both levels mid-compaction (never in neither), so the
        // no-false-negative contract holds throughout.
        self.levels[level + 1].store.insert_batch(&keys);
        let moved = self.levels[level].store.delete_batch(&keys);
        // Persist the move at once (best-effort — a dead persistence layer
        // just stays dead): the destination's merged state, fuse filters
        // included, lands on disk as a fresh snapshot generation rather than
        // as a WAL replay obligation, and the source's emptied state follows
        // so a crash right after this point recovers both sides of the move.
        let _ = self.levels[level + 1].store.persist_checkpoint();
        let _ = self.levels[level].store.persist_checkpoint();
        self.levels[level]
            .compacted_out
            .fetch_add(moved as u64, Ordering::Relaxed);
        self.levels[level + 1]
            .compacted_in
            .fetch_add(moved as u64, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        moved
    }

    /// Consult the [`CompactionPolicy`] for every non-terminal level, newest
    /// first, compacting the due ones. Returns how many keys moved. Caller
    /// holds the write lock.
    fn run_compaction_policy(&self, guard: &MutexGuard<'_, ()>) -> usize {
        let mut moved = 0;
        for level in 0..self.levels.len().saturating_sub(1) {
            let observation = LevelObservation {
                level,
                live_keys: self.levels[level].store.key_count(),
                expected_keys: self.levels[level].spec.expected_keys as usize,
                next_live_keys: self.levels[level + 1].store.key_count(),
                next_expected_keys: self.levels[level + 1].spec.expected_keys as usize,
            };
            if self.compaction.should_compact(&observation) {
                moved += self.compact_locked(level, guard);
            }
        }
        moved
    }

    /// Run one maintenance round over every level (fold overflow, purge
    /// tombstones, drain background rebuilds — see
    /// [`ShardedFilterStore::maintain`]), then consult the
    /// [`CompactionPolicy`]. Returns the number of shard rebuilds performed
    /// across all levels.
    pub fn maintain(&self) -> usize {
        let guard = self.write_guard();
        let rebuilt = self.levels.iter().map(|level| level.store.maintain()).sum();
        self.run_compaction_policy(&guard);
        rebuilt
    }

    /// In [`RebuildMode::Queued`](crate::RebuildMode::Queued), advance up to
    /// `limit` queued rebuild phases across the levels (level 0's queue
    /// first). Returns how many phases ran; `0` in the other modes.
    pub fn run_pending_rebuilds(&self, limit: usize) -> usize {
        let mut ran = 0;
        for level in &self.levels {
            if ran >= limit {
                break;
            }
            ran += level.store.run_pending_rebuilds(limit - ran);
        }
        ran
    }

    /// Run one online re-advising step on every level (level 0 first) —
    /// see [`ShardedFilterStore::run_pending_readvise`]. A no-op unless the
    /// store was built with
    /// [`TieredStoreBuilder::readvise`](crate::TieredStoreBuilder::readvise).
    /// Returns the number of shards that migrated or had a migration
    /// requested, across all levels.
    ///
    /// Runs under the store-wide write lock: a migration rebuilds level
    /// stores, and racing it against a compaction mid-move would blur the
    /// per-level accounting the oracle tests pin down.
    pub fn run_pending_readvise(&self) -> usize {
        let _guard = self.write_guard();
        self.levels
            .iter()
            .map(|level| level.store.run_pending_readvise())
            .sum()
    }

    /// Update one level's workload hint (`t_w`, σ — the externally known
    /// half of the observed workload) for subsequent re-advising
    /// evaluations. See [`ShardedFilterStore::set_workload_hint`].
    ///
    /// # Panics
    /// If `level` is out of range.
    pub fn set_level_workload_hint(&self, level: usize, hint: LevelSpec) {
        self.levels[level].store.set_workload_hint(hint);
    }

    /// Background rebuild jobs enqueued but not yet completed, across all
    /// levels.
    #[must_use]
    pub fn pending_rebuilds(&self) -> usize {
        self.levels
            .iter()
            .map(|level| level.store.pending_rebuilds())
            .sum()
    }

    /// Total live keys across all levels. Exact, because inserts shadow
    /// older occurrences: every key is counted in exactly one level.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.levels
            .iter()
            .map(|level| level.store.key_count())
            .sum()
    }

    /// Total published filter bits across all levels.
    #[must_use]
    pub fn size_bits(&self) -> u64 {
        self.levels
            .iter()
            .map(|level| level.store.size_bits())
            .sum()
    }

    /// Per-level and aggregate statistics: family, delete mode, budget,
    /// occupancy, tombstones, rebuilds and compaction traffic per level,
    /// with the full per-shard [`StoreStats`](crate::StoreStats) nested.
    #[must_use]
    pub fn stats(&self) -> TieredStats {
        let levels = self
            .levels
            .iter()
            .enumerate()
            .map(|(index, level)| {
                let store = level.store.stats();
                LevelStats {
                    level: index,
                    family: level.store.config().kind(),
                    config_label: level.store.config().label(),
                    // Live, not construction-time: these three follow the
                    // store through migrations.
                    delete_mode: level.store.delete_mode(),
                    bits_per_key_budget: level.store.bits_per_key(),
                    expected_keys: level.spec.expected_keys,
                    work_saved_cycles: level.spec.work_saved_cycles,
                    delete_rate: level.spec.delete_rate,
                    live_keys: store.total_keys(),
                    size_bits: store.total_size_bits(),
                    tombstones: store.total_tombstones(),
                    rebuilds: store.total_rebuilds(),
                    migrations: store.total_migrations(),
                    compacted_in: level.compacted_in.load(Ordering::Relaxed),
                    compacted_out: level.compacted_out.load(Ordering::Relaxed),
                    fingerprint_bits: level.store.config().fingerprint_bits(),
                    construction_retries: store
                        .shards
                        .iter()
                        .map(|shard| shard.construction_retries)
                        .sum(),
                    store,
                }
            })
            .collect();
        TieredStats {
            levels,
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_policy: self.compaction.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TieredStoreBuilder;
    use crate::shard::BloomDeleteMode;
    use pof_bloom::{Addressing, BloomConfig};
    use pof_core::FilterConfig;
    use pof_cuckoo::{CuckooAddressing, CuckooConfig};
    use pof_filter::{FilterKind, KeyGen};

    fn bloom_config() -> FilterConfig {
        FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ))
    }

    fn cuckoo_config() -> FilterConfig {
        FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo))
    }

    fn spec(expected_keys: u64, work_saved_cycles: f64, delete_rate: f64) -> LevelSpec {
        LevelSpec {
            expected_keys,
            work_saved_cycles,
            delete_rate,
            ..LevelSpec::default()
        }
    }

    /// A two-level store with pinned families and manual compaction, so
    /// tests control every key movement.
    fn two_level_manual() -> TieredStore {
        TieredStoreBuilder::new()
            .level_pinned(
                spec(4_096, 32.0, 0.5),
                bloom_config(),
                14.0,
                BloomDeleteMode::Counting,
            )
            .level_pinned(
                spec(32_768, 1e7, 0.0),
                cuckoo_config(),
                16.0,
                BloomDeleteMode::Tombstone,
            )
            .shards_per_level(2)
            .compaction(Arc::new(ManualCompaction))
            .build()
    }

    #[test]
    fn lookups_cascade_and_short_circuit_across_levels() {
        let store = two_level_manual();
        let mut gen = KeyGen::new(0x7E01);
        let hot = gen.distinct_keys(2_000);
        let cold = gen.distinct_keys(8_000);
        store.load_level(1, &cold);
        store.insert_batch(&hot);
        for &key in hot.iter().chain(&cold) {
            assert!(store.contains(key));
        }
        // Batch path agrees with the point path, in ascending order.
        let probes: Vec<u32> = hot
            .iter()
            .chain(&cold)
            .copied()
            .chain(gen.distinct_keys(5_000))
            .collect();
        let mut sel = SelectionVector::new();
        store.contains_batch(&probes, &mut sel);
        let expected: Vec<u32> = probes
            .iter()
            .enumerate()
            .filter(|(_, &k)| store.contains(k))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.as_slice(), expected.as_slice());
    }

    #[test]
    fn compact_moves_the_live_keyset_down_one_level() {
        let store = two_level_manual();
        let mut gen = KeyGen::new(0x7E02);
        let keys = gen.distinct_keys(3_000);
        store.insert_batch(&keys);
        assert_eq!(store.stats().levels[0].live_keys, keys.len() as u64);
        assert_eq!(store.compact(0), keys.len());
        let stats = store.stats();
        assert_eq!(stats.levels[0].live_keys, 0);
        assert_eq!(stats.levels[1].live_keys, keys.len() as u64);
        assert_eq!(stats.levels[0].compacted_out, keys.len() as u64);
        assert_eq!(stats.levels[1].compacted_in, keys.len() as u64);
        assert_eq!(stats.compactions, 1);
        assert_eq!(store.key_count(), keys.len());
        for &key in &keys {
            assert!(store.contains(key), "compaction lost {key}");
        }
        // Compacting the (empty) hot level again moves nothing; compacting
        // the terminal level folds in place and moves nothing either.
        assert_eq!(store.compact(0), 0);
        assert_eq!(store.compact(1), 0);
        assert_eq!(store.key_count(), keys.len());
    }

    #[test]
    fn reinserts_shadow_compacted_copies_exactly() {
        let store = two_level_manual();
        let mut gen = KeyGen::new(0x7E03);
        let keys = gen.distinct_keys(1_000);
        store.insert_batch(&keys);
        store.compact(0);
        // Re-insert half of the compacted keys: they must move back to level
        // 0 without double-counting, and a delete afterwards removes exactly
        // one copy.
        let (back, stayed) = keys.split_at(500);
        store.insert_batch(back);
        assert_eq!(store.key_count(), keys.len());
        let stats = store.stats();
        assert_eq!(stats.levels[0].live_keys, back.len() as u64);
        assert_eq!(stats.levels[1].live_keys, stayed.len() as u64);
        assert_eq!(store.delete_batch(back), back.len());
        assert_eq!(store.delete_batch(back), 0, "shadowed copy survived");
        assert_eq!(store.key_count(), stayed.len());
        for &key in stayed {
            assert!(store.contains(key));
        }
    }

    #[test]
    fn deletes_find_keys_at_any_level() {
        let store = two_level_manual();
        let mut gen = KeyGen::new(0x7E04);
        let keys = gen.distinct_keys(2_000);
        store.insert_batch(&keys);
        store.compact(0);
        let fresh = gen.distinct_keys(500);
        store.insert_batch(&fresh);
        // One batch spanning both levels plus absent keys.
        let mut batch: Vec<u32> = keys[..700].to_vec();
        batch.extend_from_slice(&fresh[..200]);
        batch.extend(gen.distinct_keys(300));
        assert_eq!(store.delete_batch(&batch), 900);
        assert_eq!(store.key_count(), keys.len() + fresh.len() - 900);
    }

    #[test]
    fn size_ratio_policy_spills_hot_levels_automatically() {
        let store = TieredStoreBuilder::new()
            .level_pinned(
                spec(1_024, 32.0, 0.0),
                bloom_config(),
                14.0,
                BloomDeleteMode::Tombstone,
            )
            .level_pinned(
                spec(65_536, 1e7, 0.0),
                cuckoo_config(),
                16.0,
                BloomDeleteMode::Tombstone,
            )
            .shards_per_level(2)
            .build(); // default SizeRatio compaction
        let mut gen = KeyGen::new(0x7E05);
        let mut all = Vec::new();
        for _ in 0..8 {
            let batch = gen.distinct_keys(512);
            store.insert_batch(&batch);
            all.extend_from_slice(&batch);
            // The hot level never holds more than its sizing plus one batch:
            // the policy spills it as soon as it crosses 1_024.
            assert!(
                store.stats().levels[0].live_keys <= 1_024 + 512,
                "hot level ran away: {:?}",
                store.stats().levels[0].live_keys
            );
        }
        let stats = store.stats();
        assert!(stats.compactions > 0, "size-ratio never triggered");
        assert!(stats.levels[1].live_keys > 0);
        assert_eq!(store.key_count(), all.len());
        for &key in &all {
            assert!(store.contains(key));
        }
    }

    #[test]
    fn stats_expose_per_level_families_and_budgets() {
        let store = two_level_manual();
        let stats = store.stats();
        assert_eq!(stats.levels.len(), 2);
        assert_eq!(stats.levels[0].family, FilterKind::Bloom);
        assert_eq!(stats.levels[0].delete_mode, BloomDeleteMode::Counting);
        assert_eq!(stats.levels[1].family, FilterKind::Cuckoo);
        assert!((stats.levels[0].bits_per_key_budget - 14.0).abs() < 1e-12);
        assert!((stats.levels[1].work_saved_cycles - 1e7).abs() < 1e-12);
        assert_eq!(stats.compaction_policy, "manual");
        assert_eq!(stats.total_keys(), 0);
        store.insert_batch(&[1, 2, 3]);
        let stats = store.stats();
        assert_eq!(stats.total_keys(), 3);
        assert!(stats.total_size_bits() > 0);
        assert!(stats.levels[0].bits_per_live_key() > 0.0);
    }

    #[test]
    fn empty_store_ratio_stats_are_zero_not_nan() {
        // Satellite: a freshly built store holds no keys, and every
        // per-live-key ratio must degenerate to 0 (finite), not NaN/inf.
        let store = two_level_manual();
        let stats = store.stats();
        assert_eq!(stats.total_keys(), 0);
        assert_eq!(stats.bits_per_live_key(), 0.0);
        assert!(stats.bits_per_live_key().is_finite());
        for level in &stats.levels {
            assert_eq!(level.bits_per_live_key(), 0.0);
            assert!(level.bits_per_live_key().is_finite());
            assert_eq!(level.store.bits_per_live_key(), 0.0);
        }
    }

    #[test]
    fn scratch_batch_path_agrees_and_reuses_buffers() {
        let store = two_level_manual();
        let mut gen = KeyGen::new(0x7E07);
        let cold = gen.distinct_keys(4_000);
        let hot = gen.distinct_keys(1_000);
        store.load_level(1, &cold);
        store.insert_batch(&hot);
        let probes: Vec<u32> = hot
            .iter()
            .chain(&cold)
            .copied()
            .chain(gen.distinct_keys(3_000))
            .collect();
        let mut scratch = TieredProbeScratch::new();
        let mut with_scratch = SelectionVector::new();
        let mut plain = SelectionVector::new();
        // Repeated calls through one scratch: identical output every time.
        for _ in 0..3 {
            with_scratch.clear();
            store.contains_batch_with(&probes, &mut with_scratch, &mut scratch);
            plain.clear();
            store.contains_batch(&probes, &mut plain);
            assert_eq!(with_scratch.as_slice(), plain.as_slice());
        }
    }

    #[test]
    fn concurrent_writers_keep_cross_level_accounting_exact() {
        // Two writer threads hammer the multi-level paths the write lock
        // serializes: one inserts its own key space, the other churns a
        // disjoint space with deletes while compactions fire. Each logical
        // operation is atomic at the tiered level, so the final accounting
        // must come out exact.
        let store = Arc::new(two_level_manual());
        let mut gen = KeyGen::new(0x7E08);
        let stable: Vec<u32> = gen.distinct_keys(4_000);
        let churn: Vec<u32> = gen.distinct_keys(4_000);
        let (doomed, kept) = churn.split_at(2_000);
        std::thread::scope(|scope| {
            let inserter = Arc::clone(&store);
            let stable_ref = &stable;
            scope.spawn(move || {
                for chunk in stable_ref.chunks(250) {
                    inserter.insert_batch(chunk);
                    inserter.compact(0);
                }
            });
            let churner = Arc::clone(&store);
            let (churn_ref, doomed_ref) = (&churn, &doomed);
            scope.spawn(move || {
                let mut removed = 0;
                for (round, chunk) in churn_ref.chunks(250).enumerate() {
                    churner.insert_batch(chunk);
                    if round % 2 == 1 {
                        removed += churner.delete_batch(&doomed_ref[removed..removed + 250]);
                    }
                }
                assert_eq!(removed, doomed_ref.len(), "churn thread lost deletes");
            });
        });
        assert_eq!(store.key_count(), stable.len() + kept.len());
        for &key in stable.iter().chain(kept) {
            assert!(store.contains(key), "lost {key} under concurrent writers");
        }
        let stats = store.stats();
        assert_eq!(
            stats.levels[0].live_keys + stats.levels[1].live_keys,
            (stable.len() + kept.len()) as u64
        );
    }

    #[test]
    fn queued_mode_levels_share_the_rebuild_harness() {
        let store = TieredStoreBuilder::new()
            .level_pinned(
                spec(64, 32.0, 0.0),
                bloom_config(),
                16.0,
                BloomDeleteMode::Tombstone,
            )
            .level_pinned(
                spec(64, 1e7, 0.0),
                cuckoo_config(),
                16.0,
                BloomDeleteMode::Tombstone,
            )
            .shards_per_level(1)
            .compaction(Arc::new(ManualCompaction))
            .rebuild_mode(crate::RebuildMode::Queued)
            .build();
        let mut gen = KeyGen::new(0x7E06);
        // Saturate both levels past their 64-key sizing.
        let hot = gen.distinct_keys(200);
        let cold = gen.distinct_keys(200);
        store.insert_batch(&hot);
        store.load_level(1, &cold);
        assert_eq!(store.pending_rebuilds(), 2);
        // Two phases per rebuild: snapshot + swap, level 0's queue first.
        assert_eq!(store.run_pending_rebuilds(2), 2);
        assert_eq!(store.pending_rebuilds(), 1);
        store.maintain();
        assert_eq!(store.pending_rebuilds(), 0);
        for &key in hot.iter().chain(&cold) {
            assert!(store.contains(key));
        }
        assert_eq!(store.key_count(), hot.len() + cold.len());
    }

    #[test]
    fn a_cooling_level_migrates_live_while_its_neighbors_hold_family() {
        use crate::options::ReadviseOptions;

        // Two Bloom levels under re-advising: the hot one churns throughout
        // (so its counting sidecar stays justified), the big one is declared
        // hot-ish but stops mattering to the memtable — when its hint drifts
        // to cold-static, only *it* walks onto the immutable fuse family.
        let store = TieredStoreBuilder::new()
            .level_pinned(
                spec(4_096, 32.0, 0.5),
                bloom_config(),
                14.0,
                BloomDeleteMode::Counting,
            )
            .level_pinned(
                spec(32_768, 32.0, 0.4),
                bloom_config(),
                14.0,
                BloomDeleteMode::Tombstone,
            )
            .shards_per_level(2)
            .compaction(Arc::new(ManualCompaction))
            .readvise(ReadviseOptions::default())
            .build();
        let mut gen = KeyGen::new(0x7E07);
        let mut hot = gen.distinct_keys(2_000);
        let cold = gen.distinct_keys(20_000);
        store.load_level(1, &cold);
        store.insert_batch(&hot);

        let mut sel = SelectionVector::new();
        let churn = |store: &TieredStore, hot: &mut Vec<u32>, gen: &mut KeyGen| {
            let doomed: Vec<u32> = hot.drain(..400).collect();
            assert_eq!(store.delete_batch(&doomed), doomed.len());
            let fresh = gen.distinct_keys(400);
            store.insert_batch(&fresh);
            hot.extend(fresh);
        };
        for _ in 0..4 {
            churn(&store, &mut hot, &mut gen);
            store.run_pending_readvise();
        }
        let stats = store.stats();
        assert_eq!(stats.levels[0].family, FilterKind::Bloom);
        assert_eq!(stats.levels[1].family, FilterKind::Bloom);
        assert_eq!(stats.total_migrations(), 0);

        // The big level cools: misses now cost a simulated disk read and
        // its set is static for the rest of its life.
        store.set_level_workload_hint(
            1,
            LevelSpec {
                expected_keys: 32_768,
                work_saved_cycles: 16_000_000.0,
                sigma: 0.0,
                delete_rate: 0.0,
                expected_probes_per_key: 1_000_000.0,
            },
        );
        let mut reached_fuse = false;
        for round in 0..40 {
            churn(&store, &mut hot, &mut gen);
            sel.clear();
            let members: Vec<u32> = hot.iter().chain(&cold).copied().collect();
            store.contains_batch(&members, &mut sel);
            assert_eq!(sel.len(), members.len(), "false negative at round {round}");
            store.run_pending_readvise();
            if store.stats().levels[1].family == FilterKind::Fuse {
                reached_fuse = true;
                break;
            }
        }
        assert!(reached_fuse, "the cooling level never reached fuse");
        let stats = store.stats();
        assert_eq!(stats.levels[0].family, FilterKind::Bloom);
        assert_eq!(stats.levels[0].delete_mode, BloomDeleteMode::Counting);
        assert_eq!(stats.levels[0].migrations, 0, "hot level must not move");
        assert!(stats.levels[1].migrations >= 2, "one per shard");
        assert!(store.level_store(1).config().immutable());
        for &key in hot.iter().chain(&cold) {
            assert!(store.contains(key), "lost {key} across the migration");
        }
    }
}
