//! Pluggable shard rebuild policies: *when* and *how* a shard's filter is
//! rebuilt is a policy decision, not a hard-coded side effect of the write
//! path.
//!
//! The paper's central claim is that the performance-optimal filter depends
//! on the workload; the same holds one level up, for filter *maintenance*.
//! A bulk-loaded join side wants the cheapest possible steady state
//! ([`SaturationDoubling`]), an FPR-budgeted serving tier wants rebuilds
//! driven by modeled false-positive drift and wants to shrink after deletes
//! ([`FprDrift`]), and a bursty ingest pipeline wants writes to stay
//! latency-flat and fold the overflow in on its own schedule
//! ([`DeferredBatch`], motivated by deferred/amortized maintenance à la
//! "Don't Thrash: How to Cache Your Hash on Flash" and the burst-tolerance
//! analysis of arXiv:2006.15254).
//!
//! A policy only *decides*; the shard writer executes. Decisions are pure
//! functions of a [`ShardObservation`], so policies are trivially shareable
//! across shards (`Arc<dyn RebuildPolicy>`) and unit-testable in isolation.

use pof_core::{AnyFilter, FilterConfig};

/// How urgently a [`RebuildDecision::Rebuild`] must take effect, for stores
/// that run a background maintainer
/// ([`StoreBuilder::background_rebuilds`](crate::StoreBuilder::background_rebuilds)).
///
/// Synchronous stores ignore urgency (every rebuild is inline). Background
/// stores consult it at decision time: a `Deferrable` rebuild is handed to
/// the maintainer (the writer stays latency-flat; the triggering key remains
/// visible through the current filter or the exact overflow buffer), an
/// `Immediate` one runs inline under the shard lock even in background mode
/// — the escape hatch for policies whose decision *enforces a hard bound*
/// that deferral would violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebuildUrgency {
    /// The rebuild may run off-lock on the maintainer (the default).
    #[default]
    Deferrable,
    /// The rebuild must run inline, even when background rebuilds are on.
    Immediate,
}

/// What the shard writer should do after a state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildDecision {
    /// Leave the filter as it is.
    Keep,
    /// Rebuild the filter now, sized for `capacity` keys, replaying the
    /// shard's live key set (which folds in any overflow and purges any
    /// tombstones).
    Rebuild {
        /// Key capacity the rebuilt filter is sized for.
        capacity: usize,
    },
    /// Divert the key that triggered this decision into the shard's exact
    /// side buffer instead of the filter. Readers probe the buffer, so the
    /// key stays visible; a later [`RebuildDecision::Rebuild`] folds it in.
    Defer,
}

/// A consistent view of one shard's write side, handed to policy hooks.
///
/// The `filter` reference lets a policy compute modeled statistics (e.g.
/// [`ShardObservation::modeled_fpr`]) *only when it needs them*, keeping
/// cheap policies cheap on the per-key insert path.
#[derive(Debug)]
pub struct ShardObservation<'a> {
    /// Live (inserted minus deleted) keys the shard is responsible for,
    /// including any keys currently parked in the overflow buffer.
    pub live_keys: usize,
    /// Key count the current filter was sized for.
    pub capacity: usize,
    /// Keys currently parked in the exact overflow side buffer.
    pub overflow_len: usize,
    /// Deleted keys still represented in the filter (Bloom tombstones).
    /// Structurally zero for Cuckoo shards and for Bloom shards in counting
    /// delete mode ([`crate::BloomDeleteMode::Counting`]) — with nothing
    /// tombstoned, the purge clauses of every built-in policy go quiet and a
    /// delete-heavy shard stops rebuilding.
    pub tombstones: usize,
    /// Keys physically resident in the filter:
    /// `live_keys − overflow_len + tombstones`. The cheap proxy for filter
    /// occupancy — policies should gate any expensive modeled-FPR evaluation
    /// on this (below `capacity` the modeled rate cannot exceed its
    /// nominal-occupancy budget).
    pub occupancy: usize,
    /// The false-positive rate the shard's `(config, bits_per_key)` pair was
    /// budgeted for at nominal occupancy.
    pub budget_fpr: f64,
    /// The live write-side filter (read-only for policies).
    pub filter: &'a AnyFilter,
    /// The configuration every rebuild of this shard uses.
    pub config: &'a FilterConfig,
}

impl ShardObservation<'_> {
    /// Analytical false-positive rate of the write-side filter at its current
    /// occupancy (tombstoned keys still count — they still set bits).
    #[must_use]
    pub fn modeled_fpr(&self) -> f64 {
        self.filter.modeled_fpr()
    }
}

/// A shard-lifecycle policy: decides when the filter is rebuilt, how large
/// the rebuild is, and whether writes may be deferred into the overflow
/// buffer.
///
/// Implementations must be cheap and deterministic — hooks run under the
/// shard's write lock, once per appended key ([`on_append`]) or once per
/// batch ([`on_delete`], [`on_maintain`]).
///
/// [`on_append`]: RebuildPolicy::on_append
/// [`on_delete`]: RebuildPolicy::on_delete
/// [`on_maintain`]: RebuildPolicy::on_maintain
pub trait RebuildPolicy: Send + Sync + std::fmt::Debug {
    /// Short label for stats and logs.
    fn name(&self) -> &'static str;

    /// A fresh key was appended to the shard's key set but not yet offered to
    /// the filter. `Keep` inserts it into the filter, `Defer` parks it in the
    /// overflow buffer, `Rebuild` replays everything (including this key)
    /// into a fresh filter.
    fn on_append(&self, observation: &ShardObservation<'_>) -> RebuildDecision;

    /// The filter refused the key (a Cuckoo relocation chain failed).
    /// `Rebuild` and `Defer` both keep the key represented; a policy
    /// answering `Keep` here gets the key deferred anyway — the store never
    /// loses a key.
    fn on_filter_full(&self, observation: &ShardObservation<'_>) -> RebuildDecision;

    /// A delete batch just finished (`Defer` is meaningless here and treated
    /// as `Keep`).
    fn on_delete(&self, observation: &ShardObservation<'_>) -> RebuildDecision;

    /// An explicit maintenance call ([`crate::ShardedFilterStore::maintain`]).
    /// This is the hook where deferred work (overflow folds, tombstone
    /// purges, shrinks) is expected to happen.
    fn on_maintain(&self, observation: &ShardObservation<'_>) -> RebuildDecision;

    /// How urgently this policy's `Rebuild` decisions must take effect when
    /// the store runs a background maintainer. The default — every rebuild
    /// is [`RebuildUrgency::Deferrable`] — is right for saturation growth,
    /// FPR-drift re-fits and shrinks, and overflow folds alike: correctness
    /// never depends on the rebuild happening *now* (the overflow buffer and
    /// the delta replay keep every key visible). Override it only to enforce
    /// a hard bound, as [`DeferredBatch`] does for a runaway side buffer.
    fn urgency(&self, observation: &ShardObservation<'_>) -> RebuildUrgency {
        let _ = observation;
        RebuildUrgency::Deferrable
    }
}

/// Smallest capacity on the binary ladder `64 · 2^k` that holds `target`
/// keys.
fn ladder_capacity(target: usize) -> usize {
    let mut capacity = 64usize;
    while capacity < target {
        capacity *= 2;
    }
    capacity
}

/// Smallest doubling of `capacity` that holds `live` keys (grow-only).
fn grown_capacity(mut capacity: usize, live: usize) -> usize {
    while capacity < live {
        capacity *= 2;
    }
    capacity
}

/// The classic inline policy (and the default): double the filter the moment
/// the shard outgrows its sized capacity or the filter refuses a key.
///
/// This reproduces the store's original hard-coded behavior bit for bit:
/// rebuilds happen inline at exactly `2 × capacity`, deletes never trigger a
/// rebuild (Bloom tombstones are purged by the next saturation rebuild or an
/// explicit `maintain()`), and nothing is ever deferred.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaturationDoubling;

impl RebuildPolicy for SaturationDoubling {
    fn name(&self) -> &'static str {
        "saturation-doubling"
    }

    fn on_append(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        if observation.live_keys > observation.capacity {
            RebuildDecision::Rebuild {
                capacity: observation.capacity * 2,
            }
        } else {
            RebuildDecision::Keep
        }
    }

    fn on_filter_full(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        RebuildDecision::Rebuild {
            capacity: observation.capacity * 2,
        }
    }

    fn on_delete(&self, _observation: &ShardObservation<'_>) -> RebuildDecision {
        RebuildDecision::Keep
    }

    fn on_maintain(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        if observation.tombstones > 0 || observation.overflow_len > 0 {
            RebuildDecision::Rebuild {
                capacity: observation.capacity,
            }
        } else {
            RebuildDecision::Keep
        }
    }
}

/// Rebuild when the modeled false-positive rate drifts past a configured
/// multiple of the shard's budget, re-fitting the filter to the live key
/// count — growing under inserts *and shrinking after deletes*.
///
/// Bloom occupancy (including tombstones) drives the modeled rate up as keys
/// accumulate; when it crosses `budget_multiple × budget_fpr` the shard is
/// rebuilt at [`FprDrift::headroom`] × live keys on the `64·2^k` capacity
/// ladder, which both purges tombstones and restores the budget. Deletes
/// trigger the same re-fit once the shard is mostly dead (more tombstones
/// than live keys) or its capacity is ≥ 4x oversized for what remains.
#[derive(Debug, Clone, Copy)]
pub struct FprDrift {
    budget_multiple: f64,
    headroom: f64,
}

impl FprDrift {
    /// Rebuild once the modeled FPR exceeds `budget_multiple` (clamped to
    /// ≥ 1) times the budgeted rate. Headroom defaults to 1.25.
    #[must_use]
    pub fn new(budget_multiple: f64) -> Self {
        Self {
            budget_multiple: budget_multiple.max(1.0),
            headroom: 1.25,
        }
    }

    /// Override the slack factor applied to the live key count when re-fitting
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom.max(1.0);
        self
    }

    /// Capacity that re-fits `live` keys with this policy's headroom.
    fn refit(&self, live: usize) -> usize {
        ladder_capacity((live as f64 * self.headroom).ceil() as usize)
    }

    /// Has the modeled FPR drifted past the budgeted multiple?
    ///
    /// Gated on occupancy: at or below nominal occupancy the modeled rate is
    /// at most the budget itself (FPR is monotone in occupancy and the
    /// budget *is* the nominal-occupancy rate, with `budget_multiple ≥ 1`),
    /// so the expensive model — a nested Poisson series for blocked Bloom
    /// variants — is only evaluated past nominal.
    fn drifted(&self, observation: &ShardObservation<'_>) -> bool {
        observation.occupancy > observation.capacity
            && observation.modeled_fpr() > self.budget_multiple * observation.budget_fpr
    }
}

impl Default for FprDrift {
    /// Rebuild at 2x the budgeted false-positive rate.
    fn default() -> Self {
        Self::new(2.0)
    }
}

impl RebuildPolicy for FprDrift {
    fn name(&self) -> &'static str {
        "fpr-drift"
    }

    fn on_append(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        // This hook runs once per fresh key, so it additionally throttles
        // the model to every 32nd key past nominal occupancy (the first
        // over-nominal key is always checked). Drift detection lags by at
        // most 32 keys; rebuild sizing is unaffected.
        let over_nominal = observation.occupancy.saturating_sub(observation.capacity);
        let check_now = over_nominal > 0 && (over_nominal - 1).is_multiple_of(32);
        if check_now && self.drifted(observation) {
            RebuildDecision::Rebuild {
                capacity: self.refit(observation.live_keys),
            }
        } else {
            RebuildDecision::Keep
        }
    }

    fn on_filter_full(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        // The filter physically refused a key; re-fit, but never below a
        // doubling (a refit at the current ladder step would refuse again).
        RebuildDecision::Rebuild {
            capacity: self
                .refit(observation.live_keys)
                .max(observation.capacity * 2),
        }
    }

    fn on_delete(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        let refit = self.refit(observation.live_keys);
        let mostly_dead = observation.tombstones > observation.live_keys;
        let oversized = refit.saturating_mul(4) <= observation.capacity;
        if self.drifted(observation) || mostly_dead || oversized {
            RebuildDecision::Rebuild { capacity: refit }
        } else {
            RebuildDecision::Keep
        }
    }

    fn on_maintain(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        // Re-fit with a dead band (mirroring `on_delete`): rebuild a clean,
        // undrifted shard only when it is undersized or ≥ 4x oversized — an
        // exact `refit != capacity` test would rebuild healthy shards on
        // every maintain() whenever the live count sits near a capacity
        // ladder boundary.
        let refit = self.refit(observation.live_keys);
        let undersized = refit > observation.capacity;
        let oversized = refit.saturating_mul(4) <= observation.capacity;
        if observation.tombstones > 0
            || observation.overflow_len > 0
            || self.drifted(observation)
            || undersized
            || oversized
        {
            RebuildDecision::Rebuild { capacity: refit }
        } else {
            RebuildDecision::Keep
        }
    }
}

/// Keep writes latency-flat: a saturated shard absorbs overflow keys into an
/// exact side buffer (probed by readers, so nothing goes missing) instead of
/// rebuilding inline, and folds them into a right-sized filter on the next
/// explicit [`maintain()`](crate::ShardedFilterStore::maintain) call.
///
/// The buffer is bounded: once `max_overflow` keys are parked, the shard
/// rebuilds inline after all (an unbounded exact buffer would silently turn
/// the filter into a lookup table). Cuckoo relocation failures are also
/// absorbed into the buffer — a burst of hostile keys no longer triggers an
/// inline O(n) rebuild in the middle of an ingest spike.
#[derive(Debug, Clone, Copy)]
pub struct DeferredBatch {
    max_overflow: usize,
}

impl DeferredBatch {
    /// Defer up to `max_overflow` keys (clamped to ≥ 1) per shard between
    /// [`maintain()`](crate::ShardedFilterStore::maintain) calls.
    #[must_use]
    pub fn new(max_overflow: usize) -> Self {
        Self {
            max_overflow: max_overflow.max(1),
        }
    }

    /// The per-shard overflow bound.
    #[must_use]
    pub fn max_overflow(&self) -> usize {
        self.max_overflow
    }
}

impl Default for DeferredBatch {
    /// Defer up to 1024 keys per shard between maintenance calls.
    fn default() -> Self {
        Self::new(1024)
    }
}

impl RebuildPolicy for DeferredBatch {
    fn name(&self) -> &'static str {
        "deferred-batch"
    }

    fn on_append(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        if observation.live_keys <= observation.capacity {
            RebuildDecision::Keep
        } else if observation.overflow_len >= self.max_overflow {
            RebuildDecision::Rebuild {
                capacity: grown_capacity(observation.capacity, observation.live_keys),
            }
        } else {
            RebuildDecision::Defer
        }
    }

    fn on_filter_full(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        if observation.overflow_len >= self.max_overflow {
            RebuildDecision::Rebuild {
                capacity: grown_capacity(observation.capacity * 2, observation.live_keys),
            }
        } else {
            RebuildDecision::Defer
        }
    }

    fn on_delete(&self, _observation: &ShardObservation<'_>) -> RebuildDecision {
        RebuildDecision::Keep
    }

    fn on_maintain(&self, observation: &ShardObservation<'_>) -> RebuildDecision {
        if observation.overflow_len > 0 || observation.tombstones > 0 {
            RebuildDecision::Rebuild {
                capacity: grown_capacity(observation.capacity, observation.live_keys),
            }
        } else {
            RebuildDecision::Keep
        }
    }

    /// The overflow bound is this policy's contract: an exact side buffer
    /// that outgrows its cap is silently becoming a lookup table. A fold can
    /// still run in the background while the buffer is merely *at* the cap
    /// (fresh keys keep landing in the current filter meanwhile), but once
    /// it has ballooned to 4x — the shard saturated faster than the
    /// maintainer could fold — the rebuild goes inline to restore the bound.
    fn urgency(&self, observation: &ShardObservation<'_>) -> RebuildUrgency {
        if observation.overflow_len >= self.max_overflow.saturating_mul(4) {
            RebuildUrgency::Immediate
        } else {
            RebuildUrgency::Deferrable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};

    fn observation<'a>(
        filter: &'a AnyFilter,
        config: &'a FilterConfig,
        live: usize,
        capacity: usize,
        overflow: usize,
        tombstones: usize,
    ) -> ShardObservation<'a> {
        ShardObservation {
            live_keys: live,
            capacity,
            overflow_len: overflow,
            tombstones,
            occupancy: live - overflow + tombstones,
            budget_fpr: config.modeled_fpr(capacity as f64, 12.0).unwrap_or(0.01),
            filter,
            config,
        }
    }

    fn bloom() -> (FilterConfig, AnyFilter) {
        let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ));
        let filter = AnyFilter::build(&config, 1_000, 12.0);
        (config, filter)
    }

    #[test]
    fn saturation_doubling_matches_the_legacy_rules() {
        let (config, filter) = bloom();
        let policy = SaturationDoubling;
        let at_capacity = observation(&filter, &config, 1_000, 1_000, 0, 0);
        assert_eq!(policy.on_append(&at_capacity), RebuildDecision::Keep);
        let over = observation(&filter, &config, 1_001, 1_000, 0, 0);
        assert_eq!(
            policy.on_append(&over),
            RebuildDecision::Rebuild { capacity: 2_000 }
        );
        assert_eq!(
            policy.on_filter_full(&at_capacity),
            RebuildDecision::Rebuild { capacity: 2_000 }
        );
        // Deletes never rebuild inline; maintain purges tombstones in place.
        let tombstoned = observation(&filter, &config, 900, 1_000, 0, 100);
        assert_eq!(policy.on_delete(&tombstoned), RebuildDecision::Keep);
        assert_eq!(
            policy.on_maintain(&tombstoned),
            RebuildDecision::Rebuild { capacity: 1_000 }
        );
        let clean = observation(&filter, &config, 900, 1_000, 0, 0);
        assert_eq!(policy.on_maintain(&clean), RebuildDecision::Keep);
    }

    #[test]
    fn fpr_drift_refits_on_drift_and_shrinks_when_oversized() {
        let (config, filter) = bloom();
        // `filter` is empty, so its modeled FPR is ~0: no drift.
        let policy = FprDrift::new(2.0);
        let quiet = observation(&filter, &config, 500, 1_000, 0, 0);
        assert_eq!(policy.on_append(&quiet), RebuildDecision::Keep);
        // A shard whose capacity is >= 4x its refit target shrinks on delete.
        let oversized = observation(&filter, &config, 100, 4_096, 0, 0);
        assert_eq!(
            policy.on_delete(&oversized),
            RebuildDecision::Rebuild { capacity: 128 }
        );
        // Mostly-dead shards rebuild to purge tombstones.
        let dead = observation(&filter, &config, 100, 256, 0, 150);
        assert_eq!(
            policy.on_delete(&dead),
            RebuildDecision::Rebuild { capacity: 128 }
        );
        // Maintenance re-fits whenever the ladder step is off.
        let offstep = observation(&filter, &config, 100, 1_024, 0, 0);
        assert_eq!(
            policy.on_maintain(&offstep),
            RebuildDecision::Rebuild { capacity: 128 }
        );
    }

    #[test]
    fn deferred_batch_parks_overflow_until_maintain() {
        let (config, filter) = bloom();
        let policy = DeferredBatch::new(4);
        let saturated = observation(&filter, &config, 1_001, 1_000, 0, 0);
        assert_eq!(policy.on_append(&saturated), RebuildDecision::Defer);
        assert_eq!(policy.on_filter_full(&saturated), RebuildDecision::Defer);
        // The buffer is bounded: at the cap the shard rebuilds inline.
        let full_buffer = observation(&filter, &config, 1_005, 1_000, 4, 0);
        assert_eq!(
            policy.on_append(&full_buffer),
            RebuildDecision::Rebuild { capacity: 2_000 }
        );
        // Maintenance folds the overflow into a grown filter.
        let parked = observation(&filter, &config, 1_003, 1_000, 3, 0);
        assert_eq!(
            policy.on_maintain(&parked),
            RebuildDecision::Rebuild { capacity: 2_000 }
        );
        let clean = observation(&filter, &config, 900, 1_000, 0, 0);
        assert_eq!(policy.on_maintain(&clean), RebuildDecision::Keep);
        assert_eq!(policy.on_delete(&clean), RebuildDecision::Keep);
    }

    #[test]
    fn urgency_is_deferrable_except_for_runaway_overflow() {
        let (config, filter) = bloom();
        // Growth and drift decisions may always run off-lock.
        let saturated = observation(&filter, &config, 1_001, 1_000, 0, 0);
        assert_eq!(
            SaturationDoubling.urgency(&saturated),
            RebuildUrgency::Deferrable
        );
        assert_eq!(
            FprDrift::new(2.0).urgency(&saturated),
            RebuildUrgency::Deferrable
        );
        // DeferredBatch tolerates background folds at the cap, but a buffer
        // at 4x the cap must fold inline to restore its hard bound.
        let policy = DeferredBatch::new(4);
        let at_cap = observation(&filter, &config, 1_005, 1_000, 4, 0);
        assert_eq!(policy.urgency(&at_cap), RebuildUrgency::Deferrable);
        let runaway = observation(&filter, &config, 1_020, 1_000, 16, 0);
        assert_eq!(policy.urgency(&runaway), RebuildUrgency::Immediate);
    }

    #[test]
    fn capacity_ladders() {
        assert_eq!(ladder_capacity(0), 64);
        assert_eq!(ladder_capacity(64), 64);
        assert_eq!(ladder_capacity(65), 128);
        assert_eq!(ladder_capacity(1_000), 1_024);
        assert_eq!(grown_capacity(1_000, 900), 1_000);
        assert_eq!(grown_capacity(1_000, 1_001), 2_000);
        assert_eq!(grown_capacity(1_000, 4_001), 8_000);
    }
}
