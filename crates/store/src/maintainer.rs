//! The background rebuild subsystem: a maintainer that builds replacement
//! shard filters off-lock and swaps them in atomically.
//!
//! A policy-triggered rebuild is the one write-path operation that is O(shard
//! size) instead of O(batch): with rebuilds inline, a saturating shard stalls
//! every writer for the full replay. With a maintainer, the shard writer
//! merely records a pending-rebuild state and hands the store a ticket; the
//! maintainer then
//!
//! 1. briefly locks the writer to snapshot the shard's
//!    [`CompactKeySet`](crate::ShardedFilterStore) replay log
//!    ([`Shard::begin_rebuild`]), switching the writer into delta-logging
//!    mode,
//! 2. builds the replacement filter **off-lock** — readers keep probing the
//!    published snapshot, writers keep appending to the current filter,
//! 3. re-acquires the writer briefly, replays the (bounded) delta of keys
//!    inserted/deleted since the snapshot, and publishes the replacement
//!    with a single `Arc` swap ([`Shard::finish_rebuild`]).
//!
//! Tickets carry the writer's rebuild epoch: if the shard rebuilt by other
//! means in the meantime (the backpressure fallback for shards that
//! re-saturate mid-flight), the stale job is discarded instead of clobbering
//! the newer filter.

use crate::shard::{RebuildPlan, RebuildTicket, Shard};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a store executes policy-triggered `Rebuild` decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebuildMode {
    /// Rebuild inline under the shard's write lock — the classic (and
    /// default) behavior, bit-for-bit identical to the pre-maintainer store.
    #[default]
    Inline,
    /// Rebuild off-lock on a dedicated maintainer thread and swap the
    /// replacement in atomically. Writers stay latency-flat; readers are
    /// unaffected either way.
    Background,
    /// Rebuild off-lock, but only when the caller explicitly runs queued
    /// jobs via [`run_pending_rebuilds`] (or implicitly via [`maintain`],
    /// which drains the queue). Each job takes **two** steps — one for the
    /// key-set snapshot, one for the off-lock build, delta replay and swap —
    /// so a harness can interleave writes into the delta-replay window at
    /// will. The deterministic mode the interleaving and property tests
    /// drive, and the hook for embedders running rebuilds on an executor of
    /// their own.
    ///
    /// [`run_pending_rebuilds`]: crate::ShardedFilterStore::run_pending_rebuilds
    /// [`maintain`]: crate::ShardedFilterStore::maintain
    Queued,
}

/// One queued rebuild job.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    shard: usize,
    ticket: RebuildTicket,
}

/// A job in the queued-mode pipeline. Jobs advance one phase per
/// `run_pending` step so a deterministic harness can open the delta-replay
/// window (between snapshot and swap) and interleave writes into it.
#[derive(Debug)]
pub(crate) enum QueuedStep {
    /// Snapshot not yet taken.
    Request(Job),
    /// Snapshot taken (the shard writer is delta-logging); the next step
    /// builds the replacement off-lock, replays the delta and swaps.
    Staged { job: Job, plan: RebuildPlan },
}

/// Enqueue/completion counters behind the [`Maintainer::drain`] barrier.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    /// `(enqueued, completed)` — completed counts discarded stale jobs too.
    counts: Mutex<(u64, u64)>,
    done: Condvar,
}

/// The store's rebuild executor: a worker thread (background mode) or an
/// explicit job queue (queued mode).
#[derive(Debug)]
pub(crate) enum Maintainer {
    Threaded {
        /// `Option` so `Drop` can hang up the channel before joining.
        sender: Option<Sender<Job>>,
        worker: Option<JoinHandle<()>>,
        progress: Arc<Progress>,
    },
    Queued {
        queue: Mutex<VecDeque<QueuedStep>>,
        shards: Arc<Vec<Shard>>,
    },
}

/// Run one job to completion: snapshot, off-lock build, delta replay, swap.
/// Returns `false` if the ticket had gone stale and the job was discarded.
fn execute(shards: &[Shard], job: Job) -> bool {
    let shard = &shards[job.shard];
    let Some(plan) = shard.begin_rebuild(job.ticket) else {
        return false;
    };
    let (filter, capacity) = plan.build();
    shard.finish_rebuild(job.ticket, filter, capacity)
}

impl Maintainer {
    /// Create the executor for `mode`; `None` for [`RebuildMode::Inline`].
    pub(crate) fn new(mode: RebuildMode, shards: Arc<Vec<Shard>>) -> Option<Self> {
        match mode {
            RebuildMode::Inline => None,
            RebuildMode::Queued => Some(Self::Queued {
                queue: Mutex::new(VecDeque::new()),
                shards,
            }),
            RebuildMode::Background => {
                let (sender, receiver) = channel::<Job>();
                let progress = Arc::new(Progress::default());
                let worker_progress = Arc::clone(&progress);
                let worker = std::thread::Builder::new()
                    .name("pof-store-maintainer".into())
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            execute(&shards, job);
                            let mut counts =
                                worker_progress.counts.lock().expect("progress poisoned");
                            counts.1 += 1;
                            worker_progress.done.notify_all();
                        }
                    })
                    .expect("spawning the maintainer thread failed");
                Some(Self::Threaded {
                    sender: Some(sender),
                    worker: Some(worker),
                    progress,
                })
            }
        }
    }

    /// Hand a shard's rebuild request to the executor.
    pub(crate) fn enqueue(&self, shard: usize, ticket: RebuildTicket) {
        let job = Job { shard, ticket };
        match self {
            Self::Threaded {
                sender, progress, ..
            } => {
                // Count before sending: the worker may complete (and count)
                // the job before this thread resumes, and `drain` must never
                // observe completed > enqueued.
                progress.counts.lock().expect("progress poisoned").0 += 1;
                sender
                    .as_ref()
                    .expect("sender lives as long as the store")
                    .send(job)
                    .expect("maintainer thread lives as long as the store");
            }
            Self::Queued { queue, .. } => {
                queue
                    .lock()
                    .expect("queue poisoned")
                    .push_back(QueuedStep::Request(job));
            }
        }
    }

    /// Barrier: return only when every job enqueued *before this call* has
    /// completed. The target is captured at entry — waiting on the live
    /// counter instead would chase jobs enqueued by concurrent writers and
    /// never return under sustained churn. In queued mode this runs the
    /// whole queue on the calling thread.
    pub(crate) fn drain(&self) {
        match self {
            Self::Threaded { progress, .. } => {
                let mut counts = progress.counts.lock().expect("progress poisoned");
                let target = counts.0;
                while counts.1 < target {
                    counts = progress.done.wait(counts).expect("progress poisoned");
                }
            }
            Self::Queued { .. } => {
                self.run_pending(usize::MAX);
            }
        }
    }

    /// Queued mode: advance up to `limit` job phases on the calling thread
    /// (a full rebuild is two phases: snapshot, then build + replay + swap).
    /// Returns how many phases ran; stale jobs are discarded and counted.
    pub(crate) fn run_pending(&self, limit: usize) -> usize {
        match self {
            // The worker owns execution; callers use `drain`.
            Self::Threaded { .. } => 0,
            Self::Queued { queue, shards } => {
                let mut ran = 0;
                while ran < limit {
                    let step = queue.lock().expect("queue poisoned").pop_front();
                    match step {
                        None => break,
                        Some(QueuedStep::Request(job)) => {
                            // Stale tickets (the shard already rebuilt
                            // inline) simply evaporate here.
                            if let Some(plan) = shards[job.shard].begin_rebuild(job.ticket) {
                                queue
                                    .lock()
                                    .expect("queue poisoned")
                                    .push_front(QueuedStep::Staged { job, plan });
                            }
                        }
                        Some(QueuedStep::Staged { job, plan }) => {
                            let (filter, capacity) = plan.build();
                            shards[job.shard].finish_rebuild(job.ticket, filter, capacity);
                        }
                    }
                    ran += 1;
                }
                ran
            }
        }
    }

    /// Jobs enqueued but not yet completed.
    pub(crate) fn pending(&self) -> usize {
        match self {
            Self::Threaded { progress, .. } => {
                let counts = progress.counts.lock().expect("progress poisoned");
                (counts.0 - counts.1) as usize
            }
            Self::Queued { queue, .. } => queue.lock().expect("queue poisoned").len(),
        }
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        if let Self::Threaded { sender, worker, .. } = self {
            // Hang up; the worker finishes every queued job, then exits.
            drop(sender.take());
            if let Some(worker) = worker.take() {
                let _ = worker.join();
            }
        }
    }
}
