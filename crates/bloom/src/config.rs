//! Configuration of blocked Bloom filter variants.
//!
//! A configuration is the tuple the paper's experiment grid sweeps (§6):
//! block size `B`, sector size `S`, group count `z`, number of hash functions
//! `k`, word size `W` and the addressing (modulo) mode. The *variant* —
//! blocked, register-blocked, sectorized or cache-sectorized — is fully
//! determined by the relationship between `B`, `S` and `z`
//! (Figure 12a's classification).

use pof_hash::Modulus;

/// Addressing (modulo) mode used to map a hash value to a block index
/// (Figure 12f / 13c: "Power of two" vs "Magic").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addressing {
    /// Round the block count up to a power of two; modulo is a bitwise AND.
    PowerOfTwo,
    /// Use the magic-modulo multiply–shift sequence; the block count is the
    /// requested one, bumped by at most ~0.01 % (§5.2).
    Magic,
}

/// Which lookup algorithm a configuration uses. Directly corresponds to the
/// categories of Figure 12a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BloomVariant {
    /// `B` ≤ word size: the whole block is loaded into one register and all
    /// `k` bits are tested with a single comparison (Listing 2).
    RegisterBlocked,
    /// One sector spanning the whole block (`S = B > W`): bits are placed
    /// word-by-word with a random access pattern (Listing 1).
    Blocked,
    /// `S < B`, one sector per word-sized partition, `k/s` bits per sector,
    /// sequential access (§3.2).
    Sectorized,
    /// Sectors grouped into `z` groups; `k/z` bits in one hash-chosen sector
    /// per group (§3.2, Figure 6).
    CacheSectorized,
}

impl std::fmt::Display for BloomVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::RegisterBlocked => "register-blocked",
            Self::Blocked => "blocked",
            Self::Sectorized => "sectorized",
            Self::CacheSectorized => "cache-sectorized",
        };
        write!(f, "{s}")
    }
}

/// A complete blocked-Bloom-filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BloomConfig {
    /// Block size `B` in bits (power of two, 32 … 1024).
    pub block_bits: u32,
    /// Sector size `S` in bits (power of two, 8 … `block_bits`).
    pub sector_bits: u32,
    /// Number of sector groups `z` for cache-sectorization. For plain blocked
    /// filters this is 1; for plain sectorized filters it equals the sector
    /// count `B/S`.
    pub groups: u32,
    /// Number of bits set/tested per key (`k`).
    pub k: u32,
    /// Addressing mode for the block index.
    pub addressing: Addressing,
}

impl BloomConfig {
    /// A plain blocked Bloom filter (single sector spanning the block).
    #[must_use]
    pub fn blocked(block_bits: u32, k: u32, addressing: Addressing) -> Self {
        Self {
            block_bits,
            sector_bits: block_bits,
            groups: 1,
            k,
            addressing,
        }
    }

    /// A register-blocked Bloom filter (block = one 32- or 64-bit word).
    #[must_use]
    pub fn register_blocked(word_bits: u32, k: u32, addressing: Addressing) -> Self {
        Self::blocked(word_bits, k, addressing)
    }

    /// A sectorized blocked Bloom filter: `B/S` sectors, `k` split evenly.
    #[must_use]
    pub fn sectorized(block_bits: u32, sector_bits: u32, k: u32, addressing: Addressing) -> Self {
        Self {
            block_bits,
            sector_bits,
            groups: block_bits / sector_bits,
            k,
            addressing,
        }
    }

    /// A cache-sectorized blocked Bloom filter with `z` groups.
    #[must_use]
    pub fn cache_sectorized(
        block_bits: u32,
        sector_bits: u32,
        z: u32,
        k: u32,
        addressing: Addressing,
    ) -> Self {
        Self {
            block_bits,
            sector_bits,
            groups: z,
            k,
            addressing,
        }
    }

    /// Number of sectors per block (`s = B/S`).
    #[must_use]
    pub fn sectors(&self) -> u32 {
        self.block_bits / self.sector_bits
    }

    /// Classify the configuration (Figure 12a's categories).
    #[must_use]
    pub fn variant(&self) -> BloomVariant {
        if self.sector_bits == self.block_bits {
            if self.block_bits <= 64 {
                BloomVariant::RegisterBlocked
            } else {
                BloomVariant::Blocked
            }
        } else if self.groups == self.sectors() {
            BloomVariant::Sectorized
        } else {
            BloomVariant::CacheSectorized
        }
    }

    /// Bits set per sector access: `k` for blocked, `k/s` for sectorized,
    /// `k/z` for cache-sectorized.
    #[must_use]
    pub fn bits_per_probe(&self) -> u32 {
        match self.variant() {
            BloomVariant::RegisterBlocked | BloomVariant::Blocked => self.k,
            BloomVariant::Sectorized => self.k / self.sectors(),
            BloomVariant::CacheSectorized => self.k / self.groups,
        }
    }

    /// Number of word/sector accesses a lookup performs: 1 for
    /// register-blocked, `k` for plain blocked, `s` for sectorized, `z` for
    /// cache-sectorized. This is the model input for memory-access cost.
    #[must_use]
    pub fn accesses_per_lookup(&self) -> u32 {
        match self.variant() {
            BloomVariant::RegisterBlocked => 1,
            BloomVariant::Blocked => self.k,
            BloomVariant::Sectorized => self.sectors(),
            BloomVariant::CacheSectorized => self.groups,
        }
    }

    /// Validate the configuration, returning a description of the first
    /// violated constraint.
    ///
    /// The constraints mirror §3.2: powers of two everywhere, the sector must
    /// not exceed the block (the paper's example of an *invalid* configuration
    /// is `B := 64, S := 512`), `k` must be divisible by the sector count
    /// (sectorized) or group count (cache-sectorized), and the group count
    /// must evenly split the sectors.
    pub fn validate(&self) -> Result<(), String> {
        if !self.block_bits.is_power_of_two() || !(32..=1024).contains(&self.block_bits) {
            return Err(format!(
                "block size must be a power of two in [32, 1024], got {}",
                self.block_bits
            ));
        }
        if !self.sector_bits.is_power_of_two() || !(8..=1024).contains(&self.sector_bits) {
            return Err(format!(
                "sector size must be a power of two in [8, 1024], got {}",
                self.sector_bits
            ));
        }
        if self.sector_bits > self.block_bits {
            return Err(format!(
                "sector size ({}) may not exceed block size ({})",
                self.sector_bits, self.block_bits
            ));
        }
        if self.k == 0 || self.k > 24 {
            return Err(format!("k must be in [1, 24], got {}", self.k));
        }
        if self.groups == 0 {
            return Err("group count must be at least 1".to_string());
        }
        let sectors = self.sectors();
        match self.variant() {
            BloomVariant::RegisterBlocked | BloomVariant::Blocked => {
                if self.groups != 1 {
                    return Err(format!(
                        "a non-sectorized filter must have exactly one group, got {}",
                        self.groups
                    ));
                }
                if u64::from(self.k) > u64::from(self.block_bits) {
                    return Err(format!(
                        "k ({}) exceeds the number of bits in a block ({})",
                        self.k, self.block_bits
                    ));
                }
            }
            BloomVariant::Sectorized => {
                if !self.k.is_multiple_of(sectors) {
                    return Err(format!(
                        "sectorized filters need k ({}) to be a multiple of the sector count ({sectors})",
                        self.k
                    ));
                }
            }
            BloomVariant::CacheSectorized => {
                if !sectors.is_multiple_of(self.groups) {
                    return Err(format!(
                        "group count ({}) must evenly divide the sector count ({sectors})",
                        self.groups
                    ));
                }
                if !self.k.is_multiple_of(self.groups) {
                    return Err(format!(
                        "cache-sectorized filters need k ({}) to be a multiple of the group count ({})",
                        self.k, self.groups
                    ));
                }
            }
        }
        Ok(())
    }

    /// Analytical false-positive rate of this configuration for `n` keys in a
    /// filter of `m` bits, using the matching model from `pof-model`.
    #[must_use]
    pub fn modeled_fpr(&self, m_bits: f64, n: f64) -> f64 {
        match self.variant() {
            BloomVariant::RegisterBlocked | BloomVariant::Blocked => {
                pof_model::f_blocked(m_bits, n, self.k, self.block_bits)
            }
            BloomVariant::Sectorized => {
                pof_model::f_sectorized(m_bits, n, self.k, self.block_bits, self.sector_bits)
            }
            BloomVariant::CacheSectorized => pof_model::f_cache_sectorized(
                m_bits,
                n,
                self.k,
                self.block_bits,
                self.sector_bits,
                self.groups,
            ),
        }
    }

    /// Build the block-count addressing for a desired total size of `m_bits`.
    ///
    /// Returns the [`Modulus`] over the number of blocks; the actual filter
    /// size is `modulus.size() * block_bits` bits.
    #[must_use]
    pub fn addressing_for_bits(&self, m_bits: u64) -> Modulus {
        let desired_blocks = m_bits.div_ceil(u64::from(self.block_bits)).max(1);
        let desired_blocks = u32::try_from(desired_blocks).unwrap_or(u32::MAX);
        match self.addressing {
            Addressing::PowerOfTwo => Modulus::pow2_at_least(desired_blocks),
            Addressing::Magic => Modulus::magic_at_least(desired_blocks),
        }
    }

    /// Short human-readable label used in figures and calibration records,
    /// e.g. `cache-sectorized(B=512,S=64,z=2,k=8,magic)`.
    #[must_use]
    pub fn label(&self) -> String {
        let addr = match self.addressing {
            Addressing::PowerOfTwo => "pow2",
            Addressing::Magic => "magic",
        };
        match self.variant() {
            BloomVariant::RegisterBlocked | BloomVariant::Blocked => {
                format!(
                    "{}(B={},k={},{addr})",
                    self.variant(),
                    self.block_bits,
                    self.k
                )
            }
            BloomVariant::Sectorized => format!(
                "{}(B={},S={},k={},{addr})",
                self.variant(),
                self.block_bits,
                self.sector_bits,
                self.k
            ),
            BloomVariant::CacheSectorized => format!(
                "{}(B={},S={},z={},k={},{addr})",
                self.variant(),
                self.block_bits,
                self.sector_bits,
                self.groups,
                self.k
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_classification() {
        let reg = BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo);
        assert_eq!(reg.variant(), BloomVariant::RegisterBlocked);
        let reg64 = BloomConfig::register_blocked(64, 4, Addressing::Magic);
        assert_eq!(reg64.variant(), BloomVariant::RegisterBlocked);
        let blocked = BloomConfig::blocked(512, 8, Addressing::PowerOfTwo);
        assert_eq!(blocked.variant(), BloomVariant::Blocked);
        let sectorized = BloomConfig::sectorized(512, 64, 8, Addressing::PowerOfTwo);
        assert_eq!(sectorized.variant(), BloomVariant::Sectorized);
        let cache = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic);
        assert_eq!(cache.variant(), BloomVariant::CacheSectorized);
    }

    #[test]
    fn validation_accepts_paper_configurations() {
        // The three representative filters of Figures 14/15 plus the Impala
        // configuration mentioned in §3.2.
        let configs = [
            BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo),
            BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo),
            BloomConfig::sectorized(256, 32, 8, Addressing::PowerOfTwo),
            BloomConfig::blocked(512, 11, Addressing::Magic),
        ];
        for c in configs {
            assert!(c.validate().is_ok(), "{:?}: {:?}", c, c.validate());
        }
    }

    #[test]
    fn validation_rejects_invalid_configurations() {
        // The paper's own example of an illegal configuration: S > B.
        let invalid = BloomConfig {
            block_bits: 64,
            sector_bits: 512,
            groups: 1,
            k: 8,
            addressing: Addressing::PowerOfTwo,
        };
        assert!(invalid.validate().is_err());

        // k not a multiple of the sector count.
        let invalid = BloomConfig::sectorized(512, 64, 9, Addressing::PowerOfTwo);
        assert!(invalid.validate().is_err());

        // groups not dividing sectors.
        let invalid = BloomConfig::cache_sectorized(512, 64, 3, 9, Addressing::PowerOfTwo);
        assert!(invalid.validate().is_err());

        // k = 0 and k too large.
        assert!(BloomConfig::blocked(512, 0, Addressing::PowerOfTwo)
            .validate()
            .is_err());
        assert!(
            BloomConfig::register_blocked(32, 20, Addressing::PowerOfTwo)
                .validate()
                .is_ok()
        );
        assert!(BloomConfig::blocked(128, 25, Addressing::PowerOfTwo)
            .validate()
            .is_err());

        // Non-power-of-two block.
        let invalid = BloomConfig {
            block_bits: 96,
            sector_bits: 32,
            groups: 3,
            k: 6,
            addressing: Addressing::PowerOfTwo,
        };
        assert!(invalid.validate().is_err());
    }

    #[test]
    fn access_counts_match_variants() {
        assert_eq!(
            BloomConfig::register_blocked(32, 5, Addressing::PowerOfTwo).accesses_per_lookup(),
            1
        );
        assert_eq!(
            BloomConfig::blocked(512, 8, Addressing::PowerOfTwo).accesses_per_lookup(),
            8
        );
        assert_eq!(
            BloomConfig::sectorized(512, 64, 8, Addressing::PowerOfTwo).accesses_per_lookup(),
            8
        );
        assert_eq!(
            BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo)
                .accesses_per_lookup(),
            2
        );
    }

    #[test]
    fn bits_per_probe_matches_variants() {
        assert_eq!(
            BloomConfig::register_blocked(32, 5, Addressing::PowerOfTwo).bits_per_probe(),
            5
        );
        assert_eq!(
            BloomConfig::sectorized(512, 64, 16, Addressing::PowerOfTwo).bits_per_probe(),
            2
        );
        assert_eq!(
            BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo).bits_per_probe(),
            4
        );
    }

    #[test]
    fn addressing_for_bits_sizes() {
        let c = BloomConfig::blocked(512, 8, Addressing::PowerOfTwo);
        let m = c.addressing_for_bits(1 << 20);
        assert_eq!(m.size(), (1 << 20) / 512);
        let c = BloomConfig::blocked(512, 8, Addressing::Magic);
        let m = c.addressing_for_bits(1_000_000);
        assert!(m.size() >= 1_000_000 / 512);
        assert!(u64::from(m.size()) * 512 < 1_100_000);
    }

    #[test]
    fn labels_are_informative() {
        let label = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic).label();
        assert!(label.contains("cache-sectorized"));
        assert!(label.contains("B=512"));
        assert!(label.contains("z=2"));
        assert!(label.contains("magic"));
        let label = BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo).label();
        assert!(label.contains("register-blocked"));
        assert!(label.contains("pow2"));
    }

    #[test]
    fn modeled_fpr_delegates_to_matching_model() {
        let n = 100_000.0;
        let m = 10.0 * n;
        let blocked = BloomConfig::blocked(512, 8, Addressing::PowerOfTwo);
        assert_eq!(
            blocked.modeled_fpr(m, n),
            pof_model::f_blocked(m, n, 8, 512)
        );
        let cache = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo);
        assert_eq!(
            cache.modeled_fpr(m, n),
            pof_model::f_cache_sectorized(m, n, 8, 512, 64, 2)
        );
    }
}
