//! Staged (hash → prefetch → probe) mass-lookup kernel for [`BlockedBloom`].
//!
//! The scalar batch path hashes and probes one key at a time, so each block
//! load pays its cache/TLB miss latency serially once the filter outgrows
//! the cache. The staged kernel runs the *same* probe math software-pipelined
//! over chunks of `plan.distance()` keys: the hash stage computes every
//! key's block start into the plan's reusable scratch and prefetches the
//! block's cache line (one line per key — every blocked variant confines a
//! lookup to a single ≤ 512-bit block), and the probe stage then resolves
//! membership from lines that were requested a full chunk earlier. The
//! double-buffered lanes let chunk `c+1` stream in while chunk `c` probes.
//!
//! Selections are bit-for-bit identical to `contains_batch_scalar`, which
//! the cross-family agreement suite pins.

use crate::blocked::BlockedBloom;
use pof_filter::probe::{prefetch_read, ProbePlan};
use pof_filter::SelectionVector;

/// Run the staged kernel over `keys`, appending qualifying positions to `sel`.
// pof-analyze: no-alloc
pub(crate) fn contains_batch_staged(
    filter: &BlockedBloom,
    keys: &[u32],
    sel: &mut SelectionVector,
    plan: &mut ProbePlan,
) {
    if keys.is_empty() {
        return;
    }
    let distance = plan.distance();
    let block_bits = u64::from(filter.config().block_bits);
    let words = filter.words();
    let [starts, _, _] = plan.lanes(2 * distance);
    // Hash + prefetch one chunk: compute each block's start bit into the
    // lane, then request its cache line.
    let hash_and_prefetch = |chunk: &[u32], lane: &mut [u64]| {
        for (slot, &key) in lane.iter_mut().zip(chunk) {
            let start = u64::from(filter.block_index(key)) * block_bits;
            *slot = start;
            prefetch_read(&words[(start / 64) as usize]);
        }
    };
    sel.reserve(keys.len());
    let first = distance.min(keys.len());
    hash_and_prefetch(&keys[..first], &mut starts[..first]);
    let mut begin = 0usize;
    let mut half = 0usize; // chunk c's addresses live at lane[half · distance ..]
    while begin < keys.len() {
        let end = (begin + distance).min(keys.len());
        // Stage the next chunk into the other lane half before probing this
        // one, so its lines stream in underneath the probe loop below.
        if end < keys.len() {
            let next_end = (end + distance).min(keys.len());
            let other = (1 - half) * distance;
            hash_and_prefetch(
                &keys[end..next_end],
                &mut starts[other..other + (next_end - end)],
            );
        }
        for (i, &key) in keys[begin..end].iter().enumerate() {
            let hit = filter.contains_at(key, starts[half * distance + i]);
            sel.push_if((begin + i) as u32, hit);
        }
        begin = end;
        half = 1 - half;
    }
}
